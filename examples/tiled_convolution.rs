//! The §3.5/§5.6 tiling study: run the tiled convolution at several
//! tile sizes, with and without Snake, against the untiled baseline.
//!
//! ```text
//! cargo run --release --example tiled_convolution
//! ```

use snake_repro::prelude::*;
use snake_repro::workloads::tiled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = WorkloadSize::standard();
    let cfg = GpuConfig::scaled(2);
    let warps = cfg.max_warps_per_sm;
    let energy = EnergyModel::volta_like();

    let untiled = tiled::trace(&size, 0);
    let base = run_kernel(cfg.clone(), untiled, |_| Box::new(NullPrefetcher))?;
    let base_ipc = base.stats.ipc();
    let base_energy = energy.evaluate(&base.stats, &cfg, false).total_j();
    println!("untiled baseline: IPC {base_ipc:.3}\n");
    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>14}",
        "tile", "tiled IPC", "+snake IPC", "tiled energy", "+snake energy"
    );

    for frac in [25u64, 50, 75, 100] {
        let tile_bytes = (u64::from(cfg.l1_usable_bytes()) * frac / 100 / 128).max(1) * 128;
        let t = run_kernel(cfg.clone(), tiled::trace(&size, tile_bytes), |_| {
            Box::new(NullPrefetcher)
        })?;
        let s = run_kernel(cfg.clone(), tiled::trace(&size, tile_bytes), |_| {
            PrefetcherKind::Snake.build(warps)
        })?;
        let te = energy.evaluate(&t.stats, &cfg, false).total_j() / base_energy;
        let se = energy.evaluate(&s.stats, &cfg, true).total_j() / base_energy;
        println!(
            "{:>8}% {:>11.3}x {:>11.3}x {:>13.3}x {:>13.3}x",
            frac,
            t.stats.ipc() / base_ipc,
            s.stats.ipc() / base_ipc,
            te,
            se,
        );
    }
    println!("\n(paper: both peak at 75% tile size; Snake adds the next-tile prefetch win)");
    Ok(())
}

//! The §1 multi-application extension: co-locate two applications on
//! one GPU and compare per-application chain detection (the paper's
//! proposed extension) against an untagged shared Tail table.
//!
//! ```text
//! cargo run --release --example multi_app [APP_A] [APP_B]
//! ```

use snake_repro::prelude::*;
use snake_repro::workloads::multi::{colocate, PcSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let a: Benchmark = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Lps);
    let b: Benchmark = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Mrq);
    let size = WorkloadSize::standard();
    let cfg = GpuConfig::scaled(2);
    let warps = cfg.max_warps_per_sm;

    println!("co-locating {} and {}\n", a.full_name(), b.full_name());
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "mode", "coverage", "accuracy", "IPC"
    );
    for (label, space) in [
        ("per-app chains (extension)", PcSpace::PerApp),
        ("shared PCs (untagged)", PcSpace::Shared),
    ] {
        let kernel = colocate(&a.build(&size), &b.build(&size), space);
        let out = run_kernel(cfg.clone(), kernel, |_| PrefetcherKind::Snake.build(warps))?;
        println!(
            "{:<28} {:>8.1}% {:>8.1}% {:>9.3}",
            label,
            out.stats.coverage() * 100.0,
            out.stats.timely_coverage() * 100.0,
            out.stats.ipc()
        );
    }
    println!("\n(paper §1: chains must be detected within each application;");
    println!(" aliasing two applications' load PCs onto one table corrupts the chains)");
    Ok(())
}

//! Fig 8-style chain anatomy: train Snake's Tail table on the LPS
//! trace and dump the chains of strides it discovered, then show the
//! trace-analysis view of the same kernel (Figs 9/10).
//!
//! ```text
//! cargo run --release --example chain_anatomy [APP]
//! ```

use snake_repro::core::analysis::{analyze_chains, ChainAnalysisConfig};
use snake_repro::core::snake::{Snake, SnakeConfig};
use snake_repro::prelude::*;
use snake_repro::sim::Gpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Lps);
    let size = WorkloadSize::tiny();
    let cfg = GpuConfig::scaled(1);
    let kernel = app.build(&size);

    // Run the timing simulation, keeping a handle on the SM's Snake.
    let mut gpu = Gpu::new(cfg.clone(), kernel.clone(), |_| {
        Box::new(Snake::new(SnakeConfig {
            head_warps: cfg.max_warps_per_sm,
            ..SnakeConfig::snake()
        }))
    })?;
    gpu.run();

    println!("== Tail-table contents after running {} ==", app.abbr());
    println!(
        "{:>6} {:>6} {:>12} {:>4} {:>8} {:>12} {:>4} {:>12}",
        "PC1", "PC2", "it-stride", "T1", "warps", "intra", "T2", "inter-warp"
    );
    // The Tail table lives inside the prefetcher; re-train a fresh one
    // on the trace analytically for display (same detection logic).
    let mut snake = Snake::new(SnakeConfig {
        head_warps: cfg.max_warps_per_sm,
        ..SnakeConfig::snake()
    });
    let bound = snake_repro::core::analysis::coverage::bound_with(&kernel, &mut snake);
    for e in snake.tail_table().entries() {
        println!(
            "{:>6} {:>6} {:>12} {:>4} {:>8} {:>12} {:>4} {:>12}",
            e.pc1.0,
            e.pc2.0,
            e.inter_thread_stride,
            format!("{:02b}", e.t1.bits()),
            format!("{:x}", e.warp_vec),
            e.intra_stride.map_or("-".into(), |s| s.to_string()),
            format!("{:02b}", e.t2.bits()),
            e.inter_warp_stride.map_or("-".into(), |s| s.to_string()),
        );
    }
    println!(
        "\nchains-of-strides coverage bound: {:.1}%",
        bound.fraction() * 100.0
    );

    if std::env::args().any(|a| a == "--dot") {
        println!("\n== Chain graph (Graphviz DOT, Fig 8 style) ==");
        print!(
            "{}",
            snake_repro::core::analysis::chain_graph_dot(&kernel, &ChainAnalysisConfig::default())
        );
    }

    let r = analyze_chains(&kernel, &ChainAnalysisConfig::default());
    println!("\n== Trace analysis (Figs 9/10) ==");
    println!(
        "PCs in chains: {:.1}% of {} PCs (representative warp)",
        r.pc_fraction_in_chains * 100.0,
        r.representative_pcs
    );
    println!("max chain repetition: {}x", r.max_repetition);
    println!("stable links kernel-wide: {}", r.stable_links);
    Ok(())
}

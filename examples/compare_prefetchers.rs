//! Run every mechanism of the paper's Fig 16/18 on one application and
//! print coverage, accuracy, hit rate, and speedup side by side.
//!
//! ```text
//! cargo run --release --example compare_prefetchers [APP]
//! ```

use snake_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Hotspot);
    let size = WorkloadSize::standard();
    let cfg = GpuConfig::scaled(2);
    let warps = cfg.max_warps_per_sm;

    println!("application: {}\n", app.full_name());
    println!(
        "{:<15} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "mechanism", "coverage", "accuracy", "hit rate", "IPC", "speedup"
    );

    let mut baseline_ipc = None;
    for &kind in PrefetcherKind::all() {
        let out = run_kernel(cfg.clone(), app.build(&size), |_| kind.build(warps))?;
        let s = &out.stats;
        let ipc = s.ipc();
        let base = *baseline_ipc.get_or_insert(ipc);
        println!(
            "{:<15} {:>8.1}% {:>8.1}% {:>8.1}% {:>9.3} {:>8.3}x",
            kind.name(),
            s.coverage() * 100.0,
            s.timely_coverage() * 100.0,
            s.l1.hit_rate() * 100.0,
            ipc,
            ipc / base
        );
    }
    Ok(())
}

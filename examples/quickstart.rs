//! Quickstart: run one benchmark with and without Snake and print the
//! headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [APP]
//! ```

use snake_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(Benchmark::Lps);
    let size = WorkloadSize::standard();
    let cfg = GpuConfig::scaled(2);
    let warps = cfg.max_warps_per_sm;

    println!("app: {} ({}, {})", app.abbr(), app.full_name(), app.suite());
    let kernel = app.build(&size);
    println!(
        "trace: {} warps, {} CTAs, {} instructions ({} loads)",
        kernel.warp_count(),
        kernel.cta_count(),
        kernel.total_instrs(),
        kernel.total_loads()
    );

    let base = run_kernel(cfg.clone(), app.build(&size), |_| Box::new(NullPrefetcher))?;
    let snake = run_kernel(cfg, app.build(&size), |_| {
        PrefetcherKind::Snake.build(warps)
    })?;

    let b = &base.stats;
    let s = &snake.stats;
    println!("\n             baseline      snake");
    println!("cycles       {:>8}   {:>8}", b.cycles, s.cycles);
    println!("IPC          {:>8.3}   {:>8.3}", b.ipc(), s.ipc());
    println!(
        "L1 hit rate  {:>7.1}%   {:>7.1}%",
        b.l1.hit_rate() * 100.0,
        s.l1.hit_rate() * 100.0
    );
    println!(
        "coverage     {:>7.1}%   {:>7.1}%",
        b.coverage() * 100.0,
        s.coverage() * 100.0
    );
    println!(
        "accuracy     {:>7.1}%   {:>7.1}%",
        b.timely_coverage() * 100.0,
        s.timely_coverage() * 100.0
    );
    println!("\nspeedup: {:.3}x", s.ipc() / b.ipc());
    Ok(())
}

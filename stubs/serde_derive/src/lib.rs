//! No-op derive macros for the offline serde stand-in.
//!
//! The companion `serde` stub blanket-implements its marker traits, so
//! these derives only need to exist for `#[derive(serde::Serialize)]`
//! attributes to resolve; they emit no code.

use proc_macro::TokenStream;

/// Emits nothing; the serde stub's blanket impl covers the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; the serde stub's blanket impl covers the trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a minimal, deterministic subset of
//! the `rand 0.8` API it actually uses: [`RngCore`], [`SeedableRng`]
//! (including `seed_from_u64`), and the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`. Distribution quality matches what
//! trace generation needs (uniform integers via widening multiply,
//! 53-bit uniform floats); it is not a cryptographic library.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for every implementation here).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction rand_core 0.6 uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = sm.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from an RNG (`Rng::gen`).
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_from_rng_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` via 128-bit widening multiply (unbiased
/// enough for simulation workloads; spans here are far below 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        rng.next_u64() as u128
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Compatibility alias module mirroring `rand::rngs` layout loosely.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(2..=4);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 block function (the reduced-round
//! variant of RFC 7539 ChaCha20) behind the vendored `rand` traits, so
//! workload generation keeps a high-quality, deterministic, seekable
//! stream without a registry dependency.

pub use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// 64-bit stream id (nonce words).
    stream: u64,
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf` (BLOCK_WORDS = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects the stream id (distinct streams are independent even
    /// under the same seed).
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.index = BLOCK_WORDS; // force regeneration
        }
    }

    /// Returns the current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Sets the word position within the stream (block granularity).
    pub fn set_word_pos(&mut self, block: u64) {
        self.counter = block;
        self.index = BLOCK_WORDS;
    }

    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            let mut word = [0u8; 4];
            word.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *k = u32::from_le_bytes(word);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn range_sampling_compiles_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let v = r.gen_range(0u64..1000);
            assert!(v < 1000);
            let _: bool = r.gen_bool(0.5);
        }
    }

    #[test]
    fn output_is_reasonably_balanced() {
        // Sanity-check the block function: ones density of the first
        // 1024 words should be near 50%.
        let mut r = ChaCha8Rng::seed_from_u64(0xDEADBEEF);
        let ones: u32 = (0..1024).map(|_| r.next_u32().count_ones()).sum();
        let density = f64::from(ones) / (1024.0 * 32.0);
        assert!((0.48..0.52).contains(&density), "density {density}");
    }
}

//! Deterministic test runner plumbing: configuration, RNG, and the
//! case-failure error type.

use std::fmt;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator RNG (xoshiro256**), seeded from the test
/// name so each property sees a stable stream across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a raw u64 via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds from a test's fully-qualified name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..32).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn below_stays_below() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }
}

//! Value-generation strategies: the composable core of the stub.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking; `generate`
/// draws one value directly from the runner RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional higher code points.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        } else {
            (rng.below(0x5F) as u8 + 0x20) as char
        }
    }
}

/// The canonical strategy for `T` ([`Arbitrary`] values).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                // span+1 may overflow u64 only for full-width ranges,
                // which these tests never use.
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Weighted union of same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, generator)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, gen) in &self.arms {
            if pick < u64::from(*w) {
                return gen(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weight bookkeeping")
    }
}

/// Vec strategy (`prop::collection::vec`).
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

/// Uniformly selects one of the given items (`prop::sample::select`).
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// Builds a [`Select`] over `items` (must be non-empty).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select over empty items");
    Select { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(5);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_zero_weight_paths() {
        let mut rng = TestRng::new(9);
        let s: Union<u8> = crate::prop_oneof![
            3 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut saw = [0u32; 3];
        for _ in 0..400 {
            saw[s.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(saw[0] > saw[1], "weighting skew: {saw:?}");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(11);
        let s = vec(0u8..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn select_draws_members() {
        let mut rng = TestRng::new(13);
        let s = select(std::vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&s.generate(&mut rng)));
        }
    }
}

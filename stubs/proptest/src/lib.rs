//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates registry, so this vendored crate
//! implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! with `prop_map`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, and integer/float range and
//! tuple strategies.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` random cases
//! from a generator seeded deterministically from the test's module
//! path and name, so failures reproduce across runs. There is no
//! shrinking; the failing case's debug representation is printed
//! instead.

pub mod strategy;
pub mod test_runner;

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test, failing the case (with
/// the optional formatted message) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test (by reference, like
/// `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                $crate::prop_assert!(
                    *left_val == *right_val,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left_val,
                    right_val
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                $crate::prop_assert!(
                    *left_val == *right_val,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left_val,
                    right_val,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                $crate::prop_assert!(
                    *left_val != *right_val,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    left_val
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                $crate::prop_assert!(
                    *left_val != *right_val,
                    "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                    left_val,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                (
                    ($weight) as u32,
                    {
                        let s = $strategy;
                        ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                            $crate::strategy::Strategy::generate(&s, rng)
                        }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                    },
                )
            ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strategy),+)
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, flip in any::<bool>()) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        err,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

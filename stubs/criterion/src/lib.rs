//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so bench
//! targets link against this minimal harness instead. Each
//! `bench_function` runs a short calibrated loop and prints a
//! mean-time-per-iteration estimate — enough to smoke-test the bench
//! code paths and get a coarse number, without criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (coarse).
const TARGET: Duration = Duration::from_millis(200);

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the iteration count until the loop is long
        // enough to time meaningfully, then report.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= TARGET || b.iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            b.iters = (b.iters * grow).min(1 << 20);
        }
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench {name:<40} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Times the body closure over a calibrated iteration count.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times and records the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        $crate::criterion_group!($name, $($rest)*);
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

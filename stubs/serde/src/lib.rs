//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses serde as an optional marker capability on
//! stats/config types (no wire format is exercised in-tree, and the
//! registry is unreachable in this build environment). This stub keeps
//! the `serde` feature compiling: the traits exist, blanket impls make
//! every type satisfy them, and the paired `serde_derive` stub accepts
//! the derive attributes while emitting no code. Anything needing real
//! serialization must replace this with the actual crates.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Deserializer-side helper traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

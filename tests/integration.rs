//! Cross-crate integration tests: workloads → simulator → prefetchers
//! → metrics, exercising the full reproduction pipeline.

use snake_repro::prelude::*;
use snake_repro::sim::StopReason;

fn small() -> WorkloadSize {
    WorkloadSize {
        warps_per_cta: 4,
        ctas: 4,
        iters: 24,
        seed: 0xC0FFEE,
    }
}

fn run(app: Benchmark, kind: PrefetcherKind) -> SimOutcome {
    let mut cfg = GpuConfig::scaled(1);
    // Every integration run doubles as an invariant audit (conservation
    // laws checked every window; violations panic the test).
    cfg.audit_window = Some(64);
    let warps = cfg.max_warps_per_sm;
    run_kernel(cfg, app.build(&small()), |_| kind.build(warps)).expect("valid config")
}

#[test]
fn every_app_completes_under_baseline_and_snake() {
    for &app in Benchmark::all() {
        for kind in [PrefetcherKind::Baseline, PrefetcherKind::Snake] {
            let out = run(app, kind);
            assert_eq!(out.stop, StopReason::Completed, "{app}/{kind}");
            assert!(out.stats.instructions > 0, "{app}/{kind}");
        }
    }
}

#[test]
fn every_mechanism_completes_on_a_chain_app() {
    for &kind in PrefetcherKind::all() {
        let out = run(Benchmark::Lps, kind);
        assert_eq!(out.stop, StopReason::Completed, "{kind}");
    }
    let out = run(Benchmark::Lps, PrefetcherKind::IsolatedSnake);
    assert_eq!(out.stop, StopReason::Completed);
}

#[test]
fn simulation_is_deterministic() {
    for kind in [PrefetcherKind::Baseline, PrefetcherKind::Snake] {
        let a = run(Benchmark::Srad, kind);
        let b = run(Benchmark::Srad, kind);
        assert_eq!(a.stats, b.stats, "{kind} must be deterministic");
    }
}

#[test]
fn snake_improves_chain_heavy_apps() {
    // (Hotspot needs the standard scale for training to amortize;
    // the figure harness covers it.)
    for app in [Benchmark::Lps, Benchmark::Mrq, Benchmark::Cp] {
        let base = run(app, PrefetcherKind::Baseline);
        let snake = run(app, PrefetcherKind::Snake);
        let speedup = snake.stats.ipc() / base.stats.ipc();
        assert!(speedup > 1.05, "{app}: speedup {speedup:.3}");
        assert!(
            snake.stats.coverage() > 0.4,
            "{app}: coverage {}",
            snake.stats.coverage()
        );
    }
}

#[test]
fn no_mechanism_helps_pointer_chasing() {
    let base = run(Benchmark::Mum, PrefetcherKind::Baseline);
    for kind in [
        PrefetcherKind::Snake,
        PrefetcherKind::Mta,
        PrefetcherKind::Cta,
    ] {
        let out = run(Benchmark::Mum, kind);
        let speedup = out.stats.ipc() / base.stats.ipc();
        assert!((0.9..1.1).contains(&speedup), "{kind} on MUM: {speedup:.3}");
        assert!(out.stats.coverage() < 0.1, "{kind} MUM coverage");
    }
}

#[test]
fn prefetch_accounting_identities_hold() {
    for &app in Benchmark::all() {
        let out = run(app, PrefetcherKind::Snake);
        assert_eq!(out.stop, StopReason::Completed);
        let s = &out.stats;
        let p = &s.prefetch;
        // Every demand transaction is classified exactly once.
        let classified = s.l1.hits
            + s.l1.hits_on_prefetch
            + s.l1.hits_reserved
            + s.l1.merges_with_prefetch
            + s.l1.misses;
        assert_eq!(classified, s.demand_loads, "{app}: demand classification");
        // Every issued prefetch either filled as a pure prefetch or was
        // converted by a merging demand (counted late exactly once).
        assert_eq!(p.issued, p.fills + p.late, "{app}: prefetch fate");
        // Funnel ordering.
        assert!(p.useful <= p.fills, "{app}");
        assert!(
            p.issued + p.redundant + p.rejected == p.requested || p.requested == 0,
            "{app}"
        );
        // Rates are probabilities.
        for v in [
            s.coverage(),
            s.timely_coverage(),
            s.l1.hit_rate(),
            s.l1.reservation_fail_rate(),
            s.memory_stall_fraction(),
        ] {
            assert!((0.0..=1.0).contains(&v), "{app}: {v}");
        }
        assert!(s.timely_coverage() <= s.coverage() + 1e-12, "{app}");
    }
}

#[test]
fn energy_tracks_runtime_for_winning_apps() {
    let cfg = GpuConfig::scaled(1);
    let em = EnergyModel::volta_like();
    let base = run(Benchmark::Lps, PrefetcherKind::Baseline);
    let snake = run(Benchmark::Lps, PrefetcherKind::Snake);
    let be = em.evaluate(&base.stats, &cfg, false).total_j();
    let se = em.evaluate(&snake.stats, &cfg, true).total_j();
    assert!(se < be, "snake energy {se} < baseline {be}");
}

#[test]
fn analysis_and_timing_agree_on_predictability_ordering() {
    // Apps the trace analysis calls highly chain-predictable should
    // show high Snake coverage in the timing simulation, and vice
    // versa for MUM.
    let lps = snake_repro::core::analysis::predictability(&Benchmark::Lps.build(&small()));
    let mum = snake_repro::core::analysis::predictability(&Benchmark::Mum.build(&small()));
    assert!(lps.chains > 0.6);
    assert!(mum.chains < 0.1);
    let lps_cov = run(Benchmark::Lps, PrefetcherKind::Snake).stats.coverage();
    let mum_cov = run(Benchmark::Mum, PrefetcherKind::Snake).stats.coverage();
    assert!(lps_cov > mum_cov + 0.3);
}

#[test]
fn isolated_snake_does_not_pollute_the_l1() {
    // Isolated placement serves prefetch hits from a side buffer; the
    // L1 keeps at least the baseline's demand hit behaviour.
    let out = run(Benchmark::Cp, PrefetcherKind::IsolatedSnake);
    assert_eq!(out.stop, StopReason::Completed);
    assert!(out.stats.l1.hit_rate() > 0.0);
}

#[test]
fn volta_config_also_runs() {
    // The full-scale Table 1 configuration is heavy; a tiny kernel
    // suffices to validate it end to end.
    let mut cfg = GpuConfig::volta_v100();
    cfg.num_sms = 4; // keep the test fast
    cfg.audit_window = Some(64);
    let size = WorkloadSize::tiny();
    let warps = cfg.max_warps_per_sm;
    let out = run_kernel(cfg, Benchmark::Lps.build(&size), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("volta config valid");
    assert_eq!(out.stop, StopReason::Completed);
}

//! End-to-end observability tests: the cycle-stamped trace stream, the
//! golden Chrome trace export, windowed metrics under throttling, and
//! prefetch-lifecycle attribution.

use std::collections::BTreeSet;

use snake_repro::prelude::*;
use snake_repro::sim::obs::{
    chrome_trace, FaultKind, SharedVecSink, SimEvent, TerminalKind, TraceEvent,
};
use snake_repro::sim::snapshot::Checkpoint;
use snake_repro::sim::{
    Brownout, CacheGeometry, Cycle, FaultPlan, Recovery, StopReason, TelemetryRecord, TelemetryRing,
};

/// Every [`SimEvent`] variant, by its stable exporter name. The golden
/// run must produce at least one of each.
const ALL_EVENTS: &[&str] = &[
    "WarpIssue",
    "WarpStall",
    "WarpUnstall",
    "L1Access",
    "MshrAllocate",
    "MshrMerge",
    "MshrFill",
    "NocEnqueue",
    "NocDequeue",
    "ThrottleHalt",
    "ThrottleResume",
    "PrefetchIssued",
    "PrefetchDropped",
    "PrefetchFilled",
    "PrefetchFirstUse",
    "PrefetchEvictedUnused",
    "ChainWalkStart",
    "ChainWalkStep",
    "ChainWalkStop",
    "FaultInjected",
    "Brownout",
    "CheckpointSaved",
    "Restored",
    "Terminal",
];

/// The golden configuration: a 1-SM GPU with a starved interconnect
/// (so the bandwidth throttle engages and releases), a tiny L1 (so
/// some prefetches die unused), every fault kind injected at a low
/// recoverable rate, and periodic brownouts — the one deterministic
/// run that exercises every event variant.
fn golden_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::scaled(1);
    cfg.noc_bytes_per_cycle = 16;
    cfg.l1 = CacheGeometry::new(4 * 1024, 128, 8);
    cfg.fault = FaultPlan {
        seed: 5,
        drop_response: 0.02,
        duplicate_response: 0.02,
        delay_response: 0.05,
        delay_cycles: 16,
        brownout: Some(Brownout {
            period: 300,
            active: 60,
            scale: 0.5,
        }),
        recovery: Some(Recovery {
            timeout: 600,
            max_retries: 8,
        }),
    };
    cfg
}

fn traced_run(
    cfg: GpuConfig,
    kernel: KernelTrace,
    kind: PrefetcherKind,
) -> (SimOutcome, Vec<TraceEvent>) {
    let warps = cfg.max_warps_per_sm;
    let mut gpu = Gpu::new(cfg, kernel, |_| kind.build(warps)).expect("valid config");
    let sink = SharedVecSink::new();
    gpu.attach_sink(Box::new(sink.clone()));
    let out = gpu.run();
    (out, sink.snapshot())
}

/// The golden run, extended with the snapshot layer: a checkpointing
/// pass (emitting `CheckpointSaved` at every interval) followed by a
/// restore of the final checkpoint on a fresh device (emitting
/// `Restored` at the splice point), both feeding one shared sink. The
/// combined stream exercises all 24 event variants deterministically.
fn golden_traced_run(tag: &str) -> (SimOutcome, Vec<TraceEvent>) {
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let mut cfg = golden_cfg();
    cfg.checkpoint_every = Some(1_000);
    let warps = cfg.max_warps_per_sm;
    let dir = std::env::temp_dir().join(format!("snake-golden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt_path = dir.join("golden.ckpt");

    let sink = SharedVecSink::new();
    let mut gpu = Gpu::new(cfg.clone(), kernel.clone(), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("valid config");
    gpu.attach_sink(Box::new(sink.clone()));
    let out = gpu.run_checkpointed(&ckpt_path).expect("checkpointing run");

    // Restore leg: attach the sink *before* restoring so the Restored
    // splice event is captured, then finish the remaining cycles.
    let mut resumed =
        Gpu::new(cfg, kernel, |_| PrefetcherKind::Snake.build(warps)).expect("valid config");
    resumed.attach_sink(Box::new(sink.clone()));
    let ckpt = Checkpoint::load(&ckpt_path).expect("checkpoint exists");
    resumed.restore(&ckpt).expect("restore");
    let tail = resumed.run();
    assert_eq!(tail.stop, StopReason::Completed);

    std::fs::remove_dir_all(&dir).expect("cleanup");
    (out, sink.snapshot())
}

#[test]
fn golden_chrome_trace_is_byte_stable_and_complete() {
    let (out, events) = golden_traced_run("a");
    assert_eq!(out.stop, StopReason::Completed);

    // One event of every variant — including the snapshot layer's
    // CheckpointSaved/Restored pair.
    let seen: BTreeSet<&str> = events.iter().map(|e| e.data.name()).collect();
    let missing: Vec<&&str> = ALL_EVENTS.iter().filter(|n| !seen.contains(**n)).collect();
    assert!(missing.is_empty(), "missing event kinds: {missing:?}");

    // The terminal event is last and says the run completed (the
    // restore leg finishes the same kernel, so there are two).
    match &events.last().expect("nonempty trace").data {
        SimEvent::Terminal { kind, .. } => assert_eq!(*kind, TerminalKind::Completed),
        other => panic!("last event must be Terminal, got {other:?}"),
    }
    let terminals = events
        .iter()
        .filter(|e| e.data.name() == "Terminal")
        .count();
    assert_eq!(terminals, 2, "checkpointing pass + restored tail");

    // Byte-stable across two identical runs.
    let json = chrome_trace(&events);
    let (_, again) = golden_traced_run("b");
    assert!(
        json == chrome_trace(&again),
        "two identical runs produced different traces"
    );

    // ... and against the checked-in golden file.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing; re-record with UPDATE_GOLDEN=1");
    assert!(
        json == golden,
        "chrome trace diverged from {path} ({} vs {} bytes); \
         re-record with UPDATE_GOLDEN=1 if the change is intended",
        json.len(),
        golden.len()
    );
}

#[test]
fn windowed_metrics_capture_throttle_transitions() {
    // A roomy L1 (no space-trigger overruns) but a lean interconnect:
    // prefetch + demand traffic pushes utilization past the 70% halt
    // threshold, and with prefetching halted demand alone falls below
    // the 50% release threshold — the bandwidth hysteresis oscillates.
    let mut cfg = GpuConfig::scaled(1);
    cfg.noc_bytes_per_cycle = 16;
    cfg.metrics_window = Some(200);
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let (out, events) = traced_run(cfg, kernel, PrefetcherKind::Snake);

    // The trace carries the hysteresis thresholds: some halt fired at
    // ≥70% utilization and some resume at ≤50% (space-triggered halts
    // may transition at other utilizations, so existence, not
    // universality).
    let halt_bw: Vec<f64> = events
        .iter()
        .filter_map(|e| match e.data {
            SimEvent::ThrottleHalt { bw_utilization, .. } => Some(bw_utilization),
            _ => None,
        })
        .collect();
    let resume_bw: Vec<f64> = events
        .iter()
        .filter_map(|e| match e.data {
            SimEvent::ThrottleResume { bw_utilization, .. } => Some(bw_utilization),
            _ => None,
        })
        .collect();
    assert!(
        halt_bw.iter().any(|&bw| bw >= 0.70),
        "no bandwidth-triggered halt at the 70% threshold: {halt_bw:?}"
    );
    assert!(
        resume_bw.iter().any(|&bw| bw <= 0.50),
        "no resume at the 50% threshold: {resume_bw:?}"
    );

    // The windowed series shows both throttled and free-running
    // windows, and NoC utilization stays a valid fraction throughout.
    let series = out.series.expect("metrics window was configured");
    assert!(!series.samples.is_empty());
    assert!(series.samples.iter().any(|s| s.throttled_sms > 0));
    assert!(series.samples.iter().any(|s| s.throttled_sms == 0));
    for s in &series.samples {
        assert!(
            (0.0..=1.0).contains(&s.noc_utilization),
            "window at cycle {} has utilization {}",
            s.cycle,
            s.noc_utilization
        );
    }
    // The CSV export covers every window.
    let csv = series.to_csv();
    assert_eq!(csv.lines().count(), series.samples.len() + 1);
}

/// Budget truncation is visible at every observability layer: the
/// structured stop reason, the terminal trace event, and the windowed
/// metrics exports (CSV trailer + timeline banner).
#[test]
fn budget_truncation_is_observable_end_to_end() {
    let mut cfg = GpuConfig::scaled(1);
    cfg.cycle_budget = Some(Cycle(400));
    cfg.metrics_window = Some(100);
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let (out, events) = traced_run(cfg, kernel, PrefetcherKind::Snake);

    assert_eq!(out.stop, StopReason::BudgetExceeded { budget: 400 });
    assert!(out.stats.cycles <= 400);

    match &events.last().expect("nonempty trace").data {
        SimEvent::Terminal { kind, detail } => {
            assert_eq!(*kind, TerminalKind::BudgetExceeded);
            assert!(detail.contains("400"), "detail names the budget: {detail}");
        }
        other => panic!("last event must be Terminal, got {other:?}"),
    }

    let series = out.series.expect("metrics window was configured");
    assert_eq!(series.stop.as_deref(), Some("budget_exceeded"));
    assert!(
        series.to_csv().ends_with("# stop=budget_exceeded\n"),
        "CSV must carry the truncation marker"
    );
    assert!(
        series
            .ascii_timeline()
            .contains("truncated: budget_exceeded"),
        "timeline banner must flag the truncation"
    );
}

#[test]
fn deadlock_is_reported_as_terminal_trace_event() {
    let mut cfg = GpuConfig::scaled(1);
    cfg.fault = FaultPlan {
        seed: 7,
        drop_response: 1.0,
        ..FaultPlan::default()
    };
    cfg.watchdog_cycles = Some(1_000);
    let kernel = Benchmark::Srad.build(&WorkloadSize::tiny());
    let (out, events) = traced_run(cfg, kernel, PrefetcherKind::Baseline);
    assert!(matches!(out.stop, StopReason::Deadlock(_)));

    // Every dropped fill is in the stream as a cycle-stamped fault.
    let drops = events
        .iter()
        .filter(|e| {
            matches!(
                e.data,
                SimEvent::FaultInjected {
                    kind: FaultKind::Drop,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(drops, out.stats.fault.dropped_responses);

    // The watchdog's census rides in the terminal event.
    match &events.last().expect("nonempty trace").data {
        SimEvent::Terminal { kind, detail } => {
            assert_eq!(*kind, TerminalKind::Deadlock);
            assert!(detail.contains("deadlock at cycle"), "detail: {detail}");
        }
        other => panic!("last event must be Terminal, got {other:?}"),
    }
}

#[test]
fn lifecycle_histograms_match_the_event_stream() {
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let (out, events) = traced_run(GpuConfig::scaled(1), kernel, PrefetcherKind::Snake);
    assert_eq!(out.stop, StopReason::Completed);

    let count = |name: &str| events.iter().filter(|e| e.data.name() == name).count() as u64;
    let lc = &out.lifecycle;
    assert!(lc.issue_to_fill.count() > 0, "no prefetch fills attributed");
    assert_eq!(lc.issue_to_fill.count(), count("PrefetchFilled"));
    assert_eq!(lc.fill_to_first_use.count(), count("PrefetchFirstUse"));
    assert_eq!(lc.lifetime_unused.count(), count("PrefetchEvictedUnused"));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let cfg = golden_cfg();
    let warps = cfg.max_warps_per_sm;
    let mut silent = Gpu::new(cfg.clone(), kernel.clone(), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("valid config");
    let quiet = silent.run();
    let (traced, _) = traced_run(cfg, kernel, PrefetcherKind::Snake);
    assert_eq!(quiet.stats, traced.stats, "observer effect detected");
    assert_eq!(quiet.lifecycle, traced.lifecycle);
}

/// Builds the telemetry-test device: golden config plus a metrics
/// window, so the ring carries both window rows and trace events.
fn telemetry_gpu(ring: Option<(&TelemetryRing, bool)>) -> Gpu {
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let mut cfg = golden_cfg();
    cfg.metrics_window = Some(200);
    let warps = cfg.max_warps_per_sm;
    let mut gpu =
        Gpu::new(cfg, kernel, |_| PrefetcherKind::Snake.build(warps)).expect("valid config");
    if let Some((ring, events)) = ring {
        gpu.attach_telemetry(ring, events);
    }
    gpu
}

/// The telemetry plane's hard guarantee: with zero subscribers the
/// ring's produce path never constructs a record, and the *entire*
/// outcome — stats, lifecycle, windowed series, stop reason — is
/// bit-identical to a run without any ring attached.
#[test]
fn telemetry_with_zero_subscribers_has_no_observer_effect() {
    let quiet = telemetry_gpu(None).run();

    let ring = TelemetryRing::new(1024);
    let ringed = telemetry_gpu(Some((&ring, true))).run();

    assert_eq!(quiet, ringed, "observer effect detected");
    assert!(
        ring.produced() > 0,
        "the ring must still count every record it skipped"
    );
    assert_eq!(
        ring.buffered(),
        0,
        "zero subscribers must mean zero stored records"
    );
}

/// The stall-taxonomy counters must stay free of observer effects:
/// a bare run (no trace sink, no metrics window, no telemetry ring)
/// and a fully instrumented run of the same device carry a
/// bit-identical stall breakdown, and the [`MechanismReport`] rows
/// rendered from the two outcomes — taxonomy columns included — are
/// byte-identical.
#[test]
fn stall_taxonomy_report_bytes_are_observer_independent() {
    let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
    let cfg = golden_cfg();
    let warps = cfg.max_warps_per_sm;
    let energy = EnergyModel::default();
    let report = |out: &SimOutcome, cfg: &GpuConfig| {
        MechanismReport::from_outcome("snake", "lps", out, cfg, &energy, true)
            .to_json()
            .to_string()
    };

    let bare = Gpu::new(cfg.clone(), kernel.clone(), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("valid config")
    .run();

    let mut watched_cfg = cfg.clone();
    watched_cfg.metrics_window = Some(200);
    let ring = TelemetryRing::new(1 << 20);
    let _sub = ring.subscribe();
    let sink = SharedVecSink::new();
    let mut gpu = Gpu::new(watched_cfg.clone(), kernel, |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("valid config");
    gpu.attach_sink(Box::new(sink.clone()));
    gpu.attach_telemetry(&ring, true);
    let watched = gpu.run();

    assert_eq!(
        bare.stats.stall, watched.stats.stall,
        "observer effect on the stall breakdown"
    );
    assert!(
        bare.stats.stall.is_exact(),
        "buckets must partition scheduler cycles"
    );
    assert_eq!(
        report(&bare, &cfg),
        report(&watched, &watched_cfg),
        "report bytes must not depend on attached observers"
    );
}

/// A subscribed ring delivers exactly the windowed series the outcome
/// reports, cycle-stamped and in order — and subscribing still does
/// not perturb the simulation.
#[test]
fn subscribed_ring_carries_the_exact_window_series() {
    let quiet = telemetry_gpu(None).run();

    let ring = TelemetryRing::new(1 << 20);
    let mut sub = ring.subscribe();
    let ringed = telemetry_gpu(Some((&ring, false))).run();
    assert_eq!(quiet, ringed, "observer effect detected");

    let drained = sub.drain();
    assert_eq!(drained.dropped, 0, "capacity covers the whole run");
    let windows: Vec<_> = drained
        .records
        .iter()
        .map(|r| match r {
            TelemetryRecord::Window(s) => *s,
            TelemetryRecord::Event(e) => panic!("events were not requested, got {e:?}"),
        })
        .collect();
    let series = ringed.series.expect("metrics window was configured");
    assert_eq!(windows, series.samples, "ring must mirror the series");
    assert!(
        windows.windows(2).all(|w| w[0].cycle < w[1].cycle),
        "window cycles must be strictly increasing"
    );
}

//! End-to-end fuzzing: random kernels through the full simulator under
//! every mechanism. The simulator must always terminate, conserve its
//! accounting identities, and never panic — regardless of the access
//! pattern thrown at it.

use proptest::prelude::*;
use snake_repro::prelude::*;
use snake_repro::sim::{CtaId, StopReason};

#[derive(Debug, Clone, Copy)]
enum GenInstr {
    Load { pc: u8, addr: u32 },
    Store { pc: u8, addr: u32 },
    Compute { cycles: u8 },
}

fn gen_instr() -> impl Strategy<Value = GenInstr> {
    prop_oneof![
        4 => (0u8..8, 0u32..(1 << 18)).prop_map(|(pc, addr)| GenInstr::Load { pc, addr }),
        1 => (8u8..12, 0u32..(1 << 18)).prop_map(|(pc, addr)| GenInstr::Store { pc, addr }),
        2 => (1u8..12).prop_map(|cycles| GenInstr::Compute { cycles }),
    ]
}

fn kernel() -> impl Strategy<Value = KernelTrace> {
    prop::collection::vec(prop::collection::vec(gen_instr(), 1..40), 1..8).prop_map(|warps| {
        let traces = warps
            .into_iter()
            .enumerate()
            .map(|(i, instrs)| {
                let instrs = instrs
                    .into_iter()
                    .map(|g| match g {
                        GenInstr::Load { pc, addr } => Instr::load(u32::from(pc), u64::from(addr)),
                        GenInstr::Store { pc, addr } => {
                            Instr::store(u32::from(pc), u64::from(addr))
                        }
                        GenInstr::Compute { cycles } => Instr::compute(u32::from(cycles)),
                    })
                    .collect();
                WarpTrace::new(CtaId((i / 4) as u32), instrs)
            })
            .collect();
        KernelTrace::new("fuzz", traces)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_complete_under_every_mechanism(k in kernel()) {
        let cfg = GpuConfig::scaled(1);
        let warps = cfg.max_warps_per_sm;
        let expected_instrs = k.total_instrs() as u64;
        let expected_loads: u64 = k
            .warps()
            .iter()
            .flat_map(|w| w.instrs.iter())
            .filter_map(|i| match i {
                Instr::Load { addrs, .. } => Some(addrs.len() as u64),
                _ => None,
            })
            .sum();
        for &kind in PrefetcherKind::all() {
            let out = run_kernel(cfg.clone(), k.clone(), |_| kind.build(warps))
                .expect("config valid");
            prop_assert_eq!(out.stop, StopReason::Completed, "{} must finish", kind);
            let s = &out.stats;
            prop_assert_eq!(s.instructions, expected_instrs, "{}", kind);
            prop_assert_eq!(s.demand_loads, expected_loads, "{}", kind);
            // Demand classification identity.
            let classified = s.l1.hits + s.l1.hits_on_prefetch + s.l1.hits_reserved
                + s.l1.merges_with_prefetch + s.l1.misses;
            prop_assert_eq!(classified, s.demand_loads, "{}", kind);
            // Prefetch fate identity (run drained, so nothing in flight).
            prop_assert_eq!(s.prefetch.issued, s.prefetch.fills + s.prefetch.late, "{}", kind);
            prop_assert!(s.cycles > 0);
        }
    }

    #[test]
    fn trace_text_round_trips_for_any_kernel(k in kernel()) {
        use snake_repro::sim::trace_io;
        let text = trace_io::to_text(&k);
        let parsed = trace_io::from_text(&text).expect("serializer output must parse");
        prop_assert_eq!(parsed, k);
    }

    #[test]
    fn isolated_snake_also_survives_fuzzing(k in kernel()) {
        let cfg = GpuConfig::scaled(1);
        let warps = cfg.max_warps_per_sm;
        let out = run_kernel(cfg, k, |_| PrefetcherKind::IsolatedSnake.build(warps))
            .expect("config valid");
        prop_assert_eq!(out.stop, StopReason::Completed);
    }
}

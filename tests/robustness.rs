//! End-to-end robustness tests: fault injection through the full
//! workloads → simulator → prefetcher pipeline.
//!
//! These tests deliberately break the memory hierarchy — dropping,
//! duplicating, and delaying responses, and browning out interconnect
//! bandwidth — and assert the hardening layers respond as designed:
//! the watchdog converts silent hangs into structured
//! [`StopReason::Deadlock`] reports, timeout-and-reissue recovery
//! masks lost responses, Snake's bandwidth throttle backs off during
//! brownouts, and IPC degrades gracefully (monotonically, not
//! catastrophically) as the fault rate rises.

use snake_repro::prelude::*;
use snake_repro::sim::{Brownout, Cycle, FaultPlan, Recovery, StopReason};

fn small() -> WorkloadSize {
    WorkloadSize {
        warps_per_cta: 4,
        ctas: 4,
        iters: 24,
        seed: 0xC0FFEE,
    }
}

/// A run with every response dropped and recovery disabled must not
/// hang: the watchdog trips and reports who was blocked on what.
#[test]
fn dropped_fills_without_recovery_deadlock() {
    let mut cfg = GpuConfig::scaled(1);
    cfg.fault = FaultPlan {
        seed: 7,
        drop_response: 1.0,
        ..FaultPlan::default()
    };
    cfg.watchdog_cycles = Some(1_000);
    cfg.audit_window = Some(64);
    let warps = cfg.max_warps_per_sm;
    let out = run_kernel(cfg, Benchmark::Srad.build(&small()), |_| {
        PrefetcherKind::Baseline.build(warps)
    })
    .expect("valid config");

    let StopReason::Deadlock(report) = &out.stop else {
        panic!("expected a deadlock, got {:?}", out.stop);
    };
    assert!(
        report.stalled_for >= 1_000,
        "stalled {}",
        report.stalled_for
    );
    assert!(
        report.waiting_warps() > 0,
        "someone must be blocked on memory"
    );
    assert!(
        report.total_mshr_entries() > 0,
        "misses must be outstanding"
    );
    assert!(out.stats.fault.dropped_responses > 0);
    // The report renders to a human-readable dump naming the blockage.
    let text = report.to_string();
    assert!(text.contains("deadlock at cycle"));
    assert!(text.contains("mshr"));
}

/// The same all-drops substrate with timeout-and-reissue recovery
/// enabled... still wedges (every reissue is dropped too), but a
/// *partial* drop rate that would wedge without recovery completes
/// with it.
#[test]
fn recovery_masks_dropped_responses() {
    let plan = FaultPlan {
        seed: 11,
        drop_response: 0.5,
        ..FaultPlan::default()
    };

    // Without recovery: wedged.
    let mut broken = GpuConfig::scaled(1);
    broken.fault = plan;
    broken.watchdog_cycles = Some(2_000);
    let warps = broken.max_warps_per_sm;
    let out = run_kernel(broken, Benchmark::Srad.build(&small()), |_| {
        PrefetcherKind::Baseline.build(warps)
    })
    .expect("valid config");
    assert!(
        matches!(out.stop, StopReason::Deadlock(_)),
        "half the fills lost with no recovery must wedge, got {:?}",
        out.stop
    );

    // With recovery: completes, and the reissue counter shows why.
    let mut recovered = GpuConfig::scaled(1);
    recovered.fault = FaultPlan {
        recovery: Some(Recovery {
            timeout: 400,
            max_retries: 32,
        }),
        ..plan
    };
    recovered.audit_window = Some(64);
    let out = run_kernel(recovered, Benchmark::Srad.build(&small()), |_| {
        PrefetcherKind::Baseline.build(warps)
    })
    .expect("valid config");
    assert_eq!(
        out.stop,
        StopReason::Completed,
        "recovery must mask the drops"
    );
    assert!(
        out.stats.fault.reissued_requests > 0,
        "recovery must have fired"
    );
    assert!(out.stats.fault.dropped_responses > 0);
}

/// Duplicated and delayed responses are absorbed without corruption:
/// the run completes, retires exactly the fault-free instruction
/// count, and stray fills are counted, not fatal.
#[test]
fn duplicates_and_delays_are_harmless() {
    let clean = {
        let cfg = GpuConfig::scaled(1);
        let warps = cfg.max_warps_per_sm;
        run_kernel(cfg, Benchmark::Srad.build(&small()), |_| {
            PrefetcherKind::Baseline.build(warps)
        })
        .expect("valid config")
    };

    let mut cfg = GpuConfig::scaled(1);
    cfg.fault = FaultPlan {
        seed: 23,
        duplicate_response: 0.3,
        delay_response: 0.3,
        delay_cycles: 300,
        ..FaultPlan::default()
    };
    cfg.audit_window = Some(64);
    let warps = cfg.max_warps_per_sm;
    let out = run_kernel(cfg, Benchmark::Srad.build(&small()), |_| {
        PrefetcherKind::Baseline.build(warps)
    })
    .expect("valid config");

    assert_eq!(out.stop, StopReason::Completed);
    assert_eq!(out.stats.instructions, clean.stats.instructions);
    assert!(out.stats.fault.duplicated_responses > 0);
    assert!(out.stats.fault.delayed_responses > 0);
    assert!(
        out.stats.fault.spurious_fills > 0,
        "duplicates become spurious fills"
    );
    assert!(
        out.stats.cycles >= clean.stats.cycles,
        "delays cannot speed things up"
    );
}

/// NoC brownouts raise measured utilization, which must engage Snake's
/// bandwidth throttle (halt >= 70% utilization, resume <= 50%); the
/// run still completes.
#[test]
fn brownout_engages_snake_throttle() {
    let healthy = {
        let cfg = GpuConfig::scaled(1);
        let warps = cfg.max_warps_per_sm;
        run_kernel(cfg, Benchmark::Lps.build(&small()), |_| {
            PrefetcherKind::Snake.build(warps)
        })
        .expect("valid config")
    };

    let mut cfg = GpuConfig::scaled(1);
    cfg.fault = FaultPlan {
        seed: 3,
        brownout: Some(Brownout {
            period: 2_000,
            active: 1_000,
            scale: 0.25,
        }),
        ..FaultPlan::default()
    };
    cfg.audit_window = Some(64);
    let warps = cfg.max_warps_per_sm;
    let out = run_kernel(cfg, Benchmark::Lps.build(&small()), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .expect("valid config");

    assert_eq!(out.stop, StopReason::Completed);
    assert!(out.stats.fault.brownout_cycles > 0);
    assert!(
        out.stats.prefetch.throttled_cycles > healthy.stats.prefetch.throttled_cycles,
        "brownout must drive the throttle harder: {} vs healthy {}",
        out.stats.prefetch.throttled_cycles,
        healthy.stats.prefetch.throttled_cycles
    );
    // The throttle resumes once bandwidth returns: prefetching still
    // happened (it halted and resumed rather than dying).
    assert!(out.stats.prefetch.issued > 0);
}

/// Sweeping the drop rate with recovery enabled: every point
/// completes, IPC never *improves* with more faults, and the worst
/// point keeps a usable fraction of fault-free throughput (degradation
/// is graceful, not a cliff).
#[test]
fn ipc_degrades_monotonically_with_fault_rate() {
    let rates = [0.0, 0.05, 0.15, 0.3];
    let mut ipcs = Vec::new();
    for &rate in &rates {
        let mut cfg = GpuConfig::scaled(1);
        cfg.fault = FaultPlan {
            seed: 42,
            drop_response: rate,
            recovery: Some(Recovery {
                timeout: 400,
                max_retries: 32,
            }),
            ..FaultPlan::default()
        };
        let warps = cfg.max_warps_per_sm;
        let out = run_kernel(cfg, Benchmark::Srad.build(&small()), |_| {
            PrefetcherKind::Baseline.build(warps)
        })
        .expect("valid config");
        assert_eq!(out.stop, StopReason::Completed, "drop rate {rate}");
        ipcs.push(out.stats.ipc());
    }
    for w in ipcs.windows(2) {
        assert!(
            w[1] <= w[0] * 1.02,
            "IPC must not improve with more faults: {ipcs:?}"
        );
    }
    assert!(
        ipcs[ipcs.len() - 1] > ipcs[0] * 0.1,
        "worst case must stay within 10x of fault-free: {ipcs:?}"
    );
}

/// Fault injection is part of the deterministic state: the same plan
/// and seed give bit-identical statistics, fault counters included.
#[test]
fn fault_injection_is_deterministic() {
    let run_once = || {
        let mut cfg = GpuConfig::scaled(1);
        cfg.fault = FaultPlan {
            seed: 99,
            drop_response: 0.2,
            duplicate_response: 0.1,
            delay_response: 0.1,
            delay_cycles: 150,
            recovery: Some(Recovery {
                timeout: 400,
                max_retries: 32,
            }),
            brownout: Some(Brownout {
                period: 1_000,
                active: 300,
                scale: 0.5,
            }),
        };
        let warps = cfg.max_warps_per_sm;
        run_kernel(cfg, Benchmark::Srad.build(&small()), |_| {
            PrefetcherKind::Snake.build(warps)
        })
        .expect("valid config")
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.stop, b.stop);
    assert_eq!(
        a.stats, b.stats,
        "seeded faults must be fully deterministic"
    );
    assert!(
        a.stats.fault.dropped_responses > 0,
        "the plan must actually fire"
    );
}

/// A planned cycle budget truncates the run with a structured
/// [`StopReason::BudgetExceeded`] — distinct from the runaway-run
/// cycle limit — while a budget that is never reached is a no-op.
#[test]
fn cycle_budget_truncates_with_structured_stop() {
    let cfg = GpuConfig::scaled(1);
    let warps = cfg.max_warps_per_sm;
    let run = |cfg: GpuConfig| {
        run_kernel(cfg, Benchmark::Lps.build(&small()), |_| {
            PrefetcherKind::Baseline.build(warps)
        })
        .expect("valid config")
    };

    let full = run(cfg.clone());
    assert_eq!(full.stop, StopReason::Completed);

    let mut truncated_cfg = cfg.clone();
    truncated_cfg.cycle_budget = Some(Cycle(100));
    let cut = run(truncated_cfg);
    assert_eq!(cut.stop, StopReason::BudgetExceeded { budget: 100 });
    assert_eq!(cut.stop.label(), "budget_exceeded");
    assert!(!cut.stop.is_complete());
    assert!(cut.stats.cycles <= 100, "ran {} cycles", cut.stats.cycles);
    assert!(
        cut.stats.instructions < full.stats.instructions,
        "truncation must have cut work short"
    );

    let mut unhit_cfg = cfg;
    unhit_cfg.cycle_budget = Some(Cycle(full.stats.cycles * 10));
    let unhit = run(unhit_cfg);
    assert_eq!(unhit.stop, StopReason::Completed);
    assert_eq!(unhit.stats, full.stats, "an unhit budget changes nothing");
}

/// The watchdog never fires on a healthy but *slow* device: a
/// fault-free run with a tight threshold still completes.
#[test]
fn watchdog_is_quiet_on_healthy_runs() {
    let mut cfg = GpuConfig::scaled(1);
    cfg.watchdog_cycles = Some(600); // just above the DRAM round trip
    cfg.audit_window = Some(64);
    let warps = cfg.max_warps_per_sm;
    for &app in Benchmark::all() {
        let out = run_kernel(cfg.clone(), app.build(&small()), |_| {
            PrefetcherKind::Snake.build(warps)
        })
        .expect("valid config");
        assert_eq!(out.stop, StopReason::Completed, "{app}");
    }
}

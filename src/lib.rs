//! # snake-repro
//!
//! Umbrella crate for the reproduction of *Snake: A Variable-length
//! Chain-based Prefetching for GPUs* (MICRO '23). It re-exports the
//! three library crates so examples and integration tests can use one
//! coherent namespace:
//!
//! * [`sim`] — the cycle-driven GPU simulator substrate.
//! * [`core`] — the Snake prefetcher, all baselines, trace analyses.
//! * [`workloads`] — the Table 2 benchmark trace generators.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system
//! inventory; the `repro` binary in `snake-bench` regenerates every
//! table and figure.
//!
//! ```
//! use snake_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
//! let out = run_kernel(GpuConfig::scaled(1), kernel, |_| {
//!     PrefetcherKind::Snake.build(16)
//! })?;
//! assert!(out.stats.prefetch.issued > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use snake_core as core;
pub use snake_sim as sim;
pub use snake_workloads as workloads;

/// Common imports for examples and tests.
pub mod prelude {
    pub use snake_core::snake::{Snake, SnakeConfig};
    pub use snake_core::{MechanismReport, PrefetcherKind};
    pub use snake_sim::{
        run_kernel, EnergyModel, Gpu, GpuConfig, Instr, KernelTrace, NullPrefetcher, Prefetcher,
        SimOutcome, WarpTrace,
    };
    pub use snake_workloads::{Benchmark, WorkloadSize};
}

#!/usr/bin/env bash
# Kill-anywhere chaos harness for the `snaked` daemon.
#
# One sweep runs uninterrupted as the reference; then TRIALS randomized
# schedules `kill -9` the daemon at arbitrary points, restarting it on
# the same state journal after every crash. Each trial must end with
#
#   * `snakectl reports` output byte-identical to the reference run's,
#   * a balanced journal: exactly one `"event":"submitted"` line and
#     exactly one `"terminal":true` line (no orphans, no duplicates).
#
# Usage (from the repository root):
#
#   TRIALS=10 scripts/chaos_snaked.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TRIALS="${TRIALS:-10}"
SNAKED=./target/release/snaked
SNAKECTL=./target/release/snakectl
if [ ! -x "$SNAKED" ] || [ ! -x "$SNAKECTL" ]; then
    cargo build --release -p snake-bench
fi

DIR=$(mktemp -d)
PID=""
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

start_daemon() { # socket journal
    "$SNAKED" --socket "$1" --state "$2" --checkpoint-every 500 2>/dev/null &
    PID=$!
    for _ in $(seq 1 200); do
        if "$SNAKECTL" --socket "$1" status >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.05
    done
    echo "chaos: daemon never became ready on $1" >&2
    exit 1
}

submit_workload() { # socket
    # Long enough (cycle budget plus an fsync per checkpoint) that
    # kills land mid-simulation; deterministic so reports are
    # byte-comparable.
    "$SNAKECTL" --socket "$1" submit --benchmarks LPS --mechanisms snake \
        --budget 200000 --window 500
}

state_of() { # socket id
    "$SNAKECTL" --socket "$1" status "$2" | sed 's/.*"state":"\([a-z]*\)".*/\1/'
}

echo "==> reference run (uninterrupted)"
SOCK="$DIR/ref.sock"
start_daemon "$SOCK" "$DIR/ref-state.jsonl"
REF_ID=$(submit_workload "$SOCK")
"$SNAKECTL" --socket "$SOCK" tail "$REF_ID" >/dev/null
"$SNAKECTL" --socket "$SOCK" reports "$REF_ID" > "$DIR/reference.json"
"$SNAKECTL" --socket "$SOCK" shutdown >/dev/null
wait "$PID" 2>/dev/null || true

TOTAL_KILLS=0
for trial in $(seq 1 "$TRIALS"); do
    SOCK="$DIR/t$trial.sock"
    LOG="$DIR/t$trial-state.jsonl"
    start_daemon "$SOCK" "$LOG"
    ID=$(submit_workload "$SOCK")
    KILLS=0
    while :; do
        sleep "0.$((RANDOM % 3 + 1))"
        STATE=$(state_of "$SOCK" "$ID")
        if [ "$STATE" = done ]; then
            break
        fi
        if [ "$STATE" = cancelled ]; then
            echo "chaos trial $trial: job cancelled unexpectedly" >&2
            exit 1
        fi
        kill -9 "$PID"
        wait "$PID" 2>/dev/null || true
        KILLS=$((KILLS + 1))
        if [ "$KILLS" -ge 200 ]; then
            echo "chaos trial $trial: no progress after $KILLS kills" >&2
            exit 1
        fi
        start_daemon "$SOCK" "$LOG"
    done
    "$SNAKECTL" --socket "$SOCK" reports "$ID" > "$DIR/t$trial.json"
    if ! cmp -s "$DIR/reference.json" "$DIR/t$trial.json"; then
        echo "chaos trial $trial: report bytes diverged after $KILLS kills" >&2
        diff "$DIR/reference.json" "$DIR/t$trial.json" >&2 || true
        exit 1
    fi
    SUBMITTED=$(grep -c '"event":"submitted"' "$LOG")
    TERMINAL=$(grep -c '"terminal":true' "$LOG")
    if [ "$SUBMITTED" -ne 1 ] || [ "$TERMINAL" -ne 1 ]; then
        echo "chaos trial $trial: unbalanced journal" \
             "(submitted=$SUBMITTED terminal=$TERMINAL)" >&2
        cat "$LOG" >&2
        exit 1
    fi
    "$SNAKECTL" --socket "$SOCK" shutdown >/dev/null
    wait "$PID" 2>/dev/null || true
    echo "chaos trial $trial: survived $KILLS kills, reports identical"
    TOTAL_KILLS=$((TOTAL_KILLS + KILLS))
done

if [ "$TOTAL_KILLS" -lt 1 ]; then
    echo "chaos: no trial ever killed the daemon — workload too short" >&2
    exit 1
fi
echo "chaos: $TRIALS trials, $TOTAL_KILLS kills, all reports byte-identical"

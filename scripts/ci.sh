#!/usr/bin/env bash
# The full local CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (audit feature)"
cargo test -p snake-sim --features audit -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> trace-overhead guard (no-sink path vs recorded baseline)"
# First run on a machine records the baseline; later runs fail if the
# sink-disabled tracing path got >2% slower. Delete the file to re-baseline.
./target/release/pfdebug --overhead-guard target/trace-overhead-baseline.txt lps snake

echo "CI gate passed."

#!/usr/bin/env bash
# The full local CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (audit feature)"
cargo test -p snake-sim --features audit -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> shellcheck (scripts/*.sh)"
# Static-check the shell entry points when the linter is available;
# the container image does not ship it, so absence is not a failure.
if command -v shellcheck >/dev/null 2>&1; then
    shellcheck scripts/*.sh
else
    echo "    shellcheck not installed, skipping"
fi

echo "==> trace-overhead guard (observability disabled must stay free)"
# First run on a machine records the baseline; later runs fail if the
# path with tracing *and* host profiling compiled in but disabled got
# >2% slower (beyond the measured noise band) — the observatory's
# no-observer-effect guard. Delete the file to re-baseline.
./target/release/pfdebug --overhead-guard target/trace-overhead-baseline.txt lps snake

echo "==> chaos-sweep smoke (supervisor: interrupt + resume, byte-identical)"
# A time-bounded supervised sweep with the canned fault plan injected:
# run it to completion, then again with a forced mid-sweep stop
# (deterministic stand-in for a kill), then resume from the manifest.
# The resumed report must be byte-identical to the uninterrupted one,
# and the interrupted run must use its distinct exit code (4).
SWEEP_DIR=$(mktemp -d)
trap 'kill "${SNAKED_PID:-}" 2>/dev/null || true; rm -rf "$SWEEP_DIR"' EXIT
SWEEP_FLAGS=(--sweep --quick --chaos --budget 400000
             --benchmarks LPS,CP --mechanisms baseline,snake)
./target/release/repro "${SWEEP_FLAGS[@]}" \
    --manifest "$SWEEP_DIR/full.jsonl" --out "$SWEEP_DIR/full.md"
rc=0
./target/release/repro "${SWEEP_FLAGS[@]}" --stop-after 2 \
    --manifest "$SWEEP_DIR/part.jsonl" --out "$SWEEP_DIR/part.md" || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "chaos-sweep smoke: interrupted sweep must exit 4, got $rc" >&2
    exit 1
fi
./target/release/repro "${SWEEP_FLAGS[@]}" \
    --resume "$SWEEP_DIR/part.jsonl" --out "$SWEEP_DIR/resumed.md"
if ! cmp -s "$SWEEP_DIR/full.md" "$SWEEP_DIR/resumed.md"; then
    echo "chaos-sweep smoke: resumed report differs from the uninterrupted run" >&2
    diff "$SWEEP_DIR/full.md" "$SWEEP_DIR/resumed.md" >&2 || true
    exit 1
fi

echo "==> kill-anywhere smoke (checkpoint mid-run, restore, byte-identical outcome)"
# Kill a memory-bound benchmark at a pseudo-random cycle, restore from
# the checkpoint in a fresh process, and require the restored run's
# SimOutcome artifact to be byte-identical to the uninterrupted one.
# The kill cycle is derived from the PID and echoed so a failure is
# reproducible; a mismatched restore must use the distinct exit code 6.
KILL_CYCLE=$((500 + $$ % 2000))
echo "    kill cycle: $KILL_CYCLE (reproduce with --checkpoint-at $KILL_CYCLE)"
./target/release/pfdebug lib snake \
    --outcome-out "$SWEEP_DIR/uninterrupted.outcome"
./target/release/pfdebug lib snake --checkpoint-at "$KILL_CYCLE" \
    --checkpoint-out "$SWEEP_DIR/kill.ckpt" --outcome-out /dev/null
./target/release/pfdebug lib snake --restore "$SWEEP_DIR/kill.ckpt" \
    --outcome-out "$SWEEP_DIR/restored.outcome"
if ! cmp -s "$SWEEP_DIR/uninterrupted.outcome" "$SWEEP_DIR/restored.outcome"; then
    echo "kill-anywhere smoke: restored outcome differs from the uninterrupted run" >&2
    ./target/release/pfdebug lib snake --checkpoint-at $((KILL_CYCLE + 32)) \
        --checkpoint-out "$SWEEP_DIR/kill2.ckpt" --outcome-out /dev/null
    ./target/release/pfdebug lib snake --diverge "$SWEEP_DIR/kill.ckpt" "$SWEEP_DIR/kill2.ckpt" >&2 || true
    exit 1
fi
rc=0
./target/release/pfdebug lib mta --restore "$SWEEP_DIR/kill.ckpt" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 6 ]; then
    echo "kill-anywhere smoke: mismatched restore must exit 6, got $rc" >&2
    exit 1
fi
# Note: checkpointing-off overhead is covered by the trace-overhead
# guard above (the no-cadence path is exactly Gpu::run) and by the
# checkpointing_off_is_exactly_run test in crates/bench.

echo "==> suspend-resume smoke (supervisor: deadline preemption, no quarantine)"
# A sweep whose jobs all hit the suspend trigger must exit 4 with the
# per-job checkpoints durable next to the manifest; resuming restores
# them mid-simulation and renders byte-identically to an uninterrupted
# sweep, with nothing quarantined.
SUS_FLAGS=(--sweep --quick --benchmarks LIB --mechanisms snake,mta)
./target/release/repro "${SUS_FLAGS[@]}" \
    --manifest "$SWEEP_DIR/sus-full.jsonl" --out "$SWEEP_DIR/sus-full.md"
rc=0
./target/release/repro "${SUS_FLAGS[@]}" --suspend-after 300 \
    --manifest "$SWEEP_DIR/sus.jsonl" --out "$SWEEP_DIR/sus-part.md" || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "suspend-resume smoke: suspended sweep must exit 4, got $rc" >&2
    exit 1
fi
ls "$SWEEP_DIR"/sus.jsonl.*.ckpt >/dev/null
./target/release/repro "${SUS_FLAGS[@]}" \
    --resume "$SWEEP_DIR/sus.jsonl" --out "$SWEEP_DIR/sus-resumed.md"
if ! cmp -s "$SWEEP_DIR/sus-full.md" "$SWEEP_DIR/sus-resumed.md"; then
    echo "suspend-resume smoke: resumed report differs from the uninterrupted run" >&2
    diff "$SWEEP_DIR/sus-full.md" "$SWEEP_DIR/sus-resumed.md" >&2 || true
    exit 1
fi

echo "==> perf smoke (host observatory: emit, self-compare, injected regression)"
# The perf gate must: emit a parseable BENCH_ci.json, pass a
# same-binary re-run compare, and trip (exit 5) on an artificially
# injected per-tick stall. Thresholds are generous — this checks the
# gate's wiring, not this machine's absolute speed.
PERF_FLAGS=(--perf --quick --benchmarks LPS --mechanisms baseline,snake --runs 3)
./target/release/repro "${PERF_FLAGS[@]}" --label ci \
    --perf-out "$SWEEP_DIR/BENCH_ci.json"
./target/release/repro "${PERF_FLAGS[@]}" --label ci-rerun \
    --perf-out "$SWEEP_DIR/BENCH_ci_rerun.json" \
    --compare "$SWEEP_DIR/BENCH_ci.json" --rel-threshold 0.75
rc=0
./target/release/repro "${PERF_FLAGS[@]}" --label ci-inject \
    --perf-out "$SWEEP_DIR/BENCH_ci_inject.json" \
    --compare "$SWEEP_DIR/BENCH_ci.json" --rel-threshold 0.75 \
    --perf-inject-ns 20000 || rc=$?
if [ "$rc" -ne 5 ]; then
    echo "perf smoke: injected regression must exit 5, got $rc" >&2
    exit 1
fi
# Guard against catastrophic host-side slowdowns relative to the
# committed reference measurement. The bar is deliberately huge (4x):
# machines differ, but a 4x simulator slowdown is a bug regardless.
# Regenerate with:
#   repro --perf --quick --benchmarks LPS --mechanisms baseline,snake \
#         --runs 5 --label baseline --perf-out scripts/BENCH_baseline.json
./target/release/repro "${PERF_FLAGS[@]}" --label ci-vs-committed \
    --perf-out "$SWEEP_DIR/BENCH_ci_committed.json" \
    --compare scripts/BENCH_baseline.json --rel-threshold 3.0
# Record the perf trajectory across PRs: the freshly emitted
# measurement replaces the committed artifact at repo root, so every
# change ships with its own numbers instead of an empty placeholder.
cp "$SWEEP_DIR/BENCH_ci.json" BENCH_ci.json

echo "==> snaked smoke (telemetry daemon: submit, tail, cancel, clean shutdown)"
# Start the daemon on a temp socket, submit a sweep, tail it (the
# stream must carry at least one window row), cancel a queued job (its
# tail must exit with the distinct cancelled code 7), then shut down
# cleanly: the state journal must balance — every submitted job gets a
# terminal line, so no orphaned jobs survive the daemon.
SNAKED_SOCK="$SWEEP_DIR/snaked.sock"
SNAKED_LOG="$SWEEP_DIR/snaked-state.jsonl"
# One worker keeps the victim queued behind the busy sweep; with the
# default two workers it would start (and maybe finish) before cancel.
./target/release/snaked --socket "$SNAKED_SOCK" --state "$SNAKED_LOG" --workers 1 &
SNAKED_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SNAKED_SOCK" ] && break
    sleep 0.05
done
if [ ! -S "$SNAKED_SOCK" ]; then
    echo "snaked smoke: daemon socket never appeared" >&2
    exit 1
fi
SNAKECTL=(./target/release/snakectl --socket "$SNAKED_SOCK")
# A budgeted standard-harness sweep occupies the scheduler long enough
# to both tail it live and cancel a job queued behind it.
BUSY_ID=$("${SNAKECTL[@]}" submit --benchmarks LPS --mechanisms baseline,snake \
    --budget 100000 --window 500)
VICTIM_ID=$("${SNAKECTL[@]}" submit --quick --benchmarks CP --mechanisms snake)
"${SNAKECTL[@]}" cancel "$VICTIM_ID" >/dev/null
rc=0
"${SNAKECTL[@]}" tail "$VICTIM_ID" >/dev/null || rc=$?
if [ "$rc" -ne 7 ]; then
    echo "snaked smoke: cancelled job's tail must exit 7, got $rc" >&2
    exit 1
fi
# The dashboard must render at least one window (its stall-breakdown
# stacked bar) from the live job and exit 0 after a single snapshot.
"${SNAKECTL[@]}" top "$BUSY_ID" --once > "$SWEEP_DIR/top.txt"
if ! grep -q 'stall \[' "$SWEEP_DIR/top.txt"; then
    echo "snaked smoke: top --once rendered no stall breakdown" >&2
    cat "$SWEEP_DIR/top.txt" >&2
    exit 1
fi
"${SNAKECTL[@]}" tail "$BUSY_ID" > "$SWEEP_DIR/tail.txt"
if ! grep -q '^window ' "$SWEEP_DIR/tail.txt"; then
    echo "snaked smoke: tail streamed no window rows" >&2
    cat "$SWEEP_DIR/tail.txt" >&2
    exit 1
fi
SNAKED_HEALTH=$("${SNAKECTL[@]}" health)
"${SNAKECTL[@]}" shutdown >/dev/null
wait "$SNAKED_PID"
# The balance invariant only holds when every append reached disk; a
# degraded journal (disk failure mid-run) is surfaced by health and
# deliberately tolerated here — degradation is counted, not fatal.
if echo "$SNAKED_HEALTH" | grep -q '"journal_degraded":true'; then
    echo "snaked smoke: journal degraded, skipping balance check" >&2
    echo "$SNAKED_HEALTH" >&2
else
    SUBMITTED=$(grep -c '"event":"submitted"' "$SNAKED_LOG")
    TERMINAL=$(grep -c '"terminal":true' "$SNAKED_LOG")
    if [ "$SUBMITTED" -ne 2 ] || [ "$SUBMITTED" -ne "$TERMINAL" ]; then
        echo "snaked smoke: state journal unbalanced" \
             "(submitted=$SUBMITTED terminal=$TERMINAL)" >&2
        cat "$SNAKED_LOG" >&2
        exit 1
    fi
fi

echo "==> snaked recovery smoke (kill -9 mid-run, restart, journal replay)"
# Kill the daemon mid-simulation with the job running, restart it over
# the same journal: the orphan must re-queue (journaled), resume from
# its checkpoint, and finish with a balanced journal.
RECOVER_SOCK="$SWEEP_DIR/recover.sock"
RECOVER_LOG="$SWEEP_DIR/recover-state.jsonl"
RCTL=(./target/release/snakectl --socket "$RECOVER_SOCK")
snaked_ready() { # ctl-array-name
    local -n ctl=$1
    for _ in $(seq 1 200); do
        "${ctl[@]}" status >/dev/null 2>&1 && return 0
        sleep 0.05
    done
    echo "snaked smoke: daemon never became ready" >&2
    exit 1
}
./target/release/snaked --socket "$RECOVER_SOCK" --state "$RECOVER_LOG" \
    --checkpoint-every 500 &
SNAKED_PID=$!
snaked_ready RCTL
RECOVER_ID=$("${RCTL[@]}" submit --benchmarks LPS --mechanisms snake \
    --budget 150000 --window 500)
sleep 0.4
kill -9 "$SNAKED_PID"
wait "$SNAKED_PID" 2>/dev/null || true
./target/release/snaked --socket "$RECOVER_SOCK" --state "$RECOVER_LOG" \
    --checkpoint-every 500 &
SNAKED_PID=$!
snaked_ready RCTL
rc=0
"${RCTL[@]}" tail "$RECOVER_ID" >/dev/null || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "snaked recovery smoke: recovered job must finish cleanly, got exit $rc" >&2
    exit 1
fi
if ! grep -q '"event":"requeued"' "$RECOVER_LOG"; then
    echo "snaked recovery smoke: restart never re-queued the orphaned job" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
fi
"${RCTL[@]}" shutdown >/dev/null
wait "$SNAKED_PID"
SUBMITTED=$(grep -c '"event":"submitted"' "$RECOVER_LOG")
TERMINAL=$(grep -c '"terminal":true' "$RECOVER_LOG")
if [ "$SUBMITTED" -ne 1 ] || [ "$TERMINAL" -ne 1 ]; then
    echo "snaked recovery smoke: unbalanced journal" \
         "(submitted=$SUBMITTED terminal=$TERMINAL)" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
fi

echo "==> snaked quota smoke (typed per-client rejection, exit code 8)"
# One worker + a queued quota of 1: with the busy job running and one
# job queued, a further submit from the same client must be rejected
# with the distinct quota exit code — while other clients still get in.
QUOTA_SOCK="$SWEEP_DIR/quota.sock"
QCTL=(./target/release/snakectl --socket "$QUOTA_SOCK")
./target/release/snaked --socket "$QUOTA_SOCK" --workers 1 --quota-queued 1 &
SNAKED_PID=$!
snaked_ready QCTL
QUOTA_BUSY=$("${QCTL[@]}" submit --client ci --benchmarks LPS \
    --mechanisms baseline,snake --budget 2000000 --window 5000)
for _ in $(seq 1 200); do
    "${QCTL[@]}" status "$QUOTA_BUSY" | grep -q '"state":"running"' && break
    sleep 0.05
done
"${QCTL[@]}" submit --client ci --quick --benchmarks CP --mechanisms snake \
    >/dev/null
rc=0
"${QCTL[@]}" submit --client ci --quick --benchmarks CP --mechanisms snake \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 8 ]; then
    echo "snaked quota smoke: over-quota submit must exit 8, got $rc" >&2
    exit 1
fi
"${QCTL[@]}" submit --client other --quick --benchmarks CP --mechanisms snake \
    >/dev/null
"${QCTL[@]}" shutdown >/dev/null
wait "$SNAKED_PID"

echo "==> isolation smoke (sandboxed workers: byte-identity, crash kinds, degradation)"
# A fault-free --isolate sweep must render byte-identically to the
# in-thread run; an injected abort / address-space blowout must
# quarantine only the poisoned job with its decoded crash kind while
# the siblings' rows stay identical; a missing worker binary must
# degrade to in-thread execution with identical output and exit 0.
ISO_FLAGS=(--sweep --quick --benchmarks LPS,CP --mechanisms baseline,snake)
./target/release/repro "${ISO_FLAGS[@]}" > "$SWEEP_DIR/iso-ref.txt"
./target/release/repro "${ISO_FLAGS[@]}" --isolate > "$SWEEP_DIR/iso-sandboxed.txt"
if ! cmp -s "$SWEEP_DIR/iso-ref.txt" "$SWEEP_DIR/iso-sandboxed.txt"; then
    echo "isolation smoke: sandboxed report differs from the in-thread run" >&2
    diff "$SWEEP_DIR/iso-ref.txt" "$SWEEP_DIR/iso-sandboxed.txt" >&2 || true
    exit 1
fi
rc=0
SNAKE_EXEC_CRASH="CP/snake=abort" ./target/release/repro "${ISO_FLAGS[@]}" \
    --isolate > "$SWEEP_DIR/iso-abort.txt" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "isolation smoke: aborted child must quarantine its job (exit 3), got $rc" >&2
    exit 1
fi
if ! grep -q 'signal 6' "$SWEEP_DIR/iso-abort.txt"; then
    echo "isolation smoke: quarantine table must name the decoded crash kind" >&2
    cat "$SWEEP_DIR/iso-abort.txt" >&2
    exit 1
fi
grep '^LPS' "$SWEEP_DIR/iso-ref.txt" > "$SWEEP_DIR/iso-ref-lps.txt"
grep '^LPS' "$SWEEP_DIR/iso-abort.txt" > "$SWEEP_DIR/iso-abort-lps.txt"
if ! cmp -s "$SWEEP_DIR/iso-ref-lps.txt" "$SWEEP_DIR/iso-abort-lps.txt"; then
    echo "isolation smoke: sibling rows changed after a child crash" >&2
    diff "$SWEEP_DIR/iso-ref-lps.txt" "$SWEEP_DIR/iso-abort-lps.txt" >&2 || true
    exit 1
fi
rc=0
SNAKE_EXEC_CRASH="CP/baseline=oom" ./target/release/repro "${ISO_FLAGS[@]}" \
    --isolate --isolate-mem 512 > "$SWEEP_DIR/iso-oom.txt" || rc=$?
if [ "$rc" -ne 3 ] || ! grep -q 'oom' "$SWEEP_DIR/iso-oom.txt"; then
    echo "isolation smoke: rlimit blowout must be classified oom (exit 3), got $rc" >&2
    cat "$SWEEP_DIR/iso-oom.txt" >&2
    exit 1
fi
SNAKE_EXEC_WORKER=/nonexistent/snake-worker ./target/release/repro \
    "${ISO_FLAGS[@]}" --isolate > "$SWEEP_DIR/iso-degraded.txt"
if ! cmp -s "$SWEEP_DIR/iso-ref.txt" "$SWEEP_DIR/iso-degraded.txt"; then
    echo "isolation smoke: degraded (in-thread fallback) report differs" >&2
    diff "$SWEEP_DIR/iso-ref.txt" "$SWEEP_DIR/iso-degraded.txt" >&2 || true
    exit 1
fi

echo "==> snaked isolation smoke (child segfault quarantined, daemon healthy)"
# A segfaulting sandboxed child must not harm the daemon: its job ends
# quarantined with the decoded crash kind in status, the sibling's
# report survives, health stays undegraded, and shutdown is clean.
ISO_SOCK="$SWEEP_DIR/iso.sock"
ICTL=(./target/release/snakectl --socket "$ISO_SOCK")
SNAKE_EXEC_CRASH="CP/snake=segv" ./target/release/snaked \
    --socket "$ISO_SOCK" --isolate &
SNAKED_PID=$!
snaked_ready ICTL
ISO_ID=$("${ICTL[@]}" submit --quick --benchmarks LPS,CP --mechanisms snake)
for _ in $(seq 1 200); do
    "${ICTL[@]}" status "$ISO_ID" | grep -q '"state":"done"' && break
    sleep 0.05
done
ISO_STATUS=$("${ICTL[@]}" status "$ISO_ID")
if ! echo "$ISO_STATUS" | grep -q '"crash":"signal 11"'; then
    echo "snaked isolation smoke: status must carry the decoded crash kind" >&2
    echo "$ISO_STATUS" >&2
    exit 1
fi
if ! "${ICTL[@]}" health | grep -q '"exec_degraded":false'; then
    echo "snaked isolation smoke: a child crash must not degrade the executor" >&2
    "${ICTL[@]}" health >&2
    exit 1
fi
"${ICTL[@]}" shutdown >/dev/null
wait "$SNAKED_PID"

echo "CI gate passed."

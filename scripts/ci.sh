#!/usr/bin/env bash
# The full local CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (audit feature)"
cargo test -p snake-sim --features audit -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI gate passed."

//! Property-based tests over the benchmark generators: every
//! application must produce well-formed, deterministic traces at any
//! (small) size, with the structural properties the simulator relies
//! on.

use proptest::prelude::*;
use snake_sim::Instr;
use snake_workloads::{Benchmark, WorkloadSize};

fn size() -> impl Strategy<Value = WorkloadSize> {
    (1u32..4, 1u32..4, 2u32..24, 0u64..4).prop_map(|(warps_per_cta, ctas, iters, seed)| {
        WorkloadSize {
            warps_per_cta,
            ctas,
            iters,
            seed,
        }
    })
}

fn benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traces_are_well_formed(b in benchmark(), s in size()) {
        let k = b.build(&s);
        prop_assert_eq!(k.warp_count(), s.total_warps() as usize);
        prop_assert_eq!(k.cta_count(), s.ctas as usize);
        prop_assert!(k.total_loads() > 0, "{} must load", b);
        // Every warp belongs to a CTA in range, loads have addresses,
        // compute instructions have non-zero-representable cycles.
        for w in k.warps() {
            prop_assert!(w.cta.0 < s.ctas);
            for i in &w.instrs {
                if let Instr::Load { addrs, .. } = i {
                    prop_assert!(!addrs.is_empty());
                }
            }
        }
    }

    #[test]
    fn traces_are_deterministic(b in benchmark(), s in size()) {
        prop_assert_eq!(b.build(&s), b.build(&s));
    }

    #[test]
    fn warps_within_a_benchmark_have_comparable_length(b in benchmark(), s in size()) {
        let k = b.build(&s);
        let lens: Vec<usize> = k.warps().iter().map(|w| w.instrs.len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        // Warps are SPMD: no warp does more than ~3x another's work
        // (MUM's random walk varies, others are near-uniform).
        prop_assert!(max <= 3 * min.max(1), "{}: min {min} max {max}", b);
    }

    #[test]
    fn representative_warp_has_the_most_loads(b in benchmark(), s in size()) {
        let k = b.build(&s);
        let (_, rep) = k.representative_warp();
        let best = k.warps().iter().map(|w| w.load_count()).max().unwrap();
        prop_assert_eq!(rep.load_count(), best);
    }

    #[test]
    fn tiled_traffic_scales_with_size(s in size(), frac in 1u32..5) {
        let tile = u64::from(frac) * 2048;
        let k = snake_workloads::tiled::trace(&s, tile);
        prop_assert!(k.total_loads() > 0);
        prop_assert_eq!(k.warp_count(), s.total_warps() as usize);
        let untiled = snake_workloads::tiled::trace(&s, 0);
        prop_assert!(untiled.total_loads() > 0);
    }
}

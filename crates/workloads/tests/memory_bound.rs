//! Tests for the `suite::memory_bound` subset: membership is justified
//! by measured stall behaviour, and the whole matrix is a determinism
//! regression gate (same seed → bit-identical statistics).

use snake_sim::{run_kernel, GpuConfig, NullPrefetcher, SimStats};
use snake_workloads::{memory_bound, Benchmark, WorkloadSize};

fn small() -> WorkloadSize {
    WorkloadSize {
        warps_per_cta: 4,
        ctas: 4,
        iters: 24,
        seed: 0xC0FFEE,
    }
}

fn run_baseline(b: Benchmark) -> SimStats {
    let cfg = GpuConfig::scaled(1);
    run_kernel(cfg, b.build(&small()), |_| Box::new(NullPrefetcher))
        .expect("valid config")
        .stats
}

#[test]
fn memory_bound_is_a_nonempty_subset_of_table2() {
    let subset = memory_bound();
    assert!(!subset.is_empty());
    for b in subset {
        assert!(Benchmark::all().contains(b), "{b} not in Table 2");
    }
    // No duplicates.
    let mut seen = subset.to_vec();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), subset.len());
}

#[test]
fn memory_bound_apps_are_actually_memory_stall_dominated() {
    for &b in memory_bound() {
        let s = run_baseline(b);
        assert!(
            s.memory_stall_fraction() > 0.5,
            "{b}: memory stall fraction {:.3} — not memory-bound",
            s.memory_stall_fraction()
        );
    }
}

#[test]
fn memory_bound_matrix_is_bit_identical_across_runs() {
    // The determinism regression gate: the same seed must give
    // bit-identical statistics (not merely similar IPC) across the
    // whole memory-bound matrix. Any hidden nondeterminism — hash-map
    // iteration order, uninitialized state, wall-clock leakage — shows
    // up here as a field-level diff.
    for &b in memory_bound() {
        let a = run_baseline(b);
        let again = run_baseline(b);
        assert_eq!(a, again, "{b}: statistics differ between identical runs");
    }
}

//! # snake-workloads
//!
//! Synthetic trace generators standing in for the paper's benchmark
//! suites (Rodinia \[31\], Parboil \[44\], ISPASS \[5\] — Table 2). Real
//! CUDA binaries and Accel-Sim traces are unavailable in this
//! reproduction, so each generator reproduces the *address structure*
//! its application presents to a prefetcher: chain content and length,
//! repetition counts, inter-warp/inter-CTA regularity, divergence, and
//! burstiness. See each module under [`benchmarks`] for the per-app
//! rationale and `DESIGN.md` for the substitution argument.
//!
//! ## Quick start
//!
//! ```
//! use snake_workloads::{Benchmark, WorkloadSize};
//!
//! let kernel = Benchmark::Lps.build(&WorkloadSize::tiny());
//! assert_eq!(kernel.name(), "LPS");
//! assert!(kernel.total_loads() > 0);
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
pub mod multi;
pub mod pattern;
pub mod suite;
pub mod tiled;

pub use pattern::{WarpBuilder, WorkloadSize};
pub use suite::{memory_bound, Benchmark, ParseBenchmarkError};

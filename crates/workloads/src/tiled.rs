//! Tiled convolution-as-matrix-multiply workload for the §5.6 tiling
//! sensitivity study (Fig 24).
//!
//! The generator models a tiled GEMM-style kernel: each tile of the
//! input is loaded cooperatively by the CTA's warps, reused for
//! several passes (the data reuse tiling exists to create), and then
//! the kernel advances to the next tile at a fixed stride — the
//! tile-boundary jump Snake's chains detect (§3.5). `tile_bytes = 0`
//! produces the untiled version (no reuse passes, column-major B walk
//! with no locality).

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const A_BASE: u64 = 0xc000_0000;
const B_BASE: u64 = 0xc800_0000;
const C_BASE: u64 = 0xd000_0000;
/// Column pitch of the untiled B walk.
const B_COL_PITCH: u64 = 64 * 1024;
/// Reuse passes over each tile.
const REUSE: u64 = 3;

/// Generates the tiled (or untiled, when `tile_bytes == 0`) kernel.
///
/// `size.iters` scales the total amount of data processed; the tile
/// count adapts so total traffic is comparable across tile sizes.
pub fn trace(size: &WorkloadSize, tile_bytes: u64) -> KernelTrace {
    size.assert_valid();
    assert_eq!(tile_bytes % 128, 0, "tiles are whole lines");
    let warps_per_cta = u64::from(size.warps_per_cta);
    let total_lines = u64::from(size.iters) * warps_per_cta;

    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            let cta_off = u64::from(cta.0) * (total_lines + 1) * 256;
            if tile_bytes == 0 {
                // Untiled: stream A, walk B column-major, no reuse.
                for i in 0..u64::from(size.iters) {
                    b.load(
                        130,
                        A_BASE + cta_off + (u64::from(g) + i * warps_per_cta) * 128,
                    );
                    b.load(132, B_BASE + cta_off + u64::from(w) * 128 + i * B_COL_PITCH);
                    b.compute(2);
                    if i % 8 == 7 {
                        b.store(134, C_BASE + cta_off + u64::from(g) * 4096 + (i / 8) * 128);
                    }
                }
            } else {
                let lines_per_tile = tile_bytes / 128;
                let lines_per_warp = (lines_per_tile / warps_per_cta).max(1);
                let tiles = (total_lines / lines_per_tile).max(1);
                for t in 0..tiles {
                    let tile_base = A_BASE + cta_off + t * tile_bytes;
                    for pass in 0..REUSE {
                        for k in 0..lines_per_warp {
                            // Warp-interleaved cooperative tile load.
                            let line = u64::from(w) + k * warps_per_cta;
                            b.load(130, tile_base + line * 128);
                            b.compute(if pass == 0 { 1 } else { 3 });
                        }
                    }
                    b.store(134, C_BASE + cta_off + u64::from(g) * 4096 + t * 128);
                }
            }
            b.build(cta)
        })
        .collect();
    let name = if tile_bytes == 0 {
        "conv-untiled".to_owned()
    } else {
        format!("conv-tiled-{}k", tile_bytes / 1024)
    };
    KernelTrace::new(name, warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{run_kernel, GpuConfig, NullPrefetcher};

    #[test]
    fn tiled_reuses_cache_untiled_does_not() {
        let size = WorkloadSize::tiny();
        let cfg = GpuConfig::scaled(1);
        let tile = u64::from(cfg.l1.capacity_bytes) / 2;
        let tiled = run_kernel(cfg.clone(), trace(&size, tile), |_| {
            Box::new(NullPrefetcher)
        })
        .unwrap();
        let untiled = run_kernel(cfg, trace(&size, 0), |_| Box::new(NullPrefetcher)).unwrap();
        assert!(
            tiled.stats.l1.hit_rate() > untiled.stats.l1.hit_rate() + 0.2,
            "tiled {} vs untiled {}",
            tiled.stats.l1.hit_rate(),
            untiled.stats.l1.hit_rate()
        );
    }

    #[test]
    fn tile_sizes_name_the_kernel() {
        let size = WorkloadSize::tiny();
        assert_eq!(trace(&size, 0).name(), "conv-untiled");
        assert_eq!(trace(&size, 8192).name(), "conv-tiled-8k");
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn unaligned_tile_rejected() {
        let _ = trace(&WorkloadSize::tiny(), 100);
    }
}

//! Building blocks for synthetic GPGPU traces.
//!
//! Each benchmark generator composes warp instruction streams from
//! these helpers. Addresses are raw byte addresses in a flat global
//! memory; the conventions match what the simulator and prefetchers
//! expect (coalesced loads carry one base address per warp).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snake_sim::{AddrList, Address, CtaId, Instr, Pc, WarpTrace};

/// Deterministic RNG for workload generation, seeded per (kernel,
/// warp) so traces are reproducible.
pub fn rng(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fluent builder for one warp's instruction stream.
#[derive(Debug, Clone, Default)]
pub struct WarpBuilder {
    instrs: Vec<Instr>,
}

impl WarpBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        WarpBuilder { instrs: Vec::new() }
    }

    /// Appends a coalesced load.
    pub fn load(&mut self, pc: u32, addr: u64) -> &mut Self {
        self.instrs.push(Instr::load(pc, addr));
        self
    }

    /// Appends a divergent load touching several lines (the generator
    /// models an uncoalesced warp; such loads are excluded from
    /// prefetcher training, as in §3.4).
    pub fn divergent_load(&mut self, pc: u32, addrs: Vec<u64>) -> &mut Self {
        self.instrs.push(Instr::Load {
            pc: Pc(pc),
            addrs: AddrList::from_vec(addrs.into_iter().map(Address).collect()),
        });
        self
    }

    /// Appends a coalesced store.
    pub fn store(&mut self, pc: u32, addr: u64) -> &mut Self {
        self.instrs.push(Instr::store(pc, addr));
        self
    }

    /// Appends compute work.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.instrs.push(Instr::compute(cycles));
        self
    }

    /// Adds a launch-skew preamble: real warps never start in perfect
    /// lockstep (index computation, parameter setup differ per warp).
    /// Without skew, broadcast loads executed by every warp in the
    /// same cycle produce pathological MSHR merge storms that no real
    /// GPU exhibits.
    pub fn stagger(&mut self, global_warp: u32) -> &mut Self {
        self.compute(1 + (global_warp % 16) * 13)
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Finishes the warp.
    pub fn build(self, cta: CtaId) -> WarpTrace {
        WarpTrace::new(cta, self.instrs)
    }
}

/// Size/scale knobs shared by all benchmark generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSize {
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Number of CTAs.
    pub ctas: u32,
    /// Main-loop iterations per warp (the scale knob).
    pub iters: u32,
    /// Seed for stochastic components.
    pub seed: u64,
}

impl WorkloadSize {
    /// Standard size used by the figure harness: 16 CTAs of 8 warps
    /// (several waves per SM) with *shallow* per-warp loops — real
    /// memory-bound GPGPU code replaces deep loops with parallelism
    /// (§2), which is exactly what separates Snake's cross-warp chain
    /// promotion from per-warp stride training.
    pub fn standard() -> Self {
        WorkloadSize {
            warps_per_cta: 8,
            ctas: 16,
            iters: 40,
            seed: 0xC0FFEE,
        }
    }

    /// Tiny size for unit tests (runs in milliseconds).
    pub fn tiny() -> Self {
        WorkloadSize {
            warps_per_cta: 4,
            ctas: 2,
            iters: 12,
            seed: 0xC0FFEE,
        }
    }

    /// Total warps.
    pub fn total_warps(&self) -> u32 {
        self.warps_per_cta * self.ctas
    }

    /// Validates the size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn assert_valid(&self) {
        assert!(self.warps_per_cta > 0 && self.ctas > 0 && self.iters > 0);
    }
}

impl Default for WorkloadSize {
    fn default() -> Self {
        WorkloadSize::standard()
    }
}

/// Iterates `(cta, warp-within-cta, global-warp-index)` tuples.
pub fn warp_grid(size: &WorkloadSize) -> impl Iterator<Item = (CtaId, u32, u32)> + '_ {
    (0..size.ctas).flat_map(move |c| {
        (0..size.warps_per_cta).map(move |w| (CtaId(c), w, c * size.warps_per_cta + w))
    })
}

/// Draws a pseudo-random line-aligned address below `limit`.
pub fn random_line_addr(rng: &mut ChaCha8Rng, limit: u64) -> u64 {
    (rng.gen_range(0..limit) / 128) * 128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_stream() {
        let mut b = WarpBuilder::new();
        b.load(1, 0)
            .compute(4)
            .store(2, 128)
            .divergent_load(3, vec![0, 4096]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        let w = b.build(CtaId(1));
        assert_eq!(w.cta, CtaId(1));
        assert_eq!(w.load_count(), 2);
    }

    #[test]
    fn warp_grid_enumerates_all() {
        let size = WorkloadSize {
            warps_per_cta: 3,
            ctas: 2,
            iters: 1,
            seed: 0,
        };
        let v: Vec<_> = warp_grid(&size).collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], (CtaId(0), 0, 0));
        assert_eq!(v[5], (CtaId(1), 2, 5));
    }

    #[test]
    fn rng_is_deterministic_and_stream_dependent() {
        let a: u64 = rng(1, 2).gen();
        let b: u64 = rng(1, 2).gen();
        let c: u64 = rng(1, 3).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_line_addr_is_aligned() {
        let mut r = rng(9, 0);
        for _ in 0..64 {
            let a = random_line_addr(&mut r, 1 << 24);
            assert_eq!(a % 128, 0);
            assert!(a < (1 << 24));
        }
    }

    #[test]
    fn sizes_are_valid() {
        WorkloadSize::standard().assert_valid();
        WorkloadSize::tiny().assert_valid();
        assert_eq!(WorkloadSize::standard().total_warps(), 128);
    }
}

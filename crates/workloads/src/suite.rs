//! The benchmark suite of Table 2: the eleven memory-bound GPGPU
//! applications from Rodinia, Parboil and ISPASS the paper evaluates.

use snake_sim::KernelTrace;

use crate::benchmarks;
use crate::pattern::WorkloadSize;

/// The Table 2 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Coulombic Potential (ISPASS).
    Cp,
    /// 3D Laplace Solver (ISPASS).
    Lps,
    /// LIBOR Monte Carlo (ISPASS).
    Lib,
    /// MUMmerGPU (ISPASS).
    Mum,
    /// Back Propagation (Rodinia).
    Backprop,
    /// HotSpot (Rodinia).
    Hotspot,
    /// Speckle Reducing Anisotropic Diffusion (Rodinia).
    Srad,
    /// LU Decomposition (Rodinia).
    Lud,
    /// Needleman-Wunsch (Rodinia).
    Nw,
    /// Histogram (Parboil).
    Histo,
    /// mri-q (Parboil).
    Mrq,
}

impl Benchmark {
    /// All Table 2 applications, in the paper's order.
    pub fn all() -> &'static [Benchmark] {
        &[
            Benchmark::Cp,
            Benchmark::Lps,
            Benchmark::Lib,
            Benchmark::Mum,
            Benchmark::Backprop,
            Benchmark::Hotspot,
            Benchmark::Srad,
            Benchmark::Lud,
            Benchmark::Nw,
            Benchmark::Histo,
            Benchmark::Mrq,
        ]
    }

    /// The paper's abbreviation (Table 2).
    pub fn abbr(self) -> &'static str {
        match self {
            Benchmark::Cp => "CP",
            Benchmark::Lps => "LPS",
            Benchmark::Lib => "LIB",
            Benchmark::Mum => "MUM",
            Benchmark::Backprop => "Backprop",
            Benchmark::Hotspot => "Hotspot",
            Benchmark::Srad => "Srad",
            Benchmark::Lud => "lud",
            Benchmark::Nw => "nw",
            Benchmark::Histo => "histo",
            Benchmark::Mrq => "MRQ",
        }
    }

    /// Full application name (Table 2).
    pub fn full_name(self) -> &'static str {
        match self {
            Benchmark::Cp => "Coulombic Potential",
            Benchmark::Lps => "3D Laplace Solver",
            Benchmark::Lib => "LIBOR Monte Carlo",
            Benchmark::Mum => "MUMmerGPU",
            Benchmark::Backprop => "Back Propagation",
            Benchmark::Hotspot => "HotSpot",
            Benchmark::Srad => "Speckle Reducing Anisotropic Diffusion",
            Benchmark::Lud => "LU Decomposition",
            Benchmark::Nw => "Needleman-Wunsch",
            Benchmark::Histo => "Histogram",
            Benchmark::Mrq => "mri-q",
        }
    }

    /// Source suite (Table 2 citation).
    pub fn suite(self) -> &'static str {
        match self {
            Benchmark::Cp | Benchmark::Lps | Benchmark::Lib | Benchmark::Mum => "ISPASS",
            Benchmark::Histo | Benchmark::Mrq => "Parboil",
            _ => "Rodinia",
        }
    }

    /// Builds the application's kernel trace at the given size.
    pub fn build(self, size: &WorkloadSize) -> KernelTrace {
        match self {
            Benchmark::Cp => benchmarks::cp::trace(size),
            Benchmark::Lps => benchmarks::lps::trace(size),
            Benchmark::Lib => benchmarks::lib_mc::trace(size),
            Benchmark::Mum => benchmarks::mum::trace(size),
            Benchmark::Backprop => benchmarks::backprop::trace(size),
            Benchmark::Hotspot => benchmarks::hotspot::trace(size),
            Benchmark::Srad => benchmarks::srad::trace(size),
            Benchmark::Lud => benchmarks::lud::trace(size),
            Benchmark::Nw => benchmarks::nw::trace(size),
            Benchmark::Histo => benchmarks::histo::trace(size),
            Benchmark::Mrq => benchmarks::mrq::trace(size),
        }
    }
}

/// The Table 2 subset whose baseline runs are dominated by memory
/// stalls (>50% of all-stall cycles on the scaled substrate) — the
/// natural targets for prefetching and for the fault-injection and
/// robustness sweeps, where memory-response faults actually bite.
pub fn memory_bound() -> &'static [Benchmark] {
    &[
        Benchmark::Lib,
        Benchmark::Mum,
        Benchmark::Srad,
        Benchmark::Lud,
        Benchmark::Nw,
        Benchmark::Histo,
    ]
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbr())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::all()
            .iter()
            .copied()
            .find(|b| b.abbr().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

/// Error parsing a benchmark abbreviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl std::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark: {:?}", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_benchmarks_as_in_table2() {
        assert_eq!(Benchmark::all().len(), 11);
    }

    #[test]
    fn every_benchmark_builds_a_nonempty_trace() {
        let size = WorkloadSize::tiny();
        for &b in Benchmark::all() {
            let k = b.build(&size);
            assert!(k.total_loads() > 0, "{b} has loads");
            assert_eq!(k.warp_count(), size.total_warps() as usize, "{b}");
            assert_eq!(k.name(), b.abbr(), "{b} names its kernel");
        }
    }

    #[test]
    fn abbreviations_parse_case_insensitively() {
        assert_eq!("lps".parse::<Benchmark>().unwrap(), Benchmark::Lps);
        assert_eq!("HISTO".parse::<Benchmark>().unwrap(), Benchmark::Histo);
        assert!("nope".parse::<Benchmark>().is_err());
    }

    #[test]
    fn suites_match_table2() {
        assert_eq!(Benchmark::Lps.suite(), "ISPASS");
        assert_eq!(Benchmark::Hotspot.suite(), "Rodinia");
        assert_eq!(Benchmark::Mrq.suite(), "Parboil");
    }
}

//! Multi-application co-location (§1 extension).
//!
//! The paper notes Snake "can be extended to support multiple
//! applications where the chains of strides are detected within each
//! application". This module builds co-located kernels from two
//! benchmarks so that claim can be tested:
//!
//! * [`colocate`] with `PcSpace::PerApp` models per-application chain
//!   detection — each application keeps its own load-PC space, so the
//!   Tail table never confuses their chains (the extension).
//! * `PcSpace::Shared` models the unextended hardware — the second
//!   application's load PCs are remapped *onto* the first's, so both
//!   applications train the same Tail-table entries and their chains
//!   fight each other.

use std::collections::BTreeSet;

use snake_sim::{AddrList, CtaId, Instr, KernelTrace, Pc, WarpTrace};

/// How the co-located applications' load PCs relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcSpace {
    /// Each application keeps distinct PCs (per-app chain detection —
    /// the paper's proposed extension).
    PerApp,
    /// The second application's PCs are aliased onto the first's
    /// (an untagged shared table — the failure mode the extension
    /// avoids).
    Shared,
}

/// Merges two kernels into one co-located kernel.
///
/// Warps are interleaved (one from each application alternately, then
/// the remainder), the second application's CTA ids are offset past
/// the first's, and its PCs are remapped per `pc_space`.
pub fn colocate(a: &KernelTrace, b: &KernelTrace, pc_space: PcSpace) -> KernelTrace {
    let a_ctas = a.cta_count() as u32;
    let a_pcs: Vec<Pc> = distinct_pcs(a).into_iter().collect();
    let b_pcs: Vec<Pc> = distinct_pcs(b).into_iter().collect();

    // Only load PCs participate in chain detection; store PCs are
    // simply moved out of the way in both modes.
    let remap = |pc: Pc| -> Pc {
        match pc_space {
            PcSpace::PerApp => Pc(pc.0 + 1_000_000),
            PcSpace::Shared => match b_pcs.iter().position(|p| *p == pc) {
                // Alias b's i-th distinct load PC onto a's (i mod n)-th.
                Some(i) if !a_pcs.is_empty() => a_pcs[i % a_pcs.len()],
                _ => Pc(pc.0 + 1_000_000),
            },
        }
    };

    let b_warps: Vec<WarpTrace> = b
        .warps()
        .iter()
        .map(|w| {
            let instrs = w
                .instrs
                .iter()
                .map(|i| match i {
                    Instr::Load { pc, addrs } => Instr::Load {
                        pc: remap(*pc),
                        addrs: addrs.clone(),
                    },
                    Instr::Store { pc, addrs } => Instr::Store {
                        pc: remap(*pc),
                        addrs: AddrList::from_vec(addrs.iter().collect()),
                    },
                    Instr::Compute { cycles } => Instr::Compute { cycles: *cycles },
                })
                .collect();
            WarpTrace::new(CtaId(w.cta.0 + a_ctas), instrs)
        })
        .collect();

    // Interleave warps so both applications are co-resident from the
    // first CTA wave onward.
    let mut warps = Vec::with_capacity(a.warp_count() + b_warps.len());
    let mut ia = a.warps().iter().cloned();
    let mut ib = b_warps.into_iter();
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => break,
            (x, y) => {
                warps.extend(x);
                warps.extend(y);
            }
        }
    }
    let name = format!(
        "{}+{}{}",
        a.name(),
        b.name(),
        if pc_space == PcSpace::Shared {
            " (shared PCs)"
        } else {
            ""
        }
    );
    KernelTrace::new(name, warps)
}

fn distinct_pcs(k: &KernelTrace) -> BTreeSet<Pc> {
    k.warps()
        .iter()
        .flat_map(|w| w.instrs.iter())
        .filter_map(|i| match i {
            Instr::Load { pc, .. } => Some(*pc),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::WorkloadSize;
    use crate::suite::Benchmark;

    fn pair(space: PcSpace) -> KernelTrace {
        let s = WorkloadSize::tiny();
        colocate(&Benchmark::Lps.build(&s), &Benchmark::Mrq.build(&s), space)
    }

    #[test]
    fn colocation_preserves_all_work() {
        let s = WorkloadSize::tiny();
        let a = Benchmark::Lps.build(&s);
        let b = Benchmark::Mrq.build(&s);
        let m = pair(PcSpace::PerApp);
        assert_eq!(m.warp_count(), a.warp_count() + b.warp_count());
        assert_eq!(m.total_instrs(), a.total_instrs() + b.total_instrs());
        assert_eq!(m.cta_count(), a.cta_count() + b.cta_count());
    }

    #[test]
    fn per_app_pcs_stay_disjoint() {
        let m = pair(PcSpace::PerApp);
        let pcs = distinct_pcs(&m);
        let low = pcs.iter().filter(|p| p.0 < 1_000_000).count();
        let high = pcs.iter().filter(|p| p.0 >= 1_000_000).count();
        assert!(low > 0 && high > 0, "both PC spaces present");
    }

    #[test]
    fn shared_pcs_alias_onto_the_first_app() {
        let s = WorkloadSize::tiny();
        let a = Benchmark::Lps.build(&s);
        let m = pair(PcSpace::Shared);
        let a_pcs = distinct_pcs(&a);
        for pc in distinct_pcs(&m) {
            assert!(a_pcs.contains(&pc), "{pc} must come from app A's space");
        }
    }

    #[test]
    fn warps_are_interleaved() {
        let m = pair(PcSpace::PerApp);
        // First two warps come from different applications (CTA spaces).
        let c0 = m.warps()[0].cta.0;
        let c1 = m.warps()[1].cta.0;
        let a_ctas = 2; // tiny() has 2 CTAs
        assert!((c0 < a_ctas) != (c1 < a_ctas));
    }
}

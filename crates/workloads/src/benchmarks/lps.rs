//! LPS — 3D Laplace Solver (ISPASS \[5\]).
//!
//! The paper's running example (Figs 7/8): each thread walks the z
//! dimension of a 3D grid; iteration `k` reads `u1[ind]` and
//! `u1[ind+KOFF]` and writes `u1[ind-KOFF]`. That yields
//!
//! * an **inter-thread chain** between the two load PCs with stride
//!   `+KOFF` elements,
//! * an **intra-warp** stride of `+KOFF` per iteration, and
//! * a fixed **inter-warp** stride of one grid row (`JOFF`).
//!
//! Constants follow the ISPASS source: `BLOCK_X = 32`, `BLOCK_Y = 4`,
//! so `KOFF = (BLOCK_X+2)*(BLOCK_Y+2) = 204` elements and
//! `JOFF = BLOCK_X+2 = 34` elements (4-byte floats).

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

/// Byte stride of one z-plane (`KOFF * 4`).
pub const KOFF_BYTES: u64 = 204 * 4;
/// Byte stride of one y-row (`JOFF * 4`).
pub const JOFF_BYTES: u64 = 34 * 4;
/// Base of the `u1` grid in global memory.
const U1: u64 = 0x1000_0000;
/// Per-CTA slab spacing.
const CTA_SPAN: u64 = 1 << 22;

/// Generates the LPS kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            // Each warp covers one y-row of its CTA's block.
            let base = U1 + u64::from(cta.0) * CTA_SPAN + u64::from(w) * JOFF_BYTES + KOFF_BYTES;
            for k in 0..u64::from(size.iters) {
                let ind = base + k * KOFF_BYTES;
                // u1[ind-KOFF] = u1[ind]  (line 12 of Fig 7)
                b.load(10, ind);
                b.store(12, ind - KOFF_BYTES);
                // u1[ind] = u1[ind+KOFF]  (line 13 of Fig 7)
                b.load(14, ind + KOFF_BYTES);
                b.store(16, ind);
                b.compute(8);
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("LPS", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::{analyze_chains, predictability, ChainAnalysisConfig};

    #[test]
    fn loads_form_the_paper_chain() {
        let k = trace(&WorkloadSize::tiny());
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert!(
            r.pc_fraction_in_chains > 0.9,
            "LPS PCs live in chains: {r:?}"
        );
        assert!(r.max_repetition >= WorkloadSize::tiny().iters - 2);
    }

    #[test]
    fn highly_predictable_for_chains() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.chains > 0.7, "chains bound on LPS: {}", p.chains);
        assert!(p.ideal >= p.chains);
    }

    #[test]
    fn trace_shape() {
        let size = WorkloadSize::tiny();
        let k = trace(&size);
        assert_eq!(k.warp_count(), size.total_warps() as usize);
        assert_eq!(k.cta_count(), size.ctas as usize);
        assert_eq!(
            k.total_loads(),
            (size.total_warps() * size.iters * 2) as usize
        );
    }
}

//! Hotspot — thermal simulation (Rodinia \[31\]).
//!
//! A 2D five-point stencil over temperature plus a power-density read:
//! each iteration loads center, north, south neighbors and the power
//! cell, then writes the new temperature. The four loads form a fixed
//! four-link chain (strides −ROW, +2·ROW, array offset), each row step
//! adds a uniform intra-warp stride, and warps tile rows at a fixed
//! inter-warp stride.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const TEMP: u64 = 0x6000_0000;
const POWER: u64 = 0x6400_0000;
const RESULT: u64 = 0x6800_0000;
/// Grid row pitch in bytes.
pub const ROW_BYTES: u64 = 8192;
/// Per-CTA tile of rows.
const CTA_ROWS: u64 = 512;

/// Generates the Hotspot kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let base =
                TEMP + u64::from(cta.0) * CTA_ROWS * ROW_BYTES + u64::from(w) * 128 + ROW_BYTES; // skip halo row
            for r in 0..u64::from(size.iters) {
                let center = base + r * ROW_BYTES;
                b.load(60, center);
                b.load(62, center - ROW_BYTES); // north
                b.load(64, center + ROW_BYTES); // south
                b.load(66, center - TEMP + POWER); // power cell
                b.compute(8);
                b.store(68, center - TEMP + RESULT);
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("Hotspot", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::{analyze_chains, predictability, ChainAnalysisConfig};

    #[test]
    fn stencil_chain_is_stable_and_long() {
        let k = trace(&WorkloadSize::tiny());
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert!(r.pc_fraction_in_chains > 0.9, "{r:?}");
        assert!(r.stable_links >= 3, "four PCs -> at least 3 links: {r:?}");
    }

    #[test]
    fn chains_dominate_fixed_strides() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(
            p.chains > p.intra,
            "chains {} vs intra {}",
            p.chains,
            p.intra
        );
        assert!(p.ideal > 0.8);
    }
}

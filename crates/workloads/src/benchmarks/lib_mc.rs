//! LIB — LIBOR Monte Carlo (ISPASS \[5\]).
//!
//! Each thread walks long, thread-private rate/volatility paths with
//! essentially no reuse: the baseline L1 hit rate is near zero (the
//! paper reports Snake improving LIB's hit rate by 10×, making it the
//! largest performance winner). Three arrays are read per step at
//! fixed inter-array offsets — a three-link chain — and each step
//! advances by one line (intra-warp stride).

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const L_RATES: u64 = 0x3000_0000;
const LAMBDA: u64 = 0x3400_0000;
const ZRAND: u64 = 0x3800_0000;
/// Per-warp private path region.
const PATH_SPAN: u64 = 1 << 20;

/// Generates the LIB kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let off = u64::from(g) * PATH_SPAN;
            for i in 0..u64::from(size.iters) {
                b.load(30, L_RATES + off + i * 128);
                // Volatilities are shared across paths (warps).
                b.load(32, LAMBDA + i * 128);
                b.load(34, ZRAND + off + i * 128);
                b.compute(6);
                if i % 8 == 7 {
                    b.store(38, L_RATES + off + i * 128);
                }
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("LIB", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;
    use snake_sim::{run_kernel, GpuConfig, NullPrefetcher};

    #[test]
    fn streaming_paths_are_chain_predictable() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        // The shared-lambda link gives chains a foothold; the private
        // path arrays have per-warp strides, so intra-warp strides
        // (ideal, full Snake) cover the rest.
        assert!(p.chains > 0.2, "LIB chains: {}", p.chains);
        assert!(p.ideal > 0.7, "LIB ideal: {}", p.ideal);
    }

    #[test]
    fn baseline_hit_rate_is_terrible() {
        let k = trace(&WorkloadSize::tiny());
        let out = run_kernel(GpuConfig::scaled(1), k, |_| Box::new(NullPrefetcher)).unwrap();
        assert!(
            out.stats.l1.hit_rate() < 0.2,
            "LIB must thrash the L1, hit rate {}",
            out.stats.l1.hit_rate()
        );
    }
}

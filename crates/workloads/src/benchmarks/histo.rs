//! histo — Histogram (Parboil \[44\]).
//!
//! Streams the input image sequentially (perfectly prefetchable) and
//! scatters increments into a bin array at data-dependent offsets.
//! The bin region is cache-sized, so the baseline hit rate is high —
//! but input-driven bin bursts cause the bursty-miss congestion the
//! paper highlights for histo (§5.2: +33% with Snake).

use rand::Rng;
use snake_sim::KernelTrace;

use crate::pattern::{rng, warp_grid, WarpBuilder, WorkloadSize};

const INPUT: u64 = 0xa000_0000;
const BINS: u64 = 0xa800_0000;
/// Bin region: 32 KiB (twice the scaled L1) — mostly resident, with
/// conflict bursts.
const BIN_BYTES: u64 = 32 * 1024;
/// Per-warp input span.
const IN_SPAN: u64 = 1 << 20;

/// Generates the histo kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut r = rng(size.seed, 1000 + u64::from(g));
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let input = INPUT + u64::from(g) * IN_SPAN;
            for i in 0..u64::from(size.iters) {
                b.load(110, input + i * 128); // sequential input
                                              // Skewed bin access: hot bins mostly, occasional bursts
                                              // across the whole bin array.
                if r.gen_bool(0.15) {
                    for _ in 0..3 {
                        let bin = (r.gen_range(0..BIN_BYTES) / 128) * 128;
                        b.load(112, BINS + bin);
                        b.store(114, BINS + bin);
                    }
                } else {
                    let bin = (r.gen_range(0..BIN_BYTES / 16) / 128) * 128;
                    b.load(112, BINS + bin);
                    b.store(114, BINS + bin);
                    b.compute(1);
                }
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("histo", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;
    use snake_sim::{run_kernel, GpuConfig, NullPrefetcher};

    #[test]
    fn input_stream_is_predictable_bins_are_not() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal > 0.3 && p.ideal < 0.95, "histo ideal: {}", p.ideal);
    }

    #[test]
    fn baseline_hit_rate_is_high() {
        let k = trace(&WorkloadSize::tiny());
        let out = run_kernel(GpuConfig::scaled(1), k, |_| Box::new(NullPrefetcher)).unwrap();
        assert!(
            out.stats.l1.hit_rate() > 0.25,
            "bins mostly resident: {}",
            out.stats.l1.hit_rate()
        );
    }
}

//! Per-application trace generators (Table 2). Each module documents
//! the real application's memory structure it reproduces and why the
//! substitution preserves the prefetcher-relevant behaviour.

pub mod backprop;
pub mod cp;
pub mod histo;
pub mod hotspot;
pub mod lib_mc;
pub mod lps;
pub mod lud;
pub mod mrq;
pub mod mum;
pub mod nw;
pub mod srad;

//! CP — Coulombic Potential (ISPASS \[5\]).
//!
//! Every thread iterates over the shared atom array computing distance
//! terms for its own grid point. The atom array is streamed in order
//! by *all* warps (broadcast reuse: the first warp misses, the rest
//! hit), with a strided per-warp output write at the end of each
//! chunk. Intra-warp strides dominate; chains add the atom-pair link.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const ATOMS: u64 = 0x2000_0000;
const OUT: u64 = 0x2800_0000;
/// Bytes of atom data consumed per iteration (one cache line: 8 atoms
/// of 16 B each).
const CHUNK: u64 = 128;

/// Generates the CP kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            // Every warp (and every CTA wave) sweeps the *same* atom
            // array: the first wave misses, later waves hit on-chip.
            for i in 0..u64::from(size.iters) {
                // Atom positions: two halves of the atom record
                // stream, a fixed-offset pair (x/y/z then charge).
                b.load(20, ATOMS + i * CHUNK);
                b.load(22, ATOMS + 0x40_0000 + i * CHUNK);
                b.compute(10); // distance + potential math
            }
            b.store(26, OUT + u64::from(g) * 4096);
            b.build(cta)
        })
        .collect();
    KernelTrace::new("CP", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;

    #[test]
    fn regular_streams_are_predictable() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal > 0.8, "CP ideal: {}", p.ideal);
        assert!(p.chains > 0.5, "CP chains: {}", p.chains);
    }

    #[test]
    fn atoms_are_shared_across_warps() {
        let k = trace(&WorkloadSize::tiny());
        // Warp 0 and warp 1 load identical atom addresses.
        let a0 = snake_core::analysis::chains::load_sequence(&k.warps()[0]);
        let a1 = snake_core::analysis::chains::load_sequence(&k.warps()[1]);
        assert_eq!(a0, a1);
    }
}

//! MUM — MUMmerGPU (ISPASS \[5\]).
//!
//! Suffix-tree matching: each thread chases pointers through a large
//! tree with data-dependent branching. Addresses look random at the
//! prefetcher, warps frequently diverge (uncoalesced node fetches),
//! and no mechanism achieves meaningful coverage — MUM is the paper's
//! canonical low-coverage outlier.

use rand::Rng;
use snake_sim::KernelTrace;

use crate::pattern::{random_line_addr, rng, warp_grid, WarpBuilder, WorkloadSize};

const TREE: u64 = 0x4000_0000;
/// Tree size: far beyond any cache.
const TREE_BYTES: u64 = 1 << 26;

/// Generates the MUM kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut r = rng(size.seed, u64::from(g));
            let mut b = WarpBuilder::new();
            b.stagger(g);
            for _ in 0..size.iters {
                // A query walks 2–4 tree levels before mismatching.
                let depth = r.gen_range(2..=4);
                for level in 0..depth {
                    let node = TREE + random_line_addr(&mut r, TREE_BYTES);
                    if r.gen_bool(0.25) {
                        // Divergent node fetch: threads hit two lines.
                        let other = TREE + random_line_addr(&mut r, TREE_BYTES);
                        b.divergent_load(40 + level, vec![node, other]);
                    } else {
                        b.load(40 + level, node);
                    }
                    b.compute(4);
                }
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("MUM", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;

    #[test]
    fn nothing_predicts_pointer_chasing() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal < 0.35, "MUM ideal: {}", p.ideal);
        assert!(p.chains < 0.2, "MUM chains: {}", p.chains);
        assert!(p.mta < 0.2, "MUM mta: {}", p.mta);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = trace(&WorkloadSize::tiny());
        let b = trace(&WorkloadSize::tiny());
        assert_eq!(a, b);
        let mut other = WorkloadSize::tiny();
        other.seed ^= 1;
        assert_ne!(a, trace(&other));
    }
}

//! lud — LU Decomposition (Rodinia \[31\]).
//!
//! Triangular factorization: each elimination step works on a shrinking
//! trailing submatrix, so the *iteration-to-iteration* stride keeps
//! changing (defeating intra-warp training), while the loads *within*
//! one step keep fixed relative offsets (pivot row, current row,
//! diagonal) — a chain Snake can learn even though the walk stride
//! varies.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const MAT: u64 = 0x8000_0000;
/// Matrix row pitch.
const ROW: u64 = 4096;
/// Fixed offset from a row element to the diagonal copy it reads.
const DIAG_OFF: u64 = 256;

/// Generates the lud kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let n = u64::from(size.iters);
    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let base = MAT + u64::from(cta.0) * n * ROW * 2 + u64::from(w) * 128;
            let mut cursor = base;
            for i in 0..n {
                // Pivot element, row element, diagonal scale: fixed
                // relative offsets within the step.
                b.load(80, cursor);
                b.load(82, cursor + ROW);
                b.load(84, cursor + DIAG_OFF);
                b.compute(6);
                b.store(86, cursor + ROW);
                // Shrinking triangular walk: the step grows with i.
                cursor += ROW + (i % 7) * 128;
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("lud", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;

    #[test]
    fn chains_survive_the_variable_walk() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(
            p.chains > p.intra + 0.1,
            "chains {} should clearly beat intra {} on lud",
            p.chains,
            p.intra
        );
    }

    #[test]
    fn variable_stride_hurts_intra() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.intra < 0.5, "intra on lud: {}", p.intra);
    }
}

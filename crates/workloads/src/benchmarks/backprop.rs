//! Backprop — Back Propagation (Rodinia \[31\]).
//!
//! Layered neural-network training: the forward pass streams a weight
//! row per thread (per-warp strided) while broadcasting the shared
//! input vector; the backward pass re-streams the weights in reverse
//! with delta updates. Regular inter-warp strides and two-link chains
//! (input, weight) dominate.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const INPUT: u64 = 0x5000_0000;
const WEIGHTS: u64 = 0x5100_0000;
const DELTA: u64 = 0x5a00_0000;
const GRAD: u64 = 0x5b00_0000;

/// Generates the Backprop kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let half = u64::from(size.iters / 2).max(1);
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let row = WEIGHTS + u64::from(g) * half * 128;
            // Forward pass.
            for i in 0..half {
                b.load(50, INPUT + i * 128); // shared input stream
                b.load(52, row + i * 128); // per-warp weight stream
                b.compute(6);
            }
            // Backward pass (reverse weight stream + delta).
            for i in 0..half {
                b.load(54, DELTA + (i % 16) * 128);
                b.load(56, row + (half - 1 - i) * 128);
                b.compute(6);
                b.store(58, GRAD + u64::from(g) * half * 128 + i * 128);
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("Backprop", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;

    #[test]
    fn forward_and_backward_streams_predictable() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal > 0.6, "backprop ideal: {}", p.ideal);
        // Weight rows are warp-private, so the inter-thread stride
        // differs per warp and chains alone cannot cover backprop —
        // the fixed intra/inter-warp strides (MTA, full Snake) do.
        assert!(p.mta > 0.4, "backprop mta: {}", p.mta);
        assert!(p.chains <= p.mta);
    }

    #[test]
    fn two_phases_generate_expected_loads() {
        let size = WorkloadSize::tiny();
        let k = trace(&size);
        let per_warp = (size.iters / 2) * 4;
        assert_eq!(k.total_loads(), (size.total_warps() * per_warp) as usize);
    }
}

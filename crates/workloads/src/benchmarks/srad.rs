//! Srad — Speckle Reducing Anisotropic Diffusion (Rodinia \[31\]).
//!
//! Image-processing stencil over an image `J` and a diffusion
//! coefficient array `c`, with the bursty access behaviour the paper
//! calls out (§5.2: high baseline hit rate but bursty misses causing
//! congestion): every 16th row triggers a rapid back-to-back burst of
//! loads with no compute gaps.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const IMAGE: u64 = 0x7000_0000;
const COEFF: u64 = 0x7400_0000;
/// Image row pitch.
const ROW: u64 = 4096;
const CTA_ROWS: u64 = 256;

/// Generates the Srad kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            let base = IMAGE + u64::from(cta.0) * CTA_ROWS * ROW + u64::from(w) * 128 + ROW;
            for r in 0..u64::from(size.iters) {
                let ind = base + r * ROW;
                b.load(70, ind);
                b.load(72, ind + ROW); // south neighbor
                b.load(74, ind - IMAGE + COEFF); // c[ind]
                if r % 16 == 15 {
                    // Burst: prefetch-window flush of the next rows,
                    // back-to-back with no compute in between.
                    for k in 1..=6 {
                        b.load(76, ind + k * ROW + 128);
                    }
                } else {
                    b.compute(6);
                }
                b.store(78, ind - IMAGE + COEFF);
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("Srad", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::predictability;

    #[test]
    fn stencil_plus_bursts_remains_predictable() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal > 0.6, "srad ideal: {}", p.ideal);
        assert!(p.chains > 0.4, "srad chains: {}", p.chains);
    }

    #[test]
    fn bursts_exist() {
        let size = WorkloadSize {
            iters: 32,
            ..WorkloadSize::tiny()
        };
        let k = trace(&size);
        // 2 bursts of 6 extra loads each in 32 iters.
        let per_warp_regular = 32 * 3;
        let per_warp = k.total_loads() / k.warp_count();
        assert_eq!(per_warp, per_warp_regular + 12);
    }
}

//! nw — Needleman-Wunsch (Rodinia \[31\]).
//!
//! Dynamic-programming sequence alignment processed in anti-diagonal
//! wavefronts. Accesses are regular *within* a diagonal but each
//! diagonal is a separate short kernel launch with fresh load PCs and
//! a different base — so no pattern repeats often enough to train.
//! The paper singles nw out: "low coverage despite regular patterns,
//! due to the low number of repetitions" (§5.1 observation 7).

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const SCORE: u64 = 0x9000_0000;
const REF: u64 = 0x9400_0000;
/// DP matrix row pitch.
const ROW: u64 = 2048;
/// Loads per diagonal segment (short!).
const SEG: u64 = 3;

/// Generates the nw kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let segments = u64::from(size.iters) / SEG + 1;
    let warps = warp_grid(size)
        .map(|(cta, w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            for d in 0..segments {
                // New diagonal = new kernel launch: fresh PCs, new base.
                let pc = (100 + d * 8) as u32;
                let base =
                    SCORE + u64::from(cta.0) * (1 << 22) + d * (ROW + 128) + u64::from(w) * 256;
                for i in 0..SEG {
                    b.load(pc, base + i * ROW); // north-west deps
                    b.load(pc + 2, REF + d * 128 + i * 128); // reference
                    b.compute(4);
                    b.store(pc + 4, base + i * ROW + 128);
                }
            }
            b.build(cta)
        })
        .collect();
    KernelTrace::new("nw", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::{analyze_chains, predictability, ChainAnalysisConfig};

    #[test]
    fn low_repetition_limits_chain_training() {
        let k = trace(&WorkloadSize::tiny());
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert!(
            r.max_repetition <= SEG as u32,
            "diagonal segments are short: {r:?}"
        );
    }

    #[test]
    fn coverage_is_mediocre_despite_regularity() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.chains < 0.75, "nw chains: {}", p.chains);
        assert!(p.ideal > p.chains, "ideal still higher");
    }
}

//! MRQ — mri-q, MRI reconstruction Q-matrix (Parboil \[44\]).
//!
//! Streams the k-space sample arrays (`kx`, `ky`, `kz`, `phi`) in
//! lockstep — a textbook four-link chain with fixed inter-array
//! offsets and a uniform per-iteration stride — interleaved with
//! trigonometric compute.

use snake_sim::KernelTrace;

use crate::pattern::{warp_grid, WarpBuilder, WorkloadSize};

const KX: u64 = 0xb000_0000;
const KY: u64 = 0xb200_0000;
const KZ: u64 = 0xb400_0000;
const PHI: u64 = 0xb600_0000;
const QOUT: u64 = 0xb800_0000;

/// Generates the MRQ kernel trace.
pub fn trace(size: &WorkloadSize) -> KernelTrace {
    size.assert_valid();
    let warps = warp_grid(size)
        .map(|(cta, _w, g)| {
            let mut b = WarpBuilder::new();
            b.stagger(g);
            // Every warp (and CTA wave) re-sweeps the shared k-space
            // sample arrays (temporal reuse across waves).
            for i in 0..u64::from(size.iters) {
                b.load(120, KX + i * 128);
                b.load(122, KY + i * 128);
                b.load(124, KZ + i * 128);
                b.load(126, PHI + i * 128);
                b.compute(8); // sin/cos accumulation
            }
            b.store(128, QOUT + u64::from(g) * 8192);
            b.build(cta)
        })
        .collect();
    KernelTrace::new("MRQ", warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::analysis::{analyze_chains, predictability, ChainAnalysisConfig};

    #[test]
    fn four_link_chain_is_fully_stable() {
        let k = trace(&WorkloadSize::tiny());
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert!((r.pc_fraction_in_chains - 1.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn everything_regular_is_covered() {
        let k = trace(&WorkloadSize::tiny());
        let p = predictability(&k);
        assert!(p.ideal > 0.85, "mrq ideal: {}", p.ideal);
        assert!(p.chains > 0.7, "mrq chains: {}", p.chains);
    }
}

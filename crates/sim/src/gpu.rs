//! The full device: SMs, interconnect, and the shared memory
//! partition, advanced by a single cycle loop.

use std::collections::VecDeque;
use std::path::Path;

use crate::audit::{self, Auditor};
use crate::config::{ConfigError, GpuConfig};
use crate::json::Value;
use crate::kernel::KernelTrace;
use crate::mem::interconnect::{Interconnect, UpPacket, READ_REQUEST_BYTES};
use crate::mem::partition::MemoryPartition;
use crate::obs::ring::{RingSink, TelemetryRecord, TelemetryRing};
use crate::obs::{
    MetricsSeries, PrefetchLifecycle, SimEvent, TerminalKind, TraceEvent, TraceSink, WindowTotals,
    WindowedMetrics,
};
use crate::perfstat::{HostProfile, HostProfiler, Phase, Stopwatch};
use crate::prefetch::Prefetcher;
use crate::sm::{PendingCta, Sm};
use crate::snapshot::{self, Checkpoint, SnapshotError};
use crate::stats::SimStats;
use crate::types::{Cycle, SmId};
use crate::watchdog::{DeadlockReport, NocCensus, Watchdog};

/// Why a simulation ended.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// All warps retired and the memory system drained.
    Completed,
    /// The configured cycle limit was reached first.
    CycleLimit,
    /// The externally imposed [`GpuConfig::cycle_budget`] ran out: the
    /// run was deliberately truncated (e.g. by a sweep supervisor) and
    /// its statistics cover only the budgeted prefix.
    BudgetExceeded {
        /// The budget that was exhausted, in cycles.
        budget: u64,
    },
    /// The forward-progress watchdog found the device wedged: for
    /// [`GpuConfig::watchdog_cycles`] consecutive cycles nothing
    /// issued, filled, or moved. The boxed report says who was blocked
    /// on what.
    Deadlock(Box<DeadlockReport>),
}

impl StopReason {
    /// Stable lower-case label, matching
    /// [`TerminalKind::label`](crate::obs::TerminalKind::label) for the
    /// corresponding terminal trace event. Used by manifests and
    /// exporters.
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::CycleLimit => "cycle_limit",
            StopReason::BudgetExceeded { .. } => "budget_exceeded",
            StopReason::Deadlock(_) => "deadlock",
        }
    }

    /// Whether the run retired every warp (statistics describe the
    /// whole kernel, not a truncated prefix).
    pub fn is_complete(&self) -> bool {
        matches!(self, StopReason::Completed)
    }
}

/// The simulated GPU.
///
/// # Examples
///
/// ```
/// use snake_sim::{Gpu, GpuConfig, Instr, KernelTrace, NullPrefetcher, WarpTrace, CtaId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kernel = KernelTrace::new(
///     "demo",
///     vec![WarpTrace::new(CtaId(0), vec![Instr::load(0u32, 0u64), Instr::compute(4)])],
/// );
/// let mut gpu = Gpu::new(GpuConfig::scaled(1), kernel, |_| Box::new(NullPrefetcher))?;
/// let outcome = gpu.run();
/// assert!(outcome.stats.instructions >= 2);
/// # Ok(())
/// # }
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    kernel: KernelTrace,
    sms: Vec<Sm>,
    noc: Interconnect,
    partition: MemoryPartition,
    cycle: Cycle,
    watchdog: Option<Watchdog>,
    auditor: Option<Auditor>,
    deadlock: Option<Box<DeadlockReport>>,
    brownout_cycles: u64,
    /// Destination for trace events; `None` (default) leaves every
    /// component's emission path branch-only.
    sink: Option<Box<dyn TraceSink>>,
    /// Reusable buffer events are drained into before forwarding.
    trace_scratch: Vec<TraceEvent>,
    /// Device-level events (brownout transitions, terminal events)
    /// that have no owning component.
    device_events: Vec<TraceEvent>,
    /// Windowed time-series collector, present when
    /// [`GpuConfig::metrics_window`] is set.
    metrics: Option<WindowedMetrics>,
    /// Brownout state at the last step (edge detection for
    /// [`SimEvent::Brownout`]).
    prev_brownout: bool,
    /// Whether last cycle's injection loop hit interconnect
    /// backpressure (uplink credit refused). The SMs read it the next
    /// cycle to attribute `MissQueueFull` rejections to the NoC.
    noc_backpressured: bool,
    /// Device-level host-time accumulator ([`Phase::Observability`]:
    /// trace flushing and metrics sampling), present when
    /// [`GpuConfig::host_profile`] is set. Component accumulators are
    /// merged into the final [`HostProfile`] at the end of `run`.
    prof: Option<HostProfiler>,
    /// Trace events forwarded to the sink so far (throughput input for
    /// the host profile).
    events_flushed: u64,
    /// Live telemetry ring for per-window metric rows (and, via a
    /// [`RingSink`], trace events), attached by
    /// [`Gpu::attach_telemetry`]. With zero subscribers every push is
    /// a counter bump — see the no-observer-effect guarantee on
    /// [`crate::obs::ring`].
    tap: Option<TelemetryRing>,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("kernel", &self.kernel.name())
            .field("sms", &self.sms.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

/// Result of running a kernel to completion.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Device-wide merged statistics.
    pub stats: SimStats,
    /// How the run ended.
    pub stop: StopReason,
    /// Prefetch-lifecycle latency attribution, merged across SMs
    /// (always collected; empty histograms when nothing prefetched).
    pub lifecycle: PrefetchLifecycle,
    /// Windowed time series, present when
    /// [`GpuConfig::metrics_window`] is set.
    pub series: Option<MetricsSeries>,
    /// Host-side performance profile (per-phase wall time of the tick
    /// loop), present when [`GpuConfig::host_profile`] is set.
    pub host: Option<HostProfile>,
}

impl Gpu {
    /// Builds a device and distributes the kernel's CTAs round-robin
    /// over the SMs. `mk_prefetcher` is called once per SM.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    pub fn new(
        cfg: GpuConfig,
        kernel: KernelTrace,
        mut mk_prefetcher: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut sms: Vec<Sm> = (0..cfg.num_sms)
            .map(|i| Sm::new(&cfg, SmId(i), mk_prefetcher(SmId(i))))
            .collect();

        // Group warps into CTAs preserving first-appearance order.
        let mut ctas: Vec<(crate::types::CtaId, Vec<usize>)> = Vec::new();
        for (idx, warp) in kernel.warps().iter().enumerate() {
            match ctas.iter_mut().find(|(c, _)| *c == warp.cta) {
                Some((_, v)) => v.push(idx),
                None => ctas.push((warp.cta, vec![idx])),
            }
        }
        let mut queue: VecDeque<(crate::types::CtaId, Vec<usize>)> = ctas.into();
        let mut sm_rr = 0usize;
        while let Some((cta, warps)) = queue.pop_front() {
            assert!(
                warps.len() <= cfg.max_warps_per_sm as usize,
                "CTA {cta} has {} warps but SMs hold only {}",
                warps.len(),
                cfg.max_warps_per_sm
            );
            sms[sm_rr].enqueue_cta(PendingCta { cta, warps });
            sm_rr = (sm_rr + 1) % sms.len();
        }

        for sm in &mut sms {
            sm.kernel_launch(&kernel);
        }

        let mut noc = Interconnect::new(cfg.noc_bytes_per_cycle, cfg.noc_latency, cfg.bw_window);
        let mut partition = MemoryPartition::new(&cfg);
        let watchdog = cfg.watchdog_cycles.map(Watchdog::new);
        let auditor = cfg.audit_window.map(|_| Auditor::new());
        let metrics = cfg.metrics_window.map(WindowedMetrics::new);
        let prof = if cfg.host_profile {
            for sm in &mut sms {
                sm.enable_profiling();
            }
            noc.enable_profiling();
            partition.enable_profiling();
            Some(HostProfiler::new())
        } else {
            None
        };
        Ok(Gpu {
            cfg,
            kernel,
            sms,
            noc,
            partition,
            cycle: Cycle::ZERO,
            watchdog,
            auditor,
            deadlock: None,
            brownout_cycles: 0,
            sink: None,
            trace_scratch: Vec::new(),
            device_events: Vec::new(),
            metrics,
            prev_brownout: false,
            noc_backpressured: false,
            prof,
            events_flushed: 0,
            tap: None,
        })
    }

    /// Attaches a trace sink and enables event collection in every
    /// component. Buffered events are forwarded to the sink once per
    /// cycle in a fixed order — SMs by id (pipeline, then L1, then
    /// MSHR), then interconnect, then partition, then device-level —
    /// so a given configuration and kernel produce a byte-identical
    /// event stream on every run.
    pub fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        for sm in &mut self.sms {
            sm.enable_trace();
        }
        self.noc.enable_trace();
        self.partition.enable_trace();
        self.sink = Some(sink);
    }

    /// Attaches a live telemetry ring. Per-window [`MetricsSample`]
    /// rows (when [`GpuConfig::metrics_window`] is set) are pushed as
    /// each window closes; with `include_events` the full trace-event
    /// stream is forwarded too (via [`attach_sink`](Gpu::attach_sink)
    /// with a [`RingSink`], so it cannot be combined with another
    /// sink). Subscribers drain the ring from other threads; with none
    /// live, pushes only advance the ring's sequence counter and the
    /// simulation outcome is bit-identical to an untapped run.
    ///
    /// [`MetricsSample`]: crate::obs::MetricsSample
    pub fn attach_telemetry(&mut self, ring: &TelemetryRing, include_events: bool) {
        if include_events {
            self.attach_sink(Box::new(RingSink::new(ring.clone())));
        }
        self.tap = Some(ring.clone());
    }

    /// Forwards the most recently closed metrics window to the
    /// telemetry ring, if one is attached.
    fn tap_window(tap: &Option<TelemetryRing>, metrics: &WindowedMetrics) {
        if let Some(tap) = tap {
            if let Some(sample) = metrics.last_sample() {
                let sample = *sample;
                tap.push(|| TelemetryRecord::Window(sample));
            }
        }
    }

    /// Forwards this cycle's buffered events to the sink, in the fixed
    /// component order documented on [`Gpu::attach_sink`].
    fn flush_trace(&mut self) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let sw = Stopwatch::start(self.prof.is_some());
        self.trace_scratch.clear();
        for sm in &mut self.sms {
            sm.drain_trace(&mut self.trace_scratch);
        }
        self.noc.drain_trace(&mut self.trace_scratch);
        self.partition.drain_trace(&mut self.trace_scratch);
        self.trace_scratch.append(&mut self.device_events);
        for ev in &self.trace_scratch {
            sink.record(ev);
        }
        self.events_flushed += self.trace_scratch.len() as u64;
        self.trace_scratch.clear();
        sw.stop(&mut self.prof, Phase::Observability);
    }

    /// The configuration the device was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Read-only view of the SMs.
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Advances one cycle. Returns `false` once the device is idle,
    /// the cycle limit is reached, or the forward-progress watchdog
    /// trips (see [`StopReason::Deadlock`]).
    pub fn step(&mut self) -> bool {
        let now = self.cycle;

        // Fault injection: scale interconnect bandwidth during brownout
        // windows before this cycle's credit refill.
        let scale = self.cfg.fault.bandwidth_scale(now);
        self.noc.set_bandwidth_scale(scale);
        let brownout = scale < 1.0;
        if brownout {
            self.brownout_cycles += 1;
        }
        if brownout != self.prev_brownout {
            self.prev_brownout = brownout;
            if self.sink.is_some() {
                self.device_events.push(TraceEvent {
                    cycle: now,
                    data: SimEvent::Brownout { active: brownout },
                });
            }
        }

        // Progress baselines for the watchdog.
        let instr_before: u64 = self.sms.iter().map(Sm::instructions_issued).sum();
        let partition_events_before = self.partition.events();
        let mut noc_moved = false;

        self.noc.begin_cycle(now);
        self.partition.tick(now);

        let util = self.noc.utilization();
        let backpressured = self.noc_backpressured;
        for sm in &mut self.sms {
            sm.tick(&self.kernel, now, util, backpressured);
        }
        self.noc_backpressured = false;

        // Inject L1 requests into the interconnect, round-robin start.
        let n = self.sms.len();
        let start = (now.0 as usize) % n;
        let line_bytes = u64::from(self.cfg.l1.line_bytes);
        'inject: for k in 0..n {
            let i = (start + k) % n;
            while self.sms[i].has_outgoing() {
                let req = *self.sms[i]
                    .l1()
                    .peek_outgoing()
                    .expect("has_outgoing checked");
                let is_store = req.kind == crate::cache::unified_l1::RequestKind::Store;
                let bytes = if is_store {
                    line_bytes
                } else {
                    READ_REQUEST_BYTES
                };
                let pkt = UpPacket {
                    sm: SmId(i as u32),
                    line: req.line,
                    is_store,
                };
                if self.noc.try_send_up(pkt, bytes, now) {
                    self.sms[i].pop_outgoing();
                    noc_moved = true;
                } else {
                    self.noc_backpressured = true;
                    break 'inject; // uplink budget spent this cycle
                }
            }
        }

        // Deliver requests to the partition.
        while let Some(up) = self.noc.pop_up(now) {
            noc_moved = true;
            if up.is_store {
                self.partition.push_store(up.line, now);
            } else {
                self.partition.push_read(up.sm, up.line);
            }
        }

        // Send responses back, bandwidth permitting.
        while let Some(resp) = self.partition.pop_response() {
            if !self.noc.try_send_down(resp, line_bytes, now) {
                self.partition.unpop_response(resp);
                break;
            }
            noc_moved = true;
        }

        // Deliver fills to the L1s.
        while let Some(down) = self.noc.pop_down(now) {
            noc_moved = true;
            self.sms[down.sm.0 as usize].deliver_fill(down.line, now);
        }

        for sm in &mut self.sms {
            sm.retire_finished(&self.kernel);
        }

        self.cycle = now.plus(1);

        if let Some(window) = self.cfg.audit_window {
            if self.cycle.0.is_multiple_of(window) {
                self.run_audit(false);
            }
        }

        let done =
            self.sms.iter().all(Sm::is_done) && self.partition.is_idle() && self.noc.is_idle();
        let budget_hit = self
            .cfg
            .cycle_budget
            .is_some_and(|budget| self.cycle >= budget);
        let limit_hit = self.cfg.max_cycles.is_some_and(|limit| self.cycle >= limit);
        let mut advance = !(done || budget_hit || limit_hit);

        if advance {
            if let Some(watchdog) = &mut self.watchdog {
                let instr_after: u64 = self.sms.iter().map(Sm::instructions_issued).sum();
                let progressed = instr_after > instr_before
                    || noc_moved
                    || self.partition.events() > partition_events_before
                    || self.sms.iter().any(|sm| sm.has_busy_warp(now));
                if watchdog.observe(progressed, self.cycle) {
                    let stalled_for = watchdog.stalled_for(self.cycle);
                    self.deadlock = Some(self.deadlock_report(stalled_for));
                    advance = false;
                }
            }
        }
        self.flush_trace();

        // Close the metrics window only after this cycle's trace events
        // are flushed, so a telemetry ring sees the window row *after*
        // every event it covers — live subscribers then observe
        // non-decreasing cycle stamps. The sample itself is unchanged:
        // nothing above mutates the counters it reads.
        if let Some(mut metrics) = self.metrics.take() {
            if self.cycle.0.is_multiple_of(metrics.window()) {
                let sw = Stopwatch::start(self.prof.is_some());
                metrics.record(self.cycle, &self.window_totals());
                Self::tap_window(&self.tap, &metrics);
                sw.stop(&mut self.prof, Phase::Observability);
            }
            self.metrics = Some(metrics);
        }
        advance
    }

    /// Gathers the cumulative/instantaneous counters a windowed-metrics
    /// sample is built from.
    fn window_totals(&self) -> WindowTotals {
        let mut t = WindowTotals {
            noc_utilization: self.noc.utilization(),
            ..WindowTotals::default()
        };
        for sm in &self.sms {
            let l1 = sm.l1();
            let c = &l1.stats;
            t.instructions += sm.instructions_issued();
            t.l1_hits += c.hits + c.hits_on_prefetch;
            t.l1_accesses +=
                c.hits + c.hits_on_prefetch + c.hits_reserved + c.merges_with_prefetch + c.misses;
            t.mshr_occupancy += l1.outstanding_misses();
            t.mshr_capacity += l1.mshr_capacity();
            t.miss_queue_occupancy += l1.miss_queue_len();
            t.miss_queue_capacity += l1.miss_queue_capacity();
            t.active_warps += sm.active_warps();
            t.throttled_sms += usize::from(sm.is_throttled());
            t.max_chain_depth = t.max_chain_depth.max(sm.chain_depth());
            t.stall.merge(&sm.stats.stall);
        }
        t
    }

    /// Merged prefetch-lifecycle histograms across all SMs.
    pub fn prefetch_lifecycle(&self) -> PrefetchLifecycle {
        let mut total = PrefetchLifecycle::default();
        for sm in &self.sms {
            total.merge(&sm.l1().lifecycle);
        }
        total
    }

    /// Snapshot of everything the watchdog can see, for
    /// [`StopReason::Deadlock`].
    fn deadlock_report(&self, stalled_for: u64) -> Box<DeadlockReport> {
        Box::new(DeadlockReport {
            cycle: self.cycle.0,
            stalled_for,
            sms: self.sms.iter().map(Sm::census).collect(),
            noc: NocCensus {
                in_flight_up: self.noc.in_flight_up(),
                in_flight_down: self.noc.in_flight_down(),
            },
            partition: self.partition.census(),
        })
    }

    /// Runs the invariant auditor, panicking on any violation.
    ///
    /// # Panics
    ///
    /// Panics with the full violation list if any conservation law
    /// fails — by design: an invariant break means simulator state is
    /// corrupt and every stat after this point is suspect.
    fn run_audit(&mut self, end_of_run: bool) {
        let Some(mut auditor) = self.auditor.take() else {
            return;
        };
        let mut violations: Vec<String> = Vec::new();
        for sm in &self.sms {
            for v in sm.l1().audit_invariants() {
                violations.push(format!("sm {}: {v}", sm.id().0));
            }
        }
        let stats = self.collect_stats();
        violations.extend(auditor.check_stats(&stats));
        if end_of_run {
            let misses: usize = self.sms.iter().map(|s| s.l1().outstanding_misses()).sum();
            let reserved: u32 = self.sms.iter().map(|s| s.l1().reserved_lines()).sum();
            let queued: usize = self.sms.iter().map(|s| s.l1().miss_queue_len()).sum();
            let in_flight = self.noc.in_flight_up() + self.noc.in_flight_down();
            violations.extend(audit::check_drained(
                misses,
                reserved,
                queued,
                in_flight,
                self.partition.is_idle(),
            ));
        }
        self.auditor = Some(auditor);
        if !violations.is_empty() {
            // Flush the failure into the trace before panicking so an
            // attached sink observes the terminal event.
            if self.sink.is_some() {
                self.device_events.push(TraceEvent {
                    cycle: self.cycle,
                    data: SimEvent::Terminal {
                        kind: TerminalKind::AuditFail,
                        detail: violations.join("\n  "),
                    },
                });
                self.flush_trace();
            }
            panic!(
                "invariant audit failed at cycle {}:\n  {}",
                self.cycle.0,
                violations.join("\n  ")
            );
        }
    }

    /// Runs to completion (or the cycle limit, or a watchdog trip) and
    /// returns merged device statistics.
    pub fn run(&mut self) -> SimOutcome {
        // One clock read per run when profiling; none otherwise.
        let t0 = self.prof.as_ref().map(|_| std::time::Instant::now());
        while self.step() {}
        self.finalize(t0)
    }

    /// Like [`Gpu::run`], but after every cycle asks `suspend` whether
    /// to stop early. Returns `None` when suspended: no terminal trace
    /// event is emitted, no partial metrics window is closed, and the
    /// device can be checkpointed with [`Gpu::checkpoint`] and later
    /// resumed (here or in another process via [`Gpu::restore`]).
    ///
    /// A suspended device is paused mid-run, not finished — calling
    /// [`Gpu::run`] again continues it to a normal outcome.
    pub fn run_interruptible(
        &mut self,
        mut suspend: impl FnMut(Cycle) -> bool,
    ) -> Option<SimOutcome> {
        let t0 = self.prof.as_ref().map(|_| std::time::Instant::now());
        loop {
            if !self.step() {
                return Some(self.finalize(t0));
            }
            if suspend(self.cycle) {
                return None;
            }
        }
    }

    /// Runs to completion while writing a checkpoint of the full
    /// simulator state to `path` (atomically, replacing the previous
    /// one) every [`GpuConfig::checkpoint_every`] cycles. When that
    /// option is `None` this is exactly [`Gpu::run`] — no per-cycle
    /// checkpoint arithmetic, no I/O.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if a checkpoint cannot be written; the
    /// simulation stops at that cycle rather than silently continuing
    /// without crash protection.
    pub fn run_checkpointed(&mut self, path: &Path) -> Result<SimOutcome, SnapshotError> {
        let Some(every) = self.cfg.checkpoint_every else {
            return Ok(self.run());
        };
        self.run_serviced(Some((path, every)), |_, _| {}, |_| false)
            .map(|outcome| outcome.expect("suspend predicate is constant false"))
    }

    /// The serving layer's run loop: [`Gpu::run_interruptible`] and
    /// [`Gpu::run_checkpointed`] combined. Writes a checkpoint of the
    /// full simulator state to `checkpoint.0` (atomically, replacing
    /// the previous one) every `checkpoint.1` cycles, invoking
    /// `on_checkpoint(cycle, bytes)` after each durable write so a
    /// supervisor can journal the artifact; after every cycle asks
    /// `suspend` whether to stop early, returning `None` with the
    /// device paused mid-run (checkpointable via [`Gpu::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if a checkpoint cannot be written; the
    /// simulation stops at that cycle rather than silently continuing
    /// without crash protection.
    pub fn run_serviced(
        &mut self,
        checkpoint: Option<(&Path, u64)>,
        mut on_checkpoint: impl FnMut(u64, u64),
        mut suspend: impl FnMut(Cycle) -> bool,
    ) -> Result<Option<SimOutcome>, SnapshotError> {
        let t0 = self.prof.as_ref().map(|_| std::time::Instant::now());
        loop {
            if !self.step() {
                return Ok(Some(self.finalize(t0)));
            }
            if let Some((path, every)) = checkpoint {
                if self.cycle.0.is_multiple_of(every) {
                    let bytes = self.checkpoint().write_atomic(path)?;
                    // Stamped after the rename lands, so the event is
                    // never part of the artifact it describes; it rides
                    // out with the next cycle's flush.
                    if self.sink.is_some() {
                        self.device_events.push(TraceEvent {
                            cycle: self.cycle,
                            data: SimEvent::CheckpointSaved { bytes },
                        });
                    }
                    on_checkpoint(self.cycle.0, bytes);
                }
            }
            if suspend(self.cycle) {
                return Ok(None);
            }
        }
    }

    /// Computes the stop reason, runs the end-of-run audit, emits the
    /// terminal trace event, closes the final metrics window, and
    /// assembles the [`SimOutcome`]. Shared tail of every `run_*`
    /// entry point, reached only after [`Gpu::step`] returned `false`.
    fn finalize(&mut self, t0: Option<std::time::Instant>) -> SimOutcome {
        let stop = if let Some(report) = self.deadlock.take() {
            StopReason::Deadlock(report)
        } else if self.sms.iter().all(Sm::is_done) {
            StopReason::Completed
        } else if let Some(budget) = self.cfg.cycle_budget.filter(|budget| self.cycle >= *budget) {
            StopReason::BudgetExceeded { budget: budget.0 }
        } else {
            StopReason::CycleLimit
        };
        if self.auditor.is_some() && stop == StopReason::Completed {
            self.run_audit(true);
        }
        if self.sink.is_some() {
            let (kind, detail) = match &stop {
                StopReason::Completed => (TerminalKind::Completed, String::new()),
                StopReason::CycleLimit => (TerminalKind::CycleLimit, String::new()),
                StopReason::BudgetExceeded { budget } => (
                    TerminalKind::BudgetExceeded,
                    format!("cycle budget {budget} exhausted"),
                ),
                StopReason::Deadlock(report) => (TerminalKind::Deadlock, report.to_string()),
            };
            self.device_events.push(TraceEvent {
                cycle: self.cycle,
                data: SimEvent::Terminal { kind, detail },
            });
            self.flush_trace();
        }
        // Close a partial final window so short runs still get a
        // closing sample, and mark truncated series so observability
        // output distinguishes them from converged runs.
        if let Some(mut metrics) = self.metrics.take() {
            if !self.cycle.0.is_multiple_of(metrics.window()) {
                metrics.record(self.cycle, &self.window_totals());
                Self::tap_window(&self.tap, &metrics);
            }
            if !stop.is_complete() {
                metrics.mark_stop(stop.label());
            }
            self.metrics = Some(metrics);
        }
        let host = t0.and_then(|t0| self.collect_host_profile(t0.elapsed().as_nanos() as u64));
        SimOutcome {
            stats: self.collect_stats(),
            stop,
            lifecycle: self.prefetch_lifecycle(),
            series: self.metrics.take().map(WindowedMetrics::finish),
            host,
        }
    }

    /// Merges every component's host-time accumulator into one
    /// [`HostProfile`] (consumes the accumulators; `None` when
    /// profiling is off).
    fn collect_host_profile(&mut self, wall_nanos: u64) -> Option<HostProfile> {
        let mut prof = self.prof.take()?;
        for sm in &mut self.sms {
            sm.merge_profile(&mut prof);
        }
        self.noc.merge_profile(&mut prof);
        self.partition.merge_profile(&mut prof);
        Some(prof.finish(wall_nanos, self.cycle.0, self.events_flushed))
    }

    /// Merges per-SM, interconnect, and partition statistics.
    pub fn collect_stats(&mut self) -> SimStats {
        let mut total = SimStats::default();
        for sm in &mut self.sms {
            sm.finalize_stats();
            total.merge(&sm.stats);
        }
        total.cycles = self.cycle.0;
        total.noc_bytes_up = self.noc.total_bytes_up();
        total.noc_bytes_down = self.noc.total_bytes_down();
        total.l2_hits = self.partition.stats.l2_hits;
        total.l2_misses = self.partition.stats.l2_misses;
        let pf = self.partition.fault_stats();
        total.fault.dropped_responses = pf.dropped_responses;
        total.fault.duplicated_responses = pf.duplicated_responses;
        total.fault.delayed_responses = pf.delayed_responses;
        total.fault.brownout_cycles = self.brownout_cycles;
        total
    }

    /// The deadlock report from a tripped watchdog, if stepping stopped
    /// because of one (also carried by [`StopReason::Deadlock`] when
    /// using [`Gpu::run`]).
    pub fn deadlock_info(&self) -> Option<&DeadlockReport> {
        self.deadlock.as_deref()
    }

    /// Lifetime interconnect utilization (Fig 4).
    pub fn noc_lifetime_utilization(&self) -> f64 {
        self.noc.lifetime_utilization()
    }

    /// Fingerprint of everything a checkpoint's state is only valid
    /// under: the configuration (with fields that do not affect
    /// simulated behavior zeroed — checkpoint cadence, host profiling),
    /// the kernel trace, and the per-SM mechanism names. Two devices
    /// with equal fingerprints step identically, so state captured on
    /// one restores exactly onto the other.
    pub fn fingerprint(&self) -> u64 {
        let mut cfg = self.cfg.clone();
        cfg.checkpoint_every = None;
        cfg.host_profile = false;
        cfg.perf_inject_stall_ns = 0;
        let mut text = format!("{cfg:?}|{:?}", self.kernel);
        for sm in &self.sms {
            text.push('|');
            text.push_str(sm.prefetcher_name());
        }
        snapshot::fnv1a64(text.as_bytes())
    }

    /// Captures the complete mutable simulator state as a checkpoint
    /// artifact. Must be taken at a cycle boundary (between
    /// [`Gpu::step`] calls): [`Gpu::step`] ends by flushing trace
    /// buffers, so none of the transient per-cycle scratch exists then.
    ///
    /// Deliberately excluded (see the `snapshot` module doc): host-time
    /// profiling accumulators, the invariant auditor's reference stats
    /// (rebuilt on the first post-restore audit window), and attached
    /// trace sinks — a resumed run re-attaches its own sink and the
    /// restored `events_flushed` counter keeps throughput accounting
    /// continuous.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: self.fingerprint(),
            state: self.save_state(),
        }
    }

    /// Applies a checkpoint captured by [`Gpu::checkpoint`] onto a
    /// freshly built device (same config, kernel, and mechanism —
    /// enforced via the fingerprint). After this returns, stepping the
    /// device is bit-identical to stepping the one the checkpoint was
    /// taken from.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] when the checkpoint was taken
    /// under a different fingerprint, [`SnapshotError::Malformed`] when
    /// the state document does not decode. On error the device is
    /// unchanged or must be discarded (a malformed document detected
    /// mid-apply leaves partially restored state; callers treat any
    /// error as fatal for this device).
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), SnapshotError> {
        ckpt.verify_fingerprint(self.fingerprint())?;
        self.restore_state(&ckpt.state)?;
        // Mark the splice point on the trace (when a sink is attached
        // before restoring), stamped with the restored cycle. The
        // fingerprint is config-derived, so the stream stays
        // deterministic.
        if self.sink.is_some() {
            self.device_events.push(TraceEvent {
                cycle: self.cycle,
                data: SimEvent::Restored {
                    fingerprint: ckpt.fingerprint,
                },
            });
        }
        Ok(())
    }

    /// Serializes all mutable state. Option-gated components (watchdog,
    /// windowed metrics) encode as `Null` when absent; the fingerprint
    /// guarantees presence agrees between capture and restore.
    fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("cycle".into(), Value::u64(self.cycle.0)),
            ("brownout_cycles".into(), Value::u64(self.brownout_cycles)),
            ("prev_brownout".into(), Value::Bool(self.prev_brownout)),
            (
                "noc_backpressured".into(),
                Value::Bool(self.noc_backpressured),
            ),
            ("events_flushed".into(), Value::u64(self.events_flushed)),
            (
                "sms".into(),
                Value::Arr(self.sms.iter().map(Sm::save_state).collect()),
            ),
            ("noc".into(), self.noc.save_state()),
            ("partition".into(), self.partition.save_state()),
            (
                "watchdog".into(),
                self.watchdog
                    .as_ref()
                    .map_or(Value::Null, Watchdog::save_state),
            ),
            (
                "metrics".into(),
                self.metrics
                    .as_ref()
                    .map_or(Value::Null, WindowedMetrics::save_state),
            ),
        ])
    }

    /// Applies state captured by [`Gpu::save_state`].
    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let cycle = Cycle(snapshot::u64_field(v, "cycle")?);
        let brownout_cycles = snapshot::u64_field(v, "brownout_cycles")?;
        let prev_brownout = snapshot::bool_field(v, "prev_brownout")?;
        let noc_backpressured = snapshot::bool_field(v, "noc_backpressured")?;
        let events_flushed = snapshot::u64_field(v, "events_flushed")?;
        let sms = snapshot::arr_field(v, "sms")?;
        if sms.len() != self.sms.len() {
            return Err(SnapshotError::malformed(format!(
                "checkpoint has {} SMs, device has {}",
                sms.len(),
                self.sms.len()
            )));
        }
        for (sm, state) in self.sms.iter_mut().zip(sms) {
            sm.restore_state(state)?;
        }
        self.noc.restore_state(snapshot::field(v, "noc")?)?;
        self.partition
            .restore_state(snapshot::field(v, "partition")?)?;
        let wd = snapshot::field(v, "watchdog")?;
        match (&mut self.watchdog, wd) {
            (None, Value::Null) => {}
            (Some(w), state) if !matches!(state, Value::Null) => w.restore_state(state)?,
            _ => {
                return Err(SnapshotError::malformed(
                    "watchdog presence disagrees with configuration",
                ));
            }
        }
        let m = snapshot::field(v, "metrics")?;
        match (&mut self.metrics, m) {
            (None, Value::Null) => {}
            (Some(metrics), state) if !matches!(state, Value::Null) => {
                metrics.restore_state(state)?;
            }
            _ => {
                return Err(SnapshotError::malformed(
                    "metrics presence disagrees with configuration",
                ));
            }
        }
        self.cycle = cycle;
        self.brownout_cycles = brownout_cycles;
        self.prev_brownout = prev_brownout;
        self.noc_backpressured = noc_backpressured;
        self.events_flushed = events_flushed;
        self.deadlock = None;
        Ok(())
    }
}

/// A typed error from building or running a simulation.
///
/// The enum is `non_exhaustive` so harnesses that propagate it keep
/// compiling as failure modes are added. (Not `Clone`/`PartialEq`:
/// checkpoint failures carry a [`std::io::Error`].)
#[non_exhaustive]
#[derive(Debug)]
pub enum SimError {
    /// The configuration failed [`GpuConfig::validate`].
    Config(ConfigError),
    /// Writing, loading, or applying a checkpoint failed (see
    /// [`Gpu::run_checkpointed`] and [`Gpu::restore`]).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Snapshot(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<SnapshotError> for SimError {
    fn from(e: SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}

/// Convenience: builds and runs a kernel in one call.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent.
pub fn run_kernel(
    cfg: GpuConfig,
    kernel: KernelTrace,
    mk_prefetcher: impl FnMut(SmId) -> Box<dyn Prefetcher>,
) -> Result<SimOutcome, ConfigError> {
    let mut gpu = Gpu::new(cfg, kernel, mk_prefetcher)?;
    Ok(gpu.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Instr, WarpTrace};
    use crate::prefetch::NullPrefetcher;
    use crate::types::CtaId;

    fn simple_kernel(warps: usize, loads_per_warp: usize) -> KernelTrace {
        let traces = (0..warps)
            .map(|w| {
                let instrs = (0..loads_per_warp)
                    .map(|i| Instr::load(i as u32, ((w * loads_per_warp + i) * 128) as u64))
                    .collect();
                WarpTrace::new(CtaId((w / 4) as u32), instrs)
            })
            .collect();
        KernelTrace::new("test", traces)
    }

    fn run(kernel: KernelTrace) -> SimOutcome {
        run_kernel(GpuConfig::scaled(1), kernel, |_| Box::new(NullPrefetcher)).unwrap()
    }

    #[test]
    fn single_warp_completes() {
        let out = run(simple_kernel(1, 4));
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.stats.instructions, 4);
        assert_eq!(out.stats.demand_loads, 4);
        assert_eq!(out.stats.l1.misses, 4, "all cold misses");
        assert!(out.stats.cycles > 200, "misses pay memory latency");
    }

    #[test]
    fn repeated_loads_hit_in_l1() {
        // Compute between the loads forms a use barrier, so the later
        // loads find valid data (plain hits).
        let instrs = vec![
            Instr::load(0u32, 0u64),
            Instr::compute(2),
            Instr::load(1u32, 0u64),
            Instr::compute(2),
            Instr::load(2u32, 0u64),
        ];
        let k = KernelTrace::new("hits", vec![WarpTrace::new(CtaId(0), instrs)]);
        let out = run(k);
        assert_eq!(out.stats.l1.misses, 1);
        assert_eq!(out.stats.l1.hits, 2);
    }

    #[test]
    fn back_to_back_loads_overlap_misses() {
        // Stall-on-use: four consecutive loads to distinct lines issue
        // back-to-back, overlapping their memory latency (MLP).
        let overlapped = vec![
            Instr::load(0u32, 0u64),
            Instr::load(1u32, 4096u64),
            Instr::load(2u32, 8192u64),
            Instr::load(3u32, 12288u64),
        ];
        let serialized = vec![
            Instr::load(0u32, 0u64),
            Instr::compute(1),
            Instr::load(1u32, 4096u64),
            Instr::compute(1),
            Instr::load(2u32, 8192u64),
            Instr::compute(1),
            Instr::load(3u32, 12288u64),
        ];
        let fast = run(KernelTrace::new(
            "mlp",
            vec![WarpTrace::new(CtaId(0), overlapped)],
        ));
        let slow = run(KernelTrace::new(
            "serial",
            vec![WarpTrace::new(CtaId(0), serialized)],
        ));
        assert!(
            (fast.stats.cycles as f64) < (slow.stats.cycles as f64) * 0.5,
            "MLP must overlap latency: {} vs {}",
            fast.stats.cycles,
            slow.stats.cycles
        );
    }

    #[test]
    fn tlp_hides_latency() {
        // 16 warps, disjoint lines: more warps should not be 16x slower.
        let one = run(simple_kernel(1, 8)).stats.cycles;
        let many = run(simple_kernel(16, 8)).stats.cycles;
        assert!(
            (many as f64) < (one as f64) * 8.0,
            "TLP must overlap latency: 1 warp {one} cy, 16 warps {many} cy"
        );
    }

    #[test]
    fn compute_only_kernel_is_fast() {
        let instrs = vec![Instr::compute(2); 10];
        let k = KernelTrace::new("compute", vec![WarpTrace::new(CtaId(0), instrs)]);
        let out = run(k);
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.stats.demand_loads, 0);
        assert!(out.stats.cycles < 100);
    }

    #[test]
    fn stores_complete_and_count() {
        let instrs = vec![Instr::store(0u32, 0u64), Instr::store(1u32, 128u64)];
        let k = KernelTrace::new("stores", vec![WarpTrace::new(CtaId(0), instrs)]);
        let out = run(k);
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.stats.stores, 2);
        assert!(out.stats.noc_bytes_up >= 256, "store data on the wire");
    }

    #[test]
    fn cycle_limit_stops_runaway() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.max_cycles = Some(Cycle(100));
        let out = run_kernel(cfg, simple_kernel(8, 100), |_| Box::new(NullPrefetcher)).unwrap();
        assert_eq!(out.stop, StopReason::CycleLimit);
        assert_eq!(out.stats.cycles, 100);
    }

    #[test]
    fn cycle_budget_truncates_with_its_own_stop_reason() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.cycle_budget = Some(Cycle(100));
        let out = run_kernel(cfg, simple_kernel(8, 100), |_| Box::new(NullPrefetcher)).unwrap();
        assert_eq!(out.stop, StopReason::BudgetExceeded { budget: 100 });
        assert_eq!(out.stop.label(), "budget_exceeded");
        assert!(!out.stop.is_complete());
        assert_eq!(out.stats.cycles, 100);
    }

    #[test]
    fn budget_beneath_max_cycles_wins_and_completion_beats_both() {
        // Budget below the safety net: the budget is reported.
        let mut cfg = GpuConfig::scaled(1);
        cfg.cycle_budget = Some(Cycle(100));
        cfg.max_cycles = Some(Cycle(10_000));
        let out = run_kernel(cfg, simple_kernel(8, 100), |_| Box::new(NullPrefetcher)).unwrap();
        assert_eq!(out.stop, StopReason::BudgetExceeded { budget: 100 });
        // A run that finishes inside the budget stays Completed.
        let mut cfg = GpuConfig::scaled(1);
        cfg.cycle_budget = Some(Cycle(1_000_000));
        let out = run_kernel(cfg, simple_kernel(1, 2), |_| Box::new(NullPrefetcher)).unwrap();
        assert_eq!(out.stop, StopReason::Completed);
        assert!(out.stop.is_complete());
    }

    #[test]
    fn sim_error_wraps_and_displays_config_errors() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.miss_queue_depth = 0;
        let err = SimError::from(cfg.validate().unwrap_err());
        assert!(err.to_string().contains("miss_queue_depth"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn multi_sm_distributes_ctas() {
        let cfg = GpuConfig::scaled(2);
        let kernel = simple_kernel(8, 4); // 2 CTAs of 4 warps
        let mut gpu = Gpu::new(cfg, kernel, |_| Box::new(NullPrefetcher)).unwrap();
        let out = gpu.run();
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.stats.instructions, 32);
    }

    #[test]
    fn more_ctas_than_slots_queue_up() {
        // 10 CTAs x 4 warps = 40 warps on 1 SM with 16 slots.
        let out = run(simple_kernel(40, 3));
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.stats.instructions, 120);
    }

    #[test]
    fn memory_bound_kernel_shows_memory_stalls() {
        let out = run(simple_kernel(16, 32));
        assert!(out.stats.all_stall_cycles > 0);
        assert!(out.stats.memory_stall_fraction() > 0.5);
    }
}

//! Per-warp execution state inside an SM.
//!
//! The simulator uses a simple but faithful warp model: a warp issues
//! its trace in order and blocks on memory (stall-on-load). Thread
//! level parallelism across the SM's resident warps provides the
//! latency hiding, exactly the mechanism whose breakdown (the memory
//! wall) the paper quantifies in Figs 3–5.

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::types::{Address, CtaId, Cycle, Pc};

/// Execution state of a warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Can issue this cycle (includes retrying reservation-failed
    /// transactions still in `pending`).
    Ready,
    /// Executing compute (or absorbing L1 hit latency) until the cycle.
    Busy(Cycle),
    /// Blocked on outstanding memory responses.
    Waiting,
}

/// A resident warp: trace cursor plus memory bookkeeping.
#[derive(Debug, Clone)]
pub struct WarpSlot {
    /// CTA this warp belongs to.
    pub cta: CtaId,
    /// Index of this warp's trace in the kernel.
    pub trace_idx: usize,
    /// Monotonic launch sequence number (for "oldest" scheduling).
    pub launch_seq: u64,
    /// Next instruction index in the trace.
    pub next: usize,
    /// Current state.
    pub state: WarpState,
    /// Transactions of the current memory instruction not yet accepted
    /// by the L1 (reservation-fail retry set).
    pub pending: Vec<Address>,
    /// PC of the in-flight memory instruction.
    pub cur_pc: Pc,
    /// Whether the in-flight memory instruction is a load.
    pub cur_is_load: bool,
    /// Whether the in-flight load was coalesced to one transaction
    /// (divergent warps are excluded from prefetcher training, §3.4).
    pub cur_coalesced: bool,
    /// Outstanding memory responses the warp is waiting for.
    pub outstanding: u32,
    /// Whether the current `Busy` state was entered by a memory
    /// instruction (absorbing L1 hit latency or a store settle) rather
    /// than compute. Disambiguates `Barrier` from `Scoreboard` in the
    /// stall taxonomy: an all-busy scheduler partition with a
    /// memory-entered busy warp is a memory-use barrier, not a compute
    /// dependency.
    pub busy_mem: bool,
}

impl WarpSlot {
    /// Creates a fresh slot about to execute `trace_idx`.
    pub fn new(cta: CtaId, trace_idx: usize, launch_seq: u64) -> Self {
        WarpSlot {
            cta,
            trace_idx,
            launch_seq,
            next: 0,
            state: WarpState::Ready,
            pending: Vec::new(),
            cur_pc: Pc(0),
            cur_is_load: false,
            cur_coalesced: true,
            outstanding: 0,
            busy_mem: false,
        }
    }

    /// Whether the warp can be picked by a scheduler this cycle.
    /// Busy warps whose deadline has passed are normalized to
    /// [`WarpState::Ready`] by [`WarpSlot::refresh`] first.
    pub fn issuable(&self) -> bool {
        self.state == WarpState::Ready
    }

    /// Normalizes time-based state transitions at the start of a cycle.
    pub fn refresh(&mut self, now: Cycle) {
        if let WarpState::Busy(until) = self.state {
            if until <= now {
                self.state = WarpState::Ready;
            }
        }
    }

    /// Whether the warp is stalled *on memory* (for the Fig 5 stall
    /// taxonomy): waiting for responses or retrying rejected
    /// transactions.
    pub fn memory_stalled(&self) -> bool {
        self.state == WarpState::Waiting
            || (self.state == WarpState::Ready && !self.pending.is_empty() && self.outstanding == 0)
            || (self.state == WarpState::Ready && !self.pending.is_empty())
    }

    /// Records a completed memory response; returns `true` when the
    /// warp became ready again.
    pub fn complete_response(&mut self) -> bool {
        debug_assert!(self.outstanding > 0, "spurious response");
        self.outstanding -= 1;
        if self.outstanding == 0 && self.state == WarpState::Waiting && self.pending.is_empty() {
            self.state = WarpState::Ready;
            true
        } else {
            false
        }
    }

    /// Called when the current memory instruction's transactions are
    /// all accepted: block on responses or absorb the hit latency.
    pub fn settle_mem_instr(&mut self, now: Cycle, hit_latency: u32) {
        debug_assert!(self.pending.is_empty());
        if self.outstanding > 0 {
            self.state = WarpState::Waiting;
        } else {
            self.state = WarpState::Busy(now.plus(u64::from(hit_latency)));
            self.busy_mem = true;
        }
    }

    /// Serializes the complete slot for a checkpoint.
    pub fn save_state(&self) -> Value {
        let state = match self.state {
            WarpState::Ready => Value::Null,
            WarpState::Busy(until) => Value::u64(until.0),
            WarpState::Waiting => Value::Bool(true),
        };
        Value::Obj(vec![
            ("cta".into(), Value::u64(u64::from(self.cta.0))),
            ("trace_idx".into(), Value::u64(self.trace_idx as u64)),
            ("launch_seq".into(), Value::u64(self.launch_seq)),
            ("next".into(), Value::u64(self.next as u64)),
            ("state".into(), state),
            (
                "pending".into(),
                Value::Arr(self.pending.iter().map(|a| Value::u64(a.0)).collect()),
            ),
            ("cur_pc".into(), Value::u64(u64::from(self.cur_pc.0))),
            ("cur_is_load".into(), Value::Bool(self.cur_is_load)),
            ("cur_coalesced".into(), Value::Bool(self.cur_coalesced)),
            (
                "outstanding".into(),
                Value::u64(u64::from(self.outstanding)),
            ),
            ("busy_mem".into(), Value::Bool(self.busy_mem)),
        ])
    }

    /// Rebuilds a slot from [`save_state`](WarpSlot::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field.
    pub fn from_state(v: &Value) -> Result<WarpSlot, SnapshotError> {
        let state = match snapshot::field(v, "state")? {
            Value::Null => WarpState::Ready,
            Value::Bool(true) => WarpState::Waiting,
            other => WarpState::Busy(Cycle(
                other
                    .as_u64()
                    .ok_or_else(|| SnapshotError::malformed("warp state"))?,
            )),
        };
        let pending = snapshot::arr_field(v, "pending")?
            .iter()
            .map(|a| a.as_u64().map(Address))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| SnapshotError::malformed("warp pending address"))?;
        Ok(WarpSlot {
            cta: CtaId(snapshot::u32_field(v, "cta")?),
            trace_idx: snapshot::usize_field(v, "trace_idx")?,
            launch_seq: snapshot::u64_field(v, "launch_seq")?,
            next: snapshot::usize_field(v, "next")?,
            state,
            pending,
            cur_pc: Pc(snapshot::u32_field(v, "cur_pc")?),
            cur_is_load: snapshot::bool_field(v, "cur_is_load")?,
            cur_coalesced: snapshot::bool_field(v, "cur_coalesced")?,
            outstanding: snapshot::u32_field(v, "outstanding")?,
            busy_mem: snapshot::bool_field(v, "busy_mem")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_refreshes_to_ready() {
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.state = WarpState::Busy(Cycle(10));
        w.refresh(Cycle(9));
        assert_eq!(w.state, WarpState::Busy(Cycle(10)));
        assert!(!w.issuable());
        w.refresh(Cycle(10));
        assert!(w.issuable());
    }

    #[test]
    fn responses_unblock_when_all_arrive() {
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.outstanding = 2;
        w.state = WarpState::Waiting;
        assert!(!w.complete_response());
        assert!(w.complete_response());
        assert_eq!(w.state, WarpState::Ready);
    }

    #[test]
    fn settle_blocks_or_busies() {
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.outstanding = 1;
        w.settle_mem_instr(Cycle(5), 28);
        assert_eq!(w.state, WarpState::Waiting);

        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.settle_mem_instr(Cycle(5), 28);
        assert_eq!(w.state, WarpState::Busy(Cycle(33)));
    }

    #[test]
    fn memory_stall_taxonomy() {
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        assert!(!w.memory_stalled());
        w.state = WarpState::Waiting;
        assert!(w.memory_stalled());
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.pending.push(Address(4));
        assert!(
            w.memory_stalled(),
            "retrying a reservation fail is a memory stall"
        );
        let mut w = WarpSlot::new(CtaId(0), 0, 0);
        w.state = WarpState::Busy(Cycle(100));
        assert!(!w.memory_stalled(), "compute busy is not a memory stall");
    }
}

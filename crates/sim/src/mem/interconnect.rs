//! Bandwidth-limited interconnection network between the SMs' L1
//! caches and the shared L2.
//!
//! Models a per-direction byte budget per cycle and a fixed transit
//! latency. Utilization is measured over a sliding window — this is
//! the signal Snake's bandwidth throttle watches (halt ≥70% of peak,
//! resume ≤50%, §3.3) and the metric of Fig 4.

use std::collections::VecDeque;

use crate::json::Value;
use crate::obs::{NocDir, SimEvent, TraceEvent};
use crate::perfstat::{HostProfiler, Phase, Stopwatch};
use crate::snapshot::{self, SnapshotError};
use crate::types::{Cycle, LineAddr, SmId};

/// A request travelling L1→L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpPacket {
    /// Originating SM (for routing the response).
    pub sm: SmId,
    /// Target line.
    pub line: LineAddr,
    /// Write-through store traffic (no response expected).
    pub is_store: bool,
}

/// A fill response travelling L2→L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownPacket {
    /// Destination SM.
    pub sm: SmId,
    /// Filled line.
    pub line: LineAddr,
}

/// Size in bytes of a read-request header on the wire.
pub const READ_REQUEST_BYTES: u64 = 32;

#[derive(Debug, Clone)]
struct Channel<T> {
    budget: u64,
    /// Budget actually granted per cycle; below `budget` during an
    /// injected bandwidth brownout.
    effective_budget: u64,
    /// Token-bucket credit; may go negative when a packet larger than
    /// one cycle's budget is sent (it then borrows from future cycles,
    /// modeling multi-cycle flit serialization).
    credit: i64,
    latency: u64,
    in_flight: VecDeque<(Cycle, T)>,
    total_bytes: u64,
    window_bytes: u64,
}

impl<T> Channel<T> {
    fn new(budget: u64, latency: u64) -> Self {
        Channel {
            budget,
            effective_budget: budget,
            credit: budget as i64,
            latency,
            in_flight: VecDeque::new(),
            total_bytes: 0,
            window_bytes: 0,
        }
    }

    fn begin_cycle(&mut self) {
        let b = self.effective_budget as i64;
        self.credit = (self.credit + b).min(b);
    }

    fn try_send(&mut self, pkt: T, bytes: u64, now: Cycle) -> bool {
        if self.credit <= 0 {
            return false;
        }
        self.credit -= bytes as i64;
        self.total_bytes += bytes;
        self.window_bytes += bytes;
        self.in_flight.push_back((now.plus(self.latency), pkt));
        true
    }

    fn pop_arrived(&mut self, now: Cycle) -> Option<T> {
        if let Some((ready, _)) = self.in_flight.front() {
            if *ready <= now {
                return self.in_flight.pop_front().map(|(_, p)| p);
            }
        }
        None
    }

    /// Serializes the runtime channel state (budget and latency are
    /// config-derived). Packets encode through `enc`, prefixed with
    /// their ready cycle.
    fn save_state(&self, enc: impl Fn(&T) -> Vec<Value>) -> Value {
        let in_flight = self
            .in_flight
            .iter()
            .map(|(ready, pkt)| {
                let mut row = vec![Value::u64(ready.0)];
                row.extend(enc(pkt));
                Value::Arr(row)
            })
            .collect();
        Value::Obj(vec![
            ("effective_budget".into(), Value::u64(self.effective_budget)),
            ("credit".into(), snapshot::i64_value(self.credit)),
            ("in_flight".into(), Value::Arr(in_flight)),
            ("total_bytes".into(), Value::u64(self.total_bytes)),
            ("window_bytes".into(), Value::u64(self.window_bytes)),
        ])
    }

    /// Restores from [`Channel::save_state`]; `dec` decodes the packet
    /// fields that follow the ready cycle. Nothing is applied until the
    /// whole in-flight queue decodes.
    fn restore_state(
        &mut self,
        v: &Value,
        dec: impl Fn(&[Value]) -> Option<T>,
    ) -> Result<(), SnapshotError> {
        let mut in_flight = VecDeque::new();
        for entry in snapshot::arr_field(v, "in_flight")? {
            let row = entry
                .as_arr()
                .ok_or_else(|| SnapshotError::malformed("in-flight packet"))?;
            let ready = row
                .first()
                .and_then(Value::as_u64)
                .ok_or_else(|| SnapshotError::malformed("in-flight ready cycle"))?;
            let pkt =
                dec(&row[1..]).ok_or_else(|| SnapshotError::malformed("in-flight packet body"))?;
            in_flight.push_back((Cycle(ready), pkt));
        }
        self.effective_budget = snapshot::u64_field(v, "effective_budget")?;
        self.credit = snapshot::i64_field(v, "credit")?;
        self.in_flight = in_flight;
        self.total_bytes = snapshot::u64_field(v, "total_bytes")?;
        self.window_bytes = snapshot::u64_field(v, "window_bytes")?;
        Ok(())
    }
}

/// The L1↔L2 interconnect.
#[derive(Debug, Clone)]
pub struct Interconnect {
    up: Channel<UpPacket>,
    down: Channel<DownPacket>,
    window: u64,
    window_start: Cycle,
    last_window_utilization: f64,
    /// Deliverable bytes accumulated over the current window (both
    /// directions at their *effective* budgets). Utilization is
    /// measured against this, so a brownout raises utilization for the
    /// same traffic — exactly the signal Snake's bandwidth throttle
    /// must see to back off.
    window_capacity: u64,
    cycles: u64,
    /// Enqueue/dequeue events buffered while tracing is enabled; the
    /// GPU drains them each cycle. `None` (default) keeps the send/pop
    /// hot paths to a single branch.
    trace: Option<Vec<TraceEvent>>,
    /// Host-time accumulator for [`Phase::Noc`]. `None` (default)
    /// keeps every timed entry point to a single branch.
    prof: Option<HostProfiler>,
}

impl Interconnect {
    /// Creates an interconnect with `bytes_per_cycle` per direction,
    /// `latency` cycles transit time, and a utilization-measurement
    /// window of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `window` is zero.
    pub fn new(bytes_per_cycle: u32, latency: u32, window: u32) -> Self {
        assert!(bytes_per_cycle > 0 && window > 0);
        Interconnect {
            up: Channel::new(u64::from(bytes_per_cycle), u64::from(latency)),
            down: Channel::new(u64::from(bytes_per_cycle), u64::from(latency)),
            window: u64::from(window),
            window_start: Cycle::ZERO,
            last_window_utilization: 0.0,
            window_capacity: 0,
            cycles: 0,
            trace: None,
            prof: None,
        }
    }

    /// Starts accumulating host-time for the interconnect's phase (see
    /// [`perfstat`](crate::perfstat)).
    pub fn enable_profiling(&mut self) {
        self.prof = Some(HostProfiler::new());
    }

    /// Folds the interconnect's host-time accumulator into `into`.
    pub fn merge_profile(&mut self, into: &mut HostProfiler) {
        if let Some(prof) = self.prof.take() {
            into.merge(&prof);
        }
    }

    /// Starts buffering [`SimEvent::NocEnqueue`]/[`SimEvent::NocDequeue`]
    /// events.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Moves buffered trace events into `out`.
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some(buf) = self.trace.as_mut() {
            out.append(buf);
        }
    }

    /// Scales both directions' per-cycle budgets (fault-injected
    /// brownouts). `1.0` restores full bandwidth; the effective budget
    /// never drops below one byte per cycle.
    pub fn set_bandwidth_scale(&mut self, scale: f64) {
        debug_assert!((0.0..=1.0).contains(&scale) && scale > 0.0);
        let eff = ((self.up.budget as f64 * scale) as u64).max(1);
        self.up.effective_budget = eff;
        self.down.effective_budget = eff;
    }

    /// Starts a new cycle: refreshes per-cycle credits and rolls the
    /// utilization window.
    pub fn begin_cycle(&mut self, now: Cycle) {
        let sw = Stopwatch::start(self.prof.is_some());
        self.up.begin_cycle();
        self.down.begin_cycle();
        self.cycles += 1;
        if now.since(self.window_start) >= self.window {
            let capacity = self.window_capacity.max(1);
            self.last_window_utilization =
                (self.up.window_bytes + self.down.window_bytes) as f64 / capacity as f64;
            self.up.window_bytes = 0;
            self.down.window_bytes = 0;
            self.window_capacity = 0;
            self.window_start = now;
        }
        self.window_capacity += self.up.effective_budget + self.down.effective_budget;
        sw.stop(&mut self.prof, Phase::Noc);
    }

    /// Utilization (both directions) measured over the last completed
    /// window, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.last_window_utilization
    }

    /// Attempts to inject a request; `false` when this cycle's uplink
    /// budget is exhausted.
    pub fn try_send_up(&mut self, pkt: UpPacket, bytes: u64, now: Cycle) -> bool {
        let sw = Stopwatch::start(self.prof.is_some());
        let sent = self.up.try_send(pkt, bytes, now);
        if sent {
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent {
                    cycle: now,
                    data: SimEvent::NocEnqueue {
                        dir: NocDir::Up,
                        sm: pkt.sm,
                        line: pkt.line,
                        bytes,
                    },
                });
            }
        }
        sw.stop(&mut self.prof, Phase::Noc);
        sent
    }

    /// Attempts to inject a response; `false` when this cycle's
    /// downlink budget is exhausted.
    pub fn try_send_down(&mut self, pkt: DownPacket, bytes: u64, now: Cycle) -> bool {
        let sw = Stopwatch::start(self.prof.is_some());
        let sent = self.down.try_send(pkt, bytes, now);
        if sent {
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent {
                    cycle: now,
                    data: SimEvent::NocEnqueue {
                        dir: NocDir::Down,
                        sm: pkt.sm,
                        line: pkt.line,
                        bytes,
                    },
                });
            }
        }
        sw.stop(&mut self.prof, Phase::Noc);
        sent
    }

    /// Pops the next request that has completed transit.
    pub fn pop_up(&mut self, now: Cycle) -> Option<UpPacket> {
        let sw = Stopwatch::start(self.prof.is_some());
        let pkt = self.up.pop_arrived(now);
        if let Some(p) = pkt {
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent {
                    cycle: now,
                    data: SimEvent::NocDequeue {
                        dir: NocDir::Up,
                        sm: p.sm,
                        line: p.line,
                    },
                });
            }
        }
        sw.stop(&mut self.prof, Phase::Noc);
        pkt
    }

    /// Pops the next response that has completed transit.
    pub fn pop_down(&mut self, now: Cycle) -> Option<DownPacket> {
        let sw = Stopwatch::start(self.prof.is_some());
        let pkt = self.down.pop_arrived(now);
        if let Some(p) = pkt {
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent {
                    cycle: now,
                    data: SimEvent::NocDequeue {
                        dir: NocDir::Down,
                        sm: p.sm,
                        line: p.line,
                    },
                });
            }
        }
        sw.stop(&mut self.prof, Phase::Noc);
        pkt
    }

    /// Total bytes ever sent L1→L2.
    pub fn total_bytes_up(&self) -> u64 {
        self.up.total_bytes
    }

    /// Total bytes ever sent L2→L1.
    pub fn total_bytes_down(&self) -> u64 {
        self.down.total_bytes
    }

    /// Whether no packets are in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.up.in_flight.is_empty() && self.down.in_flight.is_empty()
    }

    /// Requests currently in flight L1→L2 (deadlock diagnostics).
    pub fn in_flight_up(&self) -> usize {
        self.up.in_flight.len()
    }

    /// Responses currently in flight L2→L1 (deadlock diagnostics).
    pub fn in_flight_down(&self) -> usize {
        self.down.in_flight.len()
    }

    /// Lifetime utilization over `cycles` simulated cycles (Fig 4).
    pub fn lifetime_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let capacity = 2 * self.up.budget * self.cycles;
        (self.up.total_bytes + self.down.total_bytes) as f64 / capacity as f64
    }

    /// Serializes in-flight packets, credits, brownout scaling, and the
    /// utilization window for a checkpoint. Budgets, latency, and the
    /// window length are config-derived and not captured; trace and
    /// profiling attachments are runtime-only (the trace buffer is
    /// drained every cycle, so it is empty at a checkpoint boundary).
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            (
                "up".into(),
                self.up.save_state(|p| {
                    vec![
                        Value::u64(u64::from(p.sm.0)),
                        Value::u64(p.line.0),
                        Value::Bool(p.is_store),
                    ]
                }),
            ),
            (
                "down".into(),
                self.down
                    .save_state(|p| vec![Value::u64(u64::from(p.sm.0)), Value::u64(p.line.0)]),
            ),
            ("window_start".into(), Value::u64(self.window_start.0)),
            (
                "last_window_utilization".into(),
                Value::f64(self.last_window_utilization),
            ),
            ("window_capacity".into(), Value::u64(self.window_capacity)),
            ("cycles".into(), Value::u64(self.cycles)),
        ])
    }

    /// Restores from [`save_state`](Interconnect::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.up.restore_state(snapshot::field(v, "up")?, |row| {
            if let [sm, line, is_store] = row {
                Some(UpPacket {
                    sm: SmId(sm.as_u32()?),
                    line: LineAddr(line.as_u64()?),
                    is_store: is_store.as_bool()?,
                })
            } else {
                None
            }
        })?;
        self.down
            .restore_state(snapshot::field(v, "down")?, |row| {
                if let [sm, line] = row {
                    Some(DownPacket {
                        sm: SmId(sm.as_u32()?),
                        line: LineAddr(line.as_u64()?),
                    })
                } else {
                    None
                }
            })?;
        self.window_start = Cycle(snapshot::u64_field(v, "window_start")?);
        self.last_window_utilization = snapshot::f64_field(v, "last_window_utilization")?;
        self.window_capacity = snapshot::u64_field(v, "window_capacity")?;
        self.cycles = snapshot::u64_field(v, "cycles")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(line: u64) -> UpPacket {
        UpPacket {
            sm: SmId(0),
            line: LineAddr(line),
            is_store: false,
        }
    }

    #[test]
    fn bandwidth_budget_limits_per_cycle() {
        let mut n = Interconnect::new(64, 2, 16);
        n.begin_cycle(Cycle(0));
        assert!(n.try_send_up(pkt(1), 32, Cycle(0)));
        assert!(n.try_send_up(pkt(2), 32, Cycle(0)));
        assert!(!n.try_send_up(pkt(3), 32, Cycle(0)), "64B budget spent");
        n.begin_cycle(Cycle(1));
        assert!(n.try_send_up(pkt(3), 32, Cycle(1)), "credit refreshed");
    }

    #[test]
    fn latency_delays_arrival() {
        let mut n = Interconnect::new(64, 3, 16);
        n.begin_cycle(Cycle(0));
        assert!(n.try_send_up(pkt(1), 32, Cycle(0)));
        assert!(n.pop_up(Cycle(2)).is_none());
        let p = n.pop_up(Cycle(3)).unwrap();
        assert_eq!(p.line, LineAddr(1));
        assert!(n.pop_up(Cycle(4)).is_none(), "drained");
    }

    #[test]
    fn fifo_order_preserved() {
        let mut n = Interconnect::new(640, 1, 16);
        n.begin_cycle(Cycle(0));
        for i in 0..4 {
            assert!(n.try_send_up(pkt(i), 32, Cycle(0)));
        }
        for i in 0..4 {
            assert_eq!(n.pop_up(Cycle(1)).unwrap().line, LineAddr(i));
        }
    }

    #[test]
    fn windowed_utilization() {
        let mut n = Interconnect::new(100, 1, 4);
        // Send 100 B/cycle up for 4 cycles: half of the 2x100 peak.
        for cy in 0..5u64 {
            n.begin_cycle(Cycle(cy));
            if cy < 4 {
                assert!(n.try_send_up(pkt(cy), 100, Cycle(cy)));
            }
        }
        assert!((n.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn brownout_reduces_per_cycle_budget() {
        let mut n = Interconnect::new(64, 2, 16);
        n.set_bandwidth_scale(0.5);
        n.begin_cycle(Cycle(0));
        assert!(n.try_send_up(pkt(1), 32, Cycle(0)));
        assert!(!n.try_send_up(pkt(2), 32, Cycle(0)), "32 B brownout budget");
        n.set_bandwidth_scale(1.0);
        n.begin_cycle(Cycle(1));
        assert!(n.try_send_up(pkt(2), 32, Cycle(1)));
        assert!(n.try_send_up(pkt(3), 32, Cycle(1)), "full budget restored");
    }

    #[test]
    fn brownout_raises_windowed_utilization_for_same_traffic() {
        // 50 B/cy of traffic: 25% of healthy capacity, 50% of a half-
        // bandwidth brownout's capacity.
        let mut healthy = Interconnect::new(100, 1, 4);
        let mut browned = Interconnect::new(100, 1, 4);
        browned.set_bandwidth_scale(0.5);
        for cy in 0..5u64 {
            healthy.begin_cycle(Cycle(cy));
            browned.begin_cycle(Cycle(cy));
            if cy < 4 {
                assert!(healthy.try_send_up(pkt(cy), 50, Cycle(cy)));
                assert!(browned.try_send_up(pkt(cy), 50, Cycle(cy)));
            }
        }
        assert!((healthy.utilization() - 0.25).abs() < 1e-9);
        assert!((browned.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn in_flight_census() {
        let mut n = Interconnect::new(640, 5, 16);
        n.begin_cycle(Cycle(0));
        n.try_send_up(pkt(1), 32, Cycle(0));
        n.try_send_up(pkt(2), 32, Cycle(0));
        assert_eq!(n.in_flight_up(), 2);
        assert_eq!(n.in_flight_down(), 0);
        assert!(!n.is_idle());
    }

    #[test]
    fn lifetime_utilization_counts_both_directions() {
        let mut n = Interconnect::new(100, 1, 4);
        n.begin_cycle(Cycle(0));
        n.try_send_up(pkt(0), 50, Cycle(0));
        n.try_send_down(
            DownPacket {
                sm: SmId(0),
                line: LineAddr(0),
            },
            150,
            Cycle(0),
        );
        assert_eq!(n.total_bytes_up(), 50);
        assert_eq!(n.total_bytes_down(), 150);
        assert!((n.lifetime_utilization() - 1.0).abs() < 1e-9);
    }
}

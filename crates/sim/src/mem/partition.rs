//! The shared memory partition: banked L2 cache backed by a
//! latency/bandwidth DRAM model.
//!
//! Requests arrive from the interconnect, are serviced by up to
//! `l2_banks` bank lookups per cycle, and produce fill responses after
//! the L2 service latency (hits) or the additional DRAM latency
//! (misses). DRAM line transfers are bandwidth-limited.

use std::collections::{HashMap, VecDeque};

use crate::cache::tag_array::{LineState, Side, TagArray};
use crate::config::GpuConfig;
use crate::fault::{FaultInjector, ResponseFault};
use crate::json::Value;
use crate::mem::interconnect::DownPacket;
use crate::obs::{FaultKind, SimEvent, TraceEvent};
use crate::perfstat::{HostProfiler, Phase, Stopwatch};
use crate::snapshot::{self, SnapshotError};
use crate::stats::{persist_u64_fields, FaultStats};
use crate::types::{Cycle, LineAddr, SmId};

/// A read request pending in the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRead {
    sm: SmId,
    line: LineAddr,
}

/// Partition statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// L2 lookups that hit.
    pub l2_hits: u64,
    /// L2 lookups that missed (DRAM reads).
    pub l2_misses: u64,
    /// Store (write) requests absorbed.
    pub stores: u64,
    /// DRAM read transactions issued.
    pub dram_reads: u64,
}

persist_u64_fields!(PartitionStats {
    l2_hits,
    l2_misses,
    stores,
    dram_reads,
});

/// The L2 + DRAM memory partition.
#[derive(Debug, Clone)]
pub struct MemoryPartition {
    l2: TagArray,
    line_bytes: u32,
    banks: u32,
    l2_service_latency: u64,
    dram_latency: u64,
    /// Byte credit added per cycle for DRAM transfers.
    dram_bytes_per_cycle: u64,
    dram_credit: u64,
    /// Requests waiting for a bank this cycle.
    incoming: VecDeque<PendingRead>,
    /// L2-hit responses in flight (ready_cycle, packet).
    hit_pipe: VecDeque<(Cycle, DownPacket)>,
    /// DRAM reads waiting for bandwidth.
    dram_queue: VecDeque<PendingRead>,
    /// DRAM reads in flight (ready_cycle ordered FIFO: fixed latency).
    dram_pipe: VecDeque<(Cycle, PendingRead)>,
    /// Requesters merged onto an outstanding DRAM read per line.
    dram_merges: HashMap<LineAddr, Vec<SmId>>,
    /// Responses ready to go back over the interconnect.
    outbox: VecDeque<DownPacket>,
    /// Responses held back by injected delay faults (constant delay,
    /// so FIFO release order is preserved).
    delayed: VecDeque<(Cycle, DownPacket)>,
    /// Injected-fault decision stream for outgoing responses.
    injector: FaultInjector,
    /// Monotone count of state-changing events, for the
    /// forward-progress watchdog (a partition quietly working through
    /// its DRAM pipe is progress even when nothing crosses the NoC).
    events: u64,
    /// Fault-injection events buffered while tracing is enabled; the
    /// GPU drains them each cycle. `None` (default) keeps `emit` to a
    /// single extra branch.
    trace: Option<Vec<TraceEvent>>,
    /// Host-time accumulator for [`Phase::MemPartition`]. `None`
    /// (default) keeps every timed entry point to a single branch.
    prof: Option<HostProfiler>,
    /// Test hook: busy-wait this many host nanoseconds per tick (see
    /// [`GpuConfig::perf_inject_stall_ns`]); 0 disables.
    inject_stall_ns: u64,
    /// Counters.
    pub stats: PartitionStats,
}

impl MemoryPartition {
    /// Builds the partition from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        // The configured l2_hit_latency is the total L1→data latency;
        // subtract the interconnect round trip to get bank time.
        let noc_round_trip = u64::from(2 * cfg.noc_latency);
        let l2_service = u64::from(cfg.l2_hit_latency)
            .saturating_sub(noc_round_trip)
            .max(1);
        MemoryPartition {
            l2: TagArray::new(cfg.l2.lines(), cfg.l2.ways),
            line_bytes: cfg.l2.line_bytes,
            banks: cfg.l2_banks,
            l2_service_latency: l2_service,
            dram_latency: u64::from(cfg.dram_latency),
            dram_bytes_per_cycle: u64::from(cfg.dram_bytes_per_cycle),
            dram_credit: 0,
            incoming: VecDeque::new(),
            hit_pipe: VecDeque::new(),
            dram_queue: VecDeque::new(),
            dram_pipe: VecDeque::new(),
            dram_merges: HashMap::new(),
            outbox: VecDeque::new(),
            delayed: VecDeque::new(),
            injector: FaultInjector::new(cfg.fault),
            events: 0,
            trace: None,
            prof: None,
            inject_stall_ns: cfg.perf_inject_stall_ns,
            stats: PartitionStats::default(),
        }
    }

    /// Starts accumulating host-time for the partition's phase (see
    /// [`perfstat`](crate::perfstat)).
    pub fn enable_profiling(&mut self) {
        self.prof = Some(HostProfiler::new());
    }

    /// Folds the partition's host-time accumulator into `into`.
    pub fn merge_profile(&mut self, into: &mut HostProfiler) {
        if let Some(prof) = self.prof.take() {
            into.merge(&prof);
        }
    }

    /// Starts buffering [`SimEvent::FaultInjected`] events.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Moves buffered trace events into `out`.
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some(buf) = self.trace.as_mut() {
            out.append(buf);
        }
    }

    fn trace_fault(&mut self, kind: FaultKind, pkt: DownPacket, now: Cycle) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(TraceEvent {
                cycle: now,
                data: SimEvent::FaultInjected {
                    kind,
                    sm: pkt.sm,
                    line: pkt.line,
                },
            });
        }
    }

    /// Routes a finished read response through the fault injector.
    fn emit(&mut self, pkt: DownPacket, now: Cycle) {
        match self.injector.on_response() {
            ResponseFault::Deliver => self.outbox.push_back(pkt),
            ResponseFault::Drop => {
                // stats counted by the injector
                self.trace_fault(FaultKind::Drop, pkt, now);
            }
            ResponseFault::Duplicate => {
                self.trace_fault(FaultKind::Duplicate, pkt, now);
                self.outbox.push_back(pkt);
                self.outbox.push_back(pkt);
            }
            ResponseFault::Delay(extra) => {
                self.trace_fault(FaultKind::Delay, pkt, now);
                self.delayed.push_back((now.plus(extra), pkt));
            }
        }
    }

    /// Accepts a read request from the interconnect.
    pub fn push_read(&mut self, sm: SmId, line: LineAddr) {
        let sw = Stopwatch::start(self.prof.is_some());
        self.incoming.push_back(PendingRead { sm, line });
        sw.stop(&mut self.prof, Phase::MemPartition);
    }

    /// Accepts a write-through store: updates the L2 if present and
    /// consumes DRAM write bandwidth (no response).
    pub fn push_store(&mut self, line: LineAddr, now: Cycle) {
        let sw = Stopwatch::start(self.prof.is_some());
        self.stats.stores += 1;
        if let Some(way) = self.l2.probe(line) {
            if self.l2.line(way).state == LineState::Valid {
                self.l2.touch(way, now);
            }
        }
        // Write data consumes DRAM bandwidth alongside reads.
        self.dram_credit = self.dram_credit.saturating_sub(u64::from(self.line_bytes));
        sw.stop(&mut self.prof, Phase::MemPartition);
    }

    /// Advances the partition by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        let sw = Stopwatch::start(self.prof.is_some());
        if self.inject_stall_ns > 0 {
            // Perf-gate test hook: burn host time without touching any
            // simulated state. Busy-wait because OS sleep granularity
            // (~1 ms on some platforms) is far too coarse per tick.
            let t0 = std::time::Instant::now();
            while (t0.elapsed().as_nanos() as u64) < self.inject_stall_ns {
                std::hint::spin_loop();
            }
        }
        self.tick_inner(now);
        sw.stop(&mut self.prof, Phase::MemPartition);
    }

    fn tick_inner(&mut self, now: Cycle) {
        // 0. Release fault-delayed responses whose hold expired.
        while let Some((ready, _)) = self.delayed.front() {
            if *ready > now {
                break;
            }
            let (_, pkt) = self.delayed.pop_front().expect("front checked");
            self.outbox.push_back(pkt);
            self.events += 1;
        }

        // 1. DRAM completions fill the L2 and produce responses.
        while let Some((ready, _)) = self.dram_pipe.front() {
            if *ready > now {
                break;
            }
            let (_, req) = self.dram_pipe.pop_front().expect("front checked");
            self.fill_l2(req.line, now);
            self.emit(
                DownPacket {
                    sm: req.sm,
                    line: req.line,
                },
                now,
            );
            if let Some(extra) = self.dram_merges.remove(&req.line) {
                for sm in extra {
                    self.emit(DownPacket { sm, line: req.line }, now);
                }
            }
            self.events += 1;
        }

        // 2. L2 hit pipeline completions.
        while let Some((ready, _)) = self.hit_pipe.front() {
            if *ready > now {
                break;
            }
            let (_, pkt) = self.hit_pipe.pop_front().expect("front checked");
            self.emit(pkt, now);
            self.events += 1;
        }

        // 3. Bank services.
        for _ in 0..self.banks {
            let Some(req) = self.incoming.pop_front() else {
                break;
            };
            self.service(req, now);
            self.events += 1;
        }

        // 4. DRAM bandwidth: accumulate credit, start queued reads.
        self.dram_credit = self
            .dram_credit
            .saturating_add(self.dram_bytes_per_cycle)
            .min(self.dram_bytes_per_cycle * 8);
        while self.dram_credit >= u64::from(self.line_bytes) {
            let Some(req) = self.dram_queue.pop_front() else {
                break;
            };
            self.dram_credit -= u64::from(self.line_bytes);
            self.stats.dram_reads += 1;
            self.dram_pipe.push_back((now.plus(self.dram_latency), req));
            self.events += 1;
        }
    }

    fn service(&mut self, req: PendingRead, now: Cycle) {
        // Merge with an outstanding DRAM read for the same line.
        if self.dram_merges.contains_key(&req.line)
            || self.dram_pipe.iter().any(|(_, r)| r.line == req.line)
            || self.dram_queue.iter().any(|r| r.line == req.line)
        {
            self.dram_merges.entry(req.line).or_default().push(req.sm);
            // Merged requests still count as L2 misses (they need DRAM).
            self.stats.l2_misses += 1;
            return;
        }
        match self.l2.probe(req.line) {
            Some(way) if self.l2.line(way).state == LineState::Valid => {
                self.l2.touch(way, now);
                self.stats.l2_hits += 1;
                self.hit_pipe.push_back((
                    now.plus(self.l2_service_latency),
                    DownPacket {
                        sm: req.sm,
                        line: req.line,
                    },
                ));
            }
            _ => {
                self.stats.l2_misses += 1;
                self.dram_queue.push_back(req);
            }
        }
    }

    fn fill_l2(&mut self, line: LineAddr, now: Cycle) {
        if self.l2.probe(line).is_some() {
            return; // Raced with another fill.
        }
        if let Some(victim) = self.l2.find_victim(line, |_| true) {
            if self.l2.line(victim).state == LineState::Valid {
                self.l2.evict(victim);
            }
            self.l2.reserve(victim, line, Side::Demand, now);
            self.l2.fill(victim, now);
        }
    }

    /// Pops the next response ready for the interconnect.
    pub fn pop_response(&mut self) -> Option<DownPacket> {
        let sw = Stopwatch::start(self.prof.is_some());
        let pkt = self.outbox.pop_front();
        sw.stop(&mut self.prof, Phase::MemPartition);
        pkt
    }

    /// Pushes back a response the interconnect could not take this
    /// cycle.
    pub fn unpop_response(&mut self, pkt: DownPacket) {
        self.outbox.push_front(pkt);
    }

    /// Whether all queues and pipes are empty (quiescence check).
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
            && self.hit_pipe.is_empty()
            && self.dram_queue.is_empty()
            && self.dram_pipe.is_empty()
            && self.outbox.is_empty()
            && self.delayed.is_empty()
    }

    /// Monotone count of state-changing events (watchdog input).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Fault counters accumulated by this partition's injector.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats
    }

    /// Serializes the complete partition state for a checkpoint: the
    /// L2 tag array, every queue and pipe, DRAM merge table (sorted by
    /// line for order-independence of the backing `HashMap`), fault
    /// injector, and counters. Latencies, bank count, and bandwidth are
    /// config-derived; trace and profiling attachments are
    /// runtime-only (the trace buffer is drained every cycle, so it is
    /// empty at a checkpoint boundary).
    pub fn save_state(&self) -> Value {
        let read =
            |r: &PendingRead| Value::Arr(vec![Value::u64(u64::from(r.sm.0)), Value::u64(r.line.0)]);
        let pkt =
            |p: &DownPacket| Value::Arr(vec![Value::u64(u64::from(p.sm.0)), Value::u64(p.line.0)]);
        let timed_read = |(ready, r): &(Cycle, PendingRead)| {
            Value::Arr(vec![
                Value::u64(ready.0),
                Value::u64(u64::from(r.sm.0)),
                Value::u64(r.line.0),
            ])
        };
        let timed_pkt = |(ready, p): &(Cycle, DownPacket)| {
            Value::Arr(vec![
                Value::u64(ready.0),
                Value::u64(u64::from(p.sm.0)),
                Value::u64(p.line.0),
            ])
        };
        let mut merges: Vec<_> = self.dram_merges.iter().collect();
        merges.sort_by_key(|(line, _)| line.0);
        let merges = merges
            .into_iter()
            .map(|(line, sms)| {
                Value::Arr(vec![
                    Value::u64(line.0),
                    Value::Arr(sms.iter().map(|s| Value::u64(u64::from(s.0))).collect()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("l2".into(), self.l2.save_state()),
            ("dram_credit".into(), Value::u64(self.dram_credit)),
            (
                "incoming".into(),
                Value::Arr(self.incoming.iter().map(read).collect()),
            ),
            (
                "hit_pipe".into(),
                Value::Arr(self.hit_pipe.iter().map(timed_pkt).collect()),
            ),
            (
                "dram_queue".into(),
                Value::Arr(self.dram_queue.iter().map(read).collect()),
            ),
            (
                "dram_pipe".into(),
                Value::Arr(self.dram_pipe.iter().map(timed_read).collect()),
            ),
            ("dram_merges".into(), Value::Arr(merges)),
            (
                "outbox".into(),
                Value::Arr(self.outbox.iter().map(pkt).collect()),
            ),
            (
                "delayed".into(),
                Value::Arr(self.delayed.iter().map(timed_pkt).collect()),
            ),
            ("injector".into(), self.injector.save_state()),
            ("events".into(), Value::u64(self.events)),
            ("stats".into(), self.stats.save_state()),
        ])
    }

    /// Restores from [`save_state`](MemoryPartition::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field;
    /// queues are fully decoded before anything is applied.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        fn decode_read(row: &[Value]) -> Option<PendingRead> {
            if let [sm, line] = row {
                Some(PendingRead {
                    sm: SmId(sm.as_u32()?),
                    line: LineAddr(line.as_u64()?),
                })
            } else {
                None
            }
        }
        fn decode_pkt(row: &[Value]) -> Option<DownPacket> {
            if let [sm, line] = row {
                Some(DownPacket {
                    sm: SmId(sm.as_u32()?),
                    line: LineAddr(line.as_u64()?),
                })
            } else {
                None
            }
        }
        fn queue<T>(
            v: &Value,
            key: &str,
            dec: impl Fn(&[Value]) -> Option<T>,
        ) -> Result<VecDeque<T>, SnapshotError> {
            snapshot::arr_field(v, key)?
                .iter()
                .map(|entry| {
                    entry
                        .as_arr()
                        .and_then(&dec)
                        .ok_or_else(|| SnapshotError::malformed(format!("partition {key} entry")))
                })
                .collect()
        }
        fn timed<T>(
            v: &Value,
            key: &str,
            dec: impl Fn(&[Value]) -> Option<T>,
        ) -> Result<VecDeque<(Cycle, T)>, SnapshotError> {
            snapshot::arr_field(v, key)?
                .iter()
                .map(|entry| {
                    entry
                        .as_arr()
                        .and_then(|row| {
                            let ready = row.first()?.as_u64()?;
                            Some((Cycle(ready), dec(&row[1..])?))
                        })
                        .ok_or_else(|| SnapshotError::malformed(format!("partition {key} entry")))
                })
                .collect()
        }
        let incoming = queue(v, "incoming", decode_read)?;
        let hit_pipe = timed(v, "hit_pipe", decode_pkt)?;
        let dram_queue = queue(v, "dram_queue", decode_read)?;
        let dram_pipe = timed(v, "dram_pipe", decode_read)?;
        let outbox = queue(v, "outbox", decode_pkt)?;
        let delayed = timed(v, "delayed", decode_pkt)?;
        let mut dram_merges = HashMap::new();
        for entry in snapshot::arr_field(v, "dram_merges")? {
            let (line, sms) = entry
                .as_arr()
                .and_then(|row| {
                    if let [line, sms] = row {
                        let sms = sms
                            .as_arr()?
                            .iter()
                            .map(|s| s.as_u32().map(SmId))
                            .collect::<Option<Vec<_>>>()?;
                        Some((LineAddr(line.as_u64()?), sms))
                    } else {
                        None
                    }
                })
                .ok_or_else(|| SnapshotError::malformed("partition dram_merges entry"))?;
            dram_merges.insert(line, sms);
        }
        self.l2.restore_state(snapshot::field(v, "l2")?)?;
        self.injector
            .restore_state(snapshot::field(v, "injector")?)?;
        self.stats.restore_state(snapshot::field(v, "stats")?)?;
        self.dram_credit = snapshot::u64_field(v, "dram_credit")?;
        self.events = snapshot::u64_field(v, "events")?;
        self.incoming = incoming;
        self.hit_pipe = hit_pipe;
        self.dram_queue = dram_queue;
        self.dram_pipe = dram_pipe;
        self.dram_merges = dram_merges;
        self.outbox = outbox;
        self.delayed = delayed;
        Ok(())
    }

    /// Snapshot of queue and pipe occupancy for deadlock reports.
    pub fn census(&self) -> PartitionCensus {
        PartitionCensus {
            incoming: self.incoming.len(),
            hit_pipe: self.hit_pipe.len(),
            dram_queue: self.dram_queue.len(),
            dram_pipe: self.dram_pipe.len(),
            merged_readers: self.dram_merges.values().map(Vec::len).sum(),
            outbox: self.outbox.len(),
            fault_delayed: self.delayed.len(),
        }
    }
}

/// Occupancy snapshot of the memory partition's internal queues,
/// embedded in [`DeadlockReport`](crate::DeadlockReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCensus {
    /// Requests waiting for an L2 bank.
    pub incoming: usize,
    /// L2-hit responses still in the service pipeline.
    pub hit_pipe: usize,
    /// DRAM reads waiting for bandwidth.
    pub dram_queue: usize,
    /// DRAM reads in flight.
    pub dram_pipe: usize,
    /// Extra readers merged onto outstanding DRAM reads.
    pub merged_readers: usize,
    /// Responses waiting for the interconnect.
    pub outbox: usize,
    /// Responses held back by injected delay faults.
    pub fault_delayed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> MemoryPartition {
        let mut cfg = GpuConfig::scaled(1);
        cfg.l2_hit_latency = 50; // service = 50 - 40 = 10
        cfg.noc_latency = 20;
        cfg.dram_latency = 100;
        MemoryPartition::new(&cfg)
    }

    fn run_until_response(p: &mut MemoryPartition, start: u64, limit: u64) -> (u64, DownPacket) {
        for cy in start..start + limit {
            p.tick(Cycle(cy));
            if let Some(pkt) = p.pop_response() {
                return (cy, pkt);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let mut p = part();
        p.push_read(SmId(0), LineAddr(7));
        let (cy_miss, pkt) = run_until_response(&mut p, 0, 400);
        assert_eq!(pkt.line, LineAddr(7));
        assert!(cy_miss >= 100, "DRAM latency applies, got {cy_miss}");
        assert_eq!(p.stats.l2_misses, 1);
        assert!(p.is_idle());

        // Second read of the same line hits in L2 and is much faster.
        p.push_read(SmId(1), LineAddr(7));
        let (cy_hit, pkt) = run_until_response(&mut p, cy_miss + 1, 400);
        assert_eq!(pkt.sm, SmId(1));
        assert!(cy_hit - cy_miss < 20, "L2 hit should be fast");
        assert_eq!(p.stats.l2_hits, 1);
    }

    #[test]
    fn concurrent_reads_same_line_are_merged() {
        let mut p = part();
        p.push_read(SmId(0), LineAddr(3));
        p.tick(Cycle(0));
        p.push_read(SmId(1), LineAddr(3));
        let mut got = Vec::new();
        for cy in 1..400u64 {
            p.tick(Cycle(cy));
            while let Some(pkt) = p.pop_response() {
                got.push(pkt.sm);
            }
        }
        assert_eq!(p.stats.dram_reads, 1, "one DRAM read for both");
        got.sort_by_key(|s| s.0);
        assert_eq!(got, vec![SmId(0), SmId(1)]);
    }

    #[test]
    fn bank_limit_serializes_service() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.l2_banks = 1;
        let mut p = MemoryPartition::new(&cfg);
        for i in 0..3u64 {
            p.push_read(SmId(0), LineAddr(i));
        }
        p.tick(Cycle(0));
        assert_eq!(p.incoming.len(), 2, "one bank serves one request/cycle");
    }

    #[test]
    fn dram_bandwidth_limits_read_starts() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.dram_bytes_per_cycle = 64; // half a line per cycle
        cfg.l2_banks = 16;
        let mut p = MemoryPartition::new(&cfg);
        for i in 0..4u64 {
            p.push_read(SmId(0), LineAddr(i));
        }
        p.tick(Cycle(0)); // all serviced by banks, queued for DRAM
                          // 64 B/cy credit: one 128 B line starts every 2 cycles.
        assert!(p.stats.dram_reads <= 1);
        p.tick(Cycle(1));
        p.tick(Cycle(2));
        assert!(p.stats.dram_reads <= 2);
    }

    #[test]
    fn dropped_responses_never_leave_the_partition() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.fault.drop_response = 1.0;
        let mut p = MemoryPartition::new(&cfg);
        p.push_read(SmId(0), LineAddr(1));
        for cy in 0..500u64 {
            p.tick(Cycle(cy));
            assert!(p.pop_response().is_none(), "all responses dropped");
        }
        assert!(p.is_idle(), "the read was serviced, its response eaten");
        assert_eq!(p.fault_stats().dropped_responses, 1);
    }

    #[test]
    fn duplicated_responses_arrive_twice() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.fault.duplicate_response = 1.0;
        let mut p = MemoryPartition::new(&cfg);
        p.push_read(SmId(0), LineAddr(1));
        let mut got = 0;
        for cy in 0..500u64 {
            p.tick(Cycle(cy));
            while let Some(pkt) = p.pop_response() {
                assert_eq!(pkt.line, LineAddr(1));
                got += 1;
            }
        }
        assert_eq!(got, 2);
        assert_eq!(p.fault_stats().duplicated_responses, 1);
    }

    #[test]
    fn delayed_responses_arrive_late_and_block_idle() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.fault.delay_response = 1.0;
        cfg.fault.delay_cycles = 300;
        let mut p = MemoryPartition::new(&cfg);
        p.push_read(SmId(0), LineAddr(1));
        let mut baseline = MemoryPartition::new(&GpuConfig::scaled(1));
        baseline.push_read(SmId(0), LineAddr(1));
        let (cy_base, _) = run_until_response(&mut baseline, 0, 600);
        let (cy_delayed, _) = run_until_response(&mut p, 0, 1200);
        assert!(
            cy_delayed >= cy_base + 250,
            "delay must apply: {cy_base} vs {cy_delayed}"
        );
        assert_eq!(p.fault_stats().delayed_responses, 1);
    }

    #[test]
    fn census_tracks_queues() {
        let mut cfg = GpuConfig::scaled(1);
        cfg.l2_banks = 1;
        let mut p = MemoryPartition::new(&cfg);
        for i in 0..3u64 {
            p.push_read(SmId(0), LineAddr(i));
        }
        assert_eq!(p.census().incoming, 3);
        let before = p.events();
        p.tick(Cycle(0));
        assert_eq!(p.census().incoming, 2);
        assert!(p.events() > before, "servicing counts as progress");
    }

    #[test]
    fn store_touches_l2_and_makes_no_response() {
        let mut p = part();
        p.push_store(LineAddr(1), Cycle(0));
        for cy in 0..50 {
            p.tick(Cycle(cy));
        }
        assert!(p.pop_response().is_none());
        assert_eq!(p.stats.stores, 1);
    }
}

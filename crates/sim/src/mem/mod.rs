//! Memory-side components: the L1<->L2 interconnect and the shared
//! L2 + DRAM memory partition.

pub mod interconnect;
pub mod partition;

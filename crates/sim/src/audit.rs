//! Invariant auditor: conservation-law checks over the whole device.
//!
//! Enabled by [`GpuConfig::audit_window`](crate::GpuConfig): every
//! window the auditor verifies the structural invariants the rest of
//! the simulator silently relies on, and panics with a precise
//! description the moment one breaks — *at the cycle it breaks*, not
//! thousands of cycles later when a stat goes negative or a warp
//! never retires. Building with the `audit` cargo feature turns the
//! window on by default in both config constructors.
//!
//! Checked each window:
//!
//! * **L1 conservation** (per SM, see
//!   [`UnifiedL1::audit_invariants`](crate::cache::unified_l1::UnifiedL1::audit_invariants)):
//!   MSHR occupancy within capacity, miss queue within depth, a 1:1
//!   correspondence between MSHR entries and reserved cache lines, and
//!   free/demand/prefetch/reserved line counts summing to capacity.
//! * **Stats monotonicity**: every cumulative counter is
//!   non-decreasing between windows (a decrease means double-counting
//!   or underflow somewhere).
//! * **End of run** (on completion): the MSHRs, miss queues,
//!   interconnect, and partition have all drained — every reservation
//!   was eventually filled.

use crate::stats::SimStats;

/// Cross-window auditor state (previous stats snapshot).
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    prev: Option<SimStats>,
}

/// The cumulative counters that must never decrease, with names for
/// the violation message.
fn monotone_counters(s: &SimStats) -> [(&'static str, u64); 25] {
    [
        ("cycles", s.cycles),
        ("instructions", s.instructions),
        ("demand_loads", s.demand_loads),
        ("stores", s.stores),
        ("all_stall_cycles", s.all_stall_cycles),
        ("all_stall_mem_cycles", s.all_stall_mem_cycles),
        ("stall.issued", s.stall.issued),
        ("stall.no_warp", s.stall.no_warp),
        ("stall.barrier", s.stall.barrier),
        ("stall.scoreboard", s.stall.scoreboard),
        ("stall.mem_data", s.stall.mem_data),
        ("stall.mem_struct_mshr", s.stall.mem_struct_mshr),
        ("stall.mem_struct_missq", s.stall.mem_struct_missq),
        ("stall.mem_struct_noc", s.stall.mem_struct_noc),
        ("stall.scheduler_cycles", s.stall.scheduler_cycles),
        ("l1.hits", s.l1.hits),
        ("l1.misses", s.l1.misses),
        ("l1.evictions", s.l1.evictions),
        ("l2_hits", s.l2_hits),
        ("l2_misses", s.l2_misses),
        ("noc_bytes_up", s.noc_bytes_up),
        ("noc_bytes_down", s.noc_bytes_down),
        ("prefetch.issued", s.prefetch.issued),
        ("prefetch.fills", s.prefetch.fills),
        ("fault.reissued_requests", s.fault.reissued_requests),
    ]
}

impl Auditor {
    /// Creates an auditor with no history.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Checks stats monotonicity against the previous window's
    /// snapshot and records the new one. Returns violations.
    pub fn check_stats(&mut self, current: &SimStats) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(prev) = &self.prev {
            for ((name, now), (_, before)) in monotone_counters(current)
                .iter()
                .zip(monotone_counters(prev).iter())
            {
                if now < before {
                    violations.push(format!("counter {name} went backwards: {before} -> {now}"));
                }
            }
        }
        if !current.stall.is_exact() {
            violations.push(format!(
                "stall taxonomy not exact: buckets sum to {}, scheduler cycles {}",
                current.stall.total(),
                current.stall.scheduler_cycles
            ));
        }
        self.prev = Some(*current);
        violations
    }
}

/// End-of-run drain obligations: each argument is a residue that must
/// be zero (or idle) once the device reports completion.
pub(crate) fn check_drained(
    outstanding_misses: usize,
    reserved_lines: u32,
    miss_queue: usize,
    noc_in_flight: usize,
    partition_idle: bool,
) -> Vec<String> {
    let mut v = Vec::new();
    if outstanding_misses != 0 {
        v.push(format!(
            "{outstanding_misses} MSHR entries never completed after quiescence"
        ));
    }
    if reserved_lines != 0 {
        v.push(format!(
            "{reserved_lines} reserved lines never filled after quiescence"
        ));
    }
    if miss_queue != 0 {
        v.push(format!("{miss_queue} requests stuck in a miss queue"));
    }
    if noc_in_flight != 0 {
        v.push(format!("{noc_in_flight} packets stuck on the interconnect"));
    }
    if !partition_idle {
        v.push("memory partition not idle after quiescence".to_string());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_window_never_violates() {
        let mut a = Auditor::new();
        assert!(a.check_stats(&SimStats::default()).is_empty());
    }

    #[test]
    fn monotone_growth_is_clean() {
        let mut a = Auditor::new();
        let mut s = SimStats::default();
        for i in 0..10 {
            s.cycles = i * 100;
            s.instructions = i * 42;
            s.l1.hits = i * 7;
            assert!(a.check_stats(&s).is_empty(), "window {i}");
        }
    }

    #[test]
    fn backwards_counter_is_flagged() {
        let mut a = Auditor::new();
        let mut s = SimStats {
            instructions: 100,
            ..SimStats::default()
        };
        assert!(a.check_stats(&s).is_empty());
        s.instructions = 50;
        let v = a.check_stats(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("instructions"));
        assert!(v[0].contains("100 -> 50"));
    }

    #[test]
    fn inexact_stall_partition_is_flagged() {
        let mut a = Auditor::new();
        let mut s = SimStats::default();
        s.stall.issued = 3;
        s.stall.scheduler_cycles = 4;
        let v = a.check_stats(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not exact"));
        assert!(v[0].contains("3"));
        // Closing the gap clears the violation.
        s.stall.mem_data = 1;
        assert!(a.check_stats(&s).is_empty());
    }

    #[test]
    fn drain_check_reports_every_residue() {
        assert!(check_drained(0, 0, 0, 0, true).is_empty());
        let v = check_drained(3, 2, 1, 4, false);
        assert_eq!(v.len(), 5);
        assert!(v[0].contains("3 MSHR entries"));
        assert!(v[4].contains("partition"));
    }
}

//! A dependency-free JSON value, parser, and writer.
//!
//! The build environment has no crates registry (the workspace's
//! `serde` resolves to a no-op marker stub), but the sweep supervisor
//! needs a real wire format for its checkpoint manifests. This module
//! is the smallest JSON that round-trips the workspace's report types
//! **exactly**:
//!
//! * numbers keep their source lexeme (`Value::Num` stores the raw
//!   token), so `u64` cycle counts survive beyond 2^53 and `f64`s
//!   written with Rust's shortest round-trip formatting re-parse to
//!   the identical bits — the property the byte-identical
//!   checkpoint/resume guarantee rests on;
//! * object entries preserve insertion order, so a written manifest
//!   line is byte-stable across write → parse → write.
//!
//! The parser accepts the non-standard lexemes `NaN`, `inf`, and
//! `-inf` because that is how [`fmt_f64`] (and Rust's `{:?}`) spells
//! non-finite floats; we only ever parse our own output.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw lexeme for lossless round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; entries keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u32`, if it fits.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`, if this is a (possibly negative)
    /// integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64` (accepting `NaN`/`inf`/`-inf`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => match n.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                other => other.parse().ok(),
            },
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor: an unsigned integer value.
    pub fn u64(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// Convenience constructor: an `f64` value written with shortest
    /// round-trip formatting (re-parses to identical bits).
    pub fn f64(v: f64) -> Value {
        Value::Num(fmt_f64(v))
    }
}

impl fmt::Display for Value {
    /// Compact JSON (no whitespace), object order preserved.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Num(n) => f.write_str(n),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Value::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Formats an `f64` so that parsing the text yields identical bits:
/// Rust's `{:?}` shortest round-trip form, with explicit `NaN`/`inf`
/// spellings.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "inf".into()
    } else if v == f64::NEG_INFINITY {
        "-inf".into()
    } else {
        format!("{v:?}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value, requiring the whole input to be consumed
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'N') => self.literal("NaN", Value::Num("NaN".into())),
            Some(b'i') => self.literal("inf", Value::Num("inf".into())),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.literal("-inf", Value::Num("-inf".into()))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if lexeme.is_empty() || lexeme == "-" {
            return Err(self.err("malformed number"));
        }
        // Validate the lexeme parses as a float (the superset).
        lexeme
            .parse::<f64>()
            .map_err(|_| self.err(format!("malformed number {lexeme:?}")))?;
        Ok(Value::Num(lexeme.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "1.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src, "{src}");
        }
    }

    #[test]
    fn u64_beyond_f64_precision_is_exact() {
        let big = u64::MAX - 1;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string(), big.to_string());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            2.2250738585072014e-308,
        ] {
            let v = Value::f64(x);
            let back = parse(&v.to_string()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let nan = parse(&Value::f64(f64::NAN).to_string())
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(nan.is_nan());
        assert_eq!(
            parse("inf").unwrap().as_f64(),
            Some(f64::INFINITY),
            "inf lexeme"
        );
        assert_eq!(parse("-inf").unwrap().as_f64(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let src = r#"{"b":1,"a":{"x":[1,2,3],"y":"z"},"c":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("a").unwrap().get("y").unwrap().as_str(), Some("z"));
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("x")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            3
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode λ";
        let v = Value::str(nasty);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(parse("").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").unwrap_err().msg.contains("trailing"));
        assert!(parse("\"open").is_err());
        assert!(parse("-").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2]}"#);
    }
}

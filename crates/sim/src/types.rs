//! Small typed identifiers used throughout the simulator.
//!
//! The simulator moves a lot of raw integers around (addresses, program
//! counters, warp ids, cycle counts). Newtypes keep them from being
//! confused with one another (C-NEWTYPE) at zero runtime cost.

use std::fmt;

/// A byte address in the simulated global memory space.
///
/// # Examples
///
/// ```
/// use snake_sim::Address;
/// let a = Address::new(0x1000);
/// assert_eq!(a.line(128).0, 0x1000 / 128);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this address falls in, for the given line size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is zero.
    pub fn line(self, line_size: u32) -> LineAddr {
        debug_assert!(line_size > 0, "line size must be non-zero");
        LineAddr(self.0 / u64::from(line_size))
    }

    /// Offsets the address by a signed byte stride, saturating at zero.
    pub fn offset(self, stride: i64) -> Address {
        Address(self.0.wrapping_add_signed(stride))
    }

    /// Signed byte distance `self - other`.
    pub fn stride_from(self, other: Address) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granular address (byte address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line for the given line size.
    pub fn base(self, line_size: u32) -> Address {
        Address(self.0 * u64::from(line_size))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Program counter of a (load) instruction.
///
/// The Snake tables are indexed by the PCs of load instructions
/// (`PC_ld` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{}", self.0)
    }
}

impl From<u32> for Pc {
    fn from(raw: u32) -> Self {
        Pc(raw)
    }
}

/// Identifier of a warp within one SM (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u32);

impl WarpId {
    /// Index usable for slices/bit-vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a cooperative thread array (thread block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtaId(pub u32);

impl fmt::Display for CtaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cta{}", self.0)
    }
}

/// Identifier of a streaming multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(pub u32);

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm{}", self.0)
    }
}

/// A simulation cycle count.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle.
    pub const ZERO: Cycle = Cycle(0);

    /// Cycle `n` after this one.
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }

    /// Saturating distance from `earlier` to `self`.
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_mapping() {
        let a = Address::new(257);
        assert_eq!(a.line(128), LineAddr(2));
        assert_eq!(LineAddr(2).base(128), Address::new(256));
    }

    #[test]
    fn address_offset_and_stride() {
        let a = Address::new(1000);
        let b = a.offset(-400);
        assert_eq!(b, Address::new(600));
        assert_eq!(a.stride_from(b), 400);
        assert_eq!(b.stride_from(a), -400);
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10).plus(5);
        assert_eq!(c, Cycle(15));
        assert_eq!(c.since(Cycle(12)), 3);
        assert_eq!(Cycle(3).since(Cycle(12)), 0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(Address::new(16).to_string(), "0x10");
        assert_eq!(Pc(4).to_string(), "pc4");
        assert_eq!(WarpId(7).to_string(), "w7");
        assert_eq!(Cycle(9).to_string(), "cy9");
        assert_eq!(LineAddr(1).to_string(), "L0x1");
        assert_eq!(CtaId(2).to_string(), "cta2");
        assert_eq!(SmId(3).to_string(), "sm3");
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Address>();
        assert_send_sync::<Pc>();
        assert_send_sync::<WarpId>();
        assert_send_sync::<Cycle>();
    }
}

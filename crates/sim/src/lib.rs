//! # snake-sim
//!
//! A from-scratch, cycle-driven GPU simulator substrate for the
//! reproduction of *Snake: A Variable-length Chain-based Prefetching
//! for GPUs* (MICRO '23). It stands in for Accel-Sim v1.2.0 in the
//! paper's methodology: streaming multiprocessors with GTO warp
//! scheduling, a unified L1/shared-memory SRAM with MSHRs, a bounded
//! miss queue (the source of reservation fails), a bandwidth-limited
//! interconnect, a banked L2, and a latency/bandwidth DRAM model —
//! plus a first-order energy model standing in for AccelWattch.
//!
//! The crate is prefetcher-agnostic: mechanisms implement the
//! [`Prefetcher`] trait (see the `snake-core` crate for Snake itself
//! and all baselines).
//!
//! ## Quick start
//!
//! ```
//! use snake_sim::{run_kernel, GpuConfig, Instr, KernelTrace, NullPrefetcher, WarpTrace, CtaId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One warp streaming over four cache lines.
//! let warp = WarpTrace::new(
//!     CtaId(0),
//!     (0..4).map(|i| Instr::load(i as u32, (i * 128) as u64)).collect(),
//! );
//! let kernel = KernelTrace::new("stream", vec![warp]);
//! let outcome = run_kernel(GpuConfig::scaled(1), kernel, |_| Box::new(NullPrefetcher))?;
//! assert_eq!(outcome.stats.l1.misses, 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod cache;
mod config;
pub mod energy;
pub mod fault;
mod gpu;
pub mod json;
mod kernel;
pub mod mem;
pub mod obs;
pub mod perfstat;
mod prefetch;
mod scheduler;
mod sm;
pub mod snapshot;
mod stats;
pub mod trace_io;
mod types;
mod warp;
pub mod watchdog;

pub use audit::Auditor;
pub use config::{CacheGeometry, ConfigError, GpuConfig, SchedulerPolicy};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use fault::{Brownout, FaultPlan, Recovery};
pub use gpu::{run_kernel, Gpu, SimError, SimOutcome, StopReason};
pub use kernel::{AddrList, Instr, KernelTrace, WarpTrace};
pub use obs::{
    Drained, LatencyHistogram, MetricsSample, MetricsSeries, PrefetchLifecycle, Ring, RingSink,
    SimEvent, Subscription, TelemetryRecord, TelemetryRing, TraceEvent, TraceSink, VecSink,
    WalkStop,
};
pub use perfstat::{HostProfile, Phase, PhaseStat};
pub use prefetch::{
    AccessEvent, NullPrefetcher, PrefetchContext, PrefetchPlacement, PrefetchRequest, Prefetcher,
    PrefetcherEvent,
};
pub use sm::Sm;
pub use snapshot::{Checkpoint, SnapshotError, SNAPSHOT_SCHEMA_VERSION};
pub use stats::{
    AccessOutcome, CacheStats, FaultStats, PrefetchStats, ReservationFailReason, SimStats,
    StallBreakdown,
};
pub use types::{Address, CtaId, Cycle, LineAddr, Pc, SmId, WarpId};
pub use watchdog::{
    DeadlockReport, NocCensus, PartitionCensus, SmCensus, WarpBlock, WarpCensus, Watchdog,
};

//! Cache structures: tag arrays, MSHRs, and the unified L1 with
//! Snake's decoupled prefetch space.

pub mod mshr;
pub mod tag_array;
pub mod unified_l1;

//! The unified L1 data cache / shared-memory SRAM, with Snake's
//! decoupled prefetch space (§3.2 of the paper).
//!
//! One structure models all three placement modes:
//!
//! * **Plain** — prefetched lines are ordinary L1 lines (baselines and
//!   Snake-DT). The per-line [`Side`] flag is still tracked for
//!   coverage accounting, but no partition policy applies.
//! * **Decoupled** — Snake's flag-based partitioning: a 50% demand cap
//!   while the prefetcher trains, confinement of demand evictions to
//!   the demand side while throttled, bulk 25% LRU eviction when the
//!   SRAM fills, with the eviction side chosen by the 80%-transferred
//!   rule.
//! * **Isolated** — prefetched lines live in a dedicated side buffer
//!   (Isolated-Snake, §5.7).

use std::collections::VecDeque;

use crate::cache::mshr::{MergeResult, MissOrigin, MshrFile};
use crate::cache::tag_array::{Side, TagArray};
use crate::config::GpuConfig;
use crate::fault::Recovery;
use crate::json::Value;
use crate::obs::{PrefetchDropReason, PrefetchLifecycle, SimEvent, TraceEvent};
use crate::perfstat::{HostProfiler, Phase, Stopwatch};
use crate::snapshot::{self, SnapshotError};
use crate::stats::{AccessOutcome, CacheStats, FaultStats, PrefetchStats, ReservationFailReason};
use crate::types::{Cycle, LineAddr, SmId, WarpId};

/// Placement/policy mode of the unified SRAM (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Mode {
    /// No partition policies.
    Plain,
    /// Snake's decoupled unified cache.
    Decoupled,
    /// Separate prefetch buffer of the given number of lines.
    Isolated {
        /// Side-buffer capacity in lines.
        lines: u32,
    },
}

/// Result of asking the L1 to issue a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchIssue {
    /// Sent down the hierarchy.
    Issued,
    /// Line already present or in flight.
    Redundant,
    /// No resources (MSHR/miss queue/victim); dropped.
    Rejected,
}

/// A miss waiting to be picked up by the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutgoingRequest {
    /// Missing line (reads) or written line (stores).
    pub line: LineAddr,
    /// Read miss vs write-through store traffic.
    pub kind: RequestKind,
}

/// What an outgoing request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Read that expects a fill response.
    ReadMiss,
    /// Write-through store; no response.
    Store,
}

/// Warps to wake after a fill.
pub type Waiters = Vec<WarpId>;

/// An unused prefetched line evicted younger than this is counted as
/// prefetcher overrun (the §3.3 space-throttle trigger); older unused
/// lines are merely inaccurate prefetches.
const OVERRUN_AGE_CYCLES: u64 = 256;

/// The unified L1 SRAM.
#[derive(Debug, Clone)]
pub struct UnifiedL1 {
    tags: TagArray,
    isolated: Option<TagArray>,
    mshr: MshrFile,
    miss_queue: VecDeque<OutgoingRequest>,
    miss_queue_depth: usize,
    mode: L1Mode,
    /// While `now < confined_until`, demand allocations may not evict
    /// prefetch-side lines (§3.2 throttle confinement).
    confined_until: Cycle,
    /// While the prefetcher is untrained, demand data is capped at 50%
    /// of the SRAM (§3.2).
    trained: bool,
    /// Cumulative prefetch fills and flag-flip transfers, for the
    /// 80%-transferred eviction-side rule.
    transfer_numer: u64,
    transfer_denom: u64,
    /// Sticky flag: an unused prefetched line was evicted since the
    /// last [`UnifiedL1::take_overrun`] call.
    overrun: bool,
    /// Timeout-and-reissue recovery for lost fills, if enabled.
    recovery: Option<Recovery>,
    /// Recovery/fault counters (reissues, spurious fills).
    pub fault_stats: FaultStats,
    /// Counters exposed to the simulator.
    pub stats: CacheStats,
    /// The rejecting resource of the most recent reservation fail —
    /// the attribution signal for the stall taxonomy's structural
    /// buckets. Transient: cleared by the SM before every issue
    /// attempt and read back the same cycle, so it never needs to be
    /// checkpointed (checkpoints land at cycle boundaries).
    last_fail: Option<ReservationFailReason>,
    /// Prefetch-effectiveness counters (fills/useful/evicted tracked
    /// here; issued/redundant tracked by the SM front-end).
    pub pf_stats: PrefetchStats,
    /// Prefetch-lifecycle latency histograms (always collected; a
    /// `Copy` histogram record is cheaper than gating it).
    pub lifecycle: PrefetchLifecycle,
    /// Cycle-stamped events buffered while tracing is enabled, drained
    /// by the SM each cycle. `None` (the default) keeps every emission
    /// site to a single branch.
    trace: Option<(SmId, Vec<TraceEvent>)>,
    /// Host-time accumulator for lookup ([`Phase::L1Lookup`]) and
    /// MSHR-completion ([`Phase::Mshr`]) work. `None` (the default)
    /// keeps every timed entry point to a single branch.
    prof: Option<HostProfiler>,
}

impl UnifiedL1 {
    /// Builds the L1 from the GPU configuration and a placement mode.
    pub fn new(cfg: &GpuConfig, mode: L1Mode) -> Self {
        let tags = TagArray::from_geometry(&cfg.l1, cfg.shared_mem_carveout_bytes);
        let isolated = match mode {
            L1Mode::Isolated { lines } => Some(TagArray::new(lines, lines)),
            _ => None,
        };
        UnifiedL1 {
            tags,
            isolated,
            mshr: MshrFile::new(cfg.mshr_entries, cfg.mshr_merge),
            miss_queue: VecDeque::new(),
            miss_queue_depth: cfg.miss_queue_depth as usize,
            mode,
            confined_until: Cycle::ZERO,
            trained: false,
            transfer_numer: 0,
            transfer_denom: 0,
            overrun: false,
            recovery: cfg.fault.recovery,
            fault_stats: FaultStats::default(),
            stats: CacheStats::default(),
            last_fail: None,
            pf_stats: PrefetchStats::default(),
            lifecycle: PrefetchLifecycle::default(),
            trace: None,
            prof: None,
        }
    }

    /// Starts accumulating host-time for this L1's lookup and MSHR
    /// phases (see [`perfstat`](crate::perfstat)).
    pub fn enable_profiling(&mut self) {
        self.prof = Some(HostProfiler::new());
    }

    /// Folds this L1's host-time accumulator into `into` (end of run).
    pub fn merge_profile(&mut self, into: &mut HostProfiler) {
        if let Some(prof) = self.prof.take() {
            into.merge(&prof);
        }
    }

    /// Starts buffering trace events on behalf of the SM that owns
    /// this L1 (also enables the MSHR file's allocation events).
    pub fn enable_trace(&mut self, sm: SmId) {
        self.trace = Some((sm, Vec::new()));
        self.mshr.enable_trace(sm);
    }

    /// Moves buffered trace events (L1 first, then MSHR allocations)
    /// into `out`.
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some((_, buf)) = self.trace.as_mut() {
            out.append(buf);
        }
        self.mshr.drain_trace(out);
    }

    fn emit(&mut self, cycle: Cycle, make: impl FnOnce(SmId) -> SimEvent) {
        if let Some((sm, buf)) = self.trace.as_mut() {
            buf.push(TraceEvent {
                cycle,
                data: make(*sm),
            });
        }
    }

    /// Lines currently free (invalid) in the unified SRAM — the space
    /// throttle trigger input.
    pub fn free_lines(&self) -> u32 {
        self.tags.free_lines()
    }

    /// Total usable lines in the unified SRAM.
    pub fn total_lines(&self) -> u32 {
        self.tags.capacity()
    }

    /// Valid prefetch-side lines (decoupled/plain modes).
    pub fn prefetch_lines(&self) -> u32 {
        self.tags.prefetch_lines()
    }

    /// Returns and clears the prefetch-overrun flag (the §3.3 space
    /// throttle trigger input).
    pub fn take_overrun(&mut self) -> bool {
        std::mem::take(&mut self.overrun)
    }

    /// Marks the prefetcher trained/untrained (drives the 50% cap).
    pub fn set_trained(&mut self, trained: bool) {
        self.trained = trained;
    }

    /// Confines demand evictions to the demand side until `until`
    /// (called when the prefetcher throttles).
    pub fn confine_until(&mut self, until: Cycle) {
        if until > self.confined_until {
            self.confined_until = until;
        }
    }

    fn fraction_transferred(&self) -> f64 {
        if self.transfer_denom == 0 {
            0.0
        } else {
            self.transfer_numer as f64 / self.transfer_denom as f64
        }
    }

    /// Records a reservation fail in the stats and latches the
    /// rejecting resource for this cycle's stall attribution.
    fn reservation_fail(&mut self, reason: ReservationFailReason) {
        self.stats.record_fail(reason);
        self.last_fail = Some(reason);
    }

    /// Clears the per-attempt fail-reason latch (the SM calls this
    /// before each issue attempt).
    pub fn clear_last_fail(&mut self) {
        self.last_fail = None;
    }

    /// The rejecting resource of the most recent reservation fail
    /// since [`clear_last_fail`](UnifiedL1::clear_last_fail), if any.
    pub fn last_fail(&self) -> Option<ReservationFailReason> {
        self.last_fail
    }

    /// A demand load access.
    pub fn access_demand(&mut self, line: LineAddr, warp: WarpId, now: Cycle) -> AccessOutcome {
        let sw = Stopwatch::start(self.prof.is_some());
        let outcome = self.access_demand_inner(line, warp, now);
        self.emit(now, |sm| SimEvent::L1Access {
            sm,
            warp,
            line,
            outcome,
        });
        sw.stop(&mut self.prof, Phase::L1Lookup);
        outcome
    }

    fn access_demand_inner(&mut self, line: LineAddr, warp: WarpId, now: Cycle) -> AccessOutcome {
        // Isolated prefetch buffer is checked in parallel with the L1.
        if let Some(iso) = &mut self.isolated {
            if let Some(way) = iso.probe(line) {
                use crate::cache::tag_array::LineState;
                if iso.line(way).state == LineState::Reserved {
                    // Demand caught an in-flight isolated prefetch:
                    // merge into its MSHR entry (late prefetch).
                    return match self.mshr.merge_demand(line, warp) {
                        MergeResult::Merged {
                            was_prefetch,
                            first_demand,
                        } => {
                            if was_prefetch {
                                self.stats.merges_with_prefetch += 1;
                                if first_demand {
                                    self.pf_stats.late += 1;
                                }
                            } else {
                                self.stats.hits_reserved += 1;
                            }
                            self.emit(now, |sm| SimEvent::MshrMerge { sm, line, warp });
                            AccessOutcome::HitReserved
                        }
                        MergeResult::Full => {
                            self.reservation_fail(ReservationFailReason::MshrFull);
                            AccessOutcome::ReservationFail
                        }
                    };
                }
                if iso.line(way).state == LineState::Valid {
                    let first_use = !iso.line(way).used;
                    let filled = iso.line(way).fill_cycle;
                    iso.touch(way, now);
                    if iso.line(way).side == Side::Prefetch {
                        // Serve from the buffer; flag it used.
                        iso.transfer_to_demand(way, now);
                        // Keep it resident as demand data in the buffer.
                    }
                    if first_use {
                        self.pf_stats.useful += 1;
                        self.transfer_numer += 1;
                        let latency = now.since(filled);
                        self.lifecycle.fill_to_first_use.record(latency);
                        self.emit(now, |sm| SimEvent::PrefetchFirstUse { sm, line, latency });
                    }
                    self.stats.hits_on_prefetch += 1;
                    return AccessOutcome::HitPrefetch;
                }
            }
        }

        if let Some(way) = self.tags.probe(line) {
            use crate::cache::tag_array::LineState;
            let l = *self.tags.line(way);
            match l.state {
                LineState::Valid => {
                    if l.side == Side::Prefetch {
                        self.tags.transfer_to_demand(way, now);
                        self.transfer_numer += 1;
                        self.pf_stats.useful += 1;
                        self.stats.hits_on_prefetch += 1;
                        let latency = now.since(l.fill_cycle);
                        self.lifecycle.fill_to_first_use.record(latency);
                        self.emit(now, |sm| SimEvent::PrefetchFirstUse { sm, line, latency });
                        AccessOutcome::HitPrefetch
                    } else if l.origin_prefetch {
                        // Re-touch of data a prefetch brought in: the
                        // address was correctly predicted (coverage),
                        // though `useful` was already counted once.
                        self.tags.touch(way, now);
                        self.stats.hits_on_prefetch += 1;
                        AccessOutcome::HitPrefetch
                    } else {
                        self.tags.touch(way, now);
                        self.stats.hits += 1;
                        AccessOutcome::Hit
                    }
                }
                LineState::Reserved => match self.mshr.merge_demand(line, warp) {
                    MergeResult::Merged {
                        was_prefetch,
                        first_demand,
                    } => {
                        // A demand merged into an in-flight prefetch:
                        // the line must land on the demand side.
                        self.tags.set_reserved_side(way, Side::Demand);
                        if was_prefetch {
                            self.stats.merges_with_prefetch += 1;
                            if first_demand {
                                self.pf_stats.late += 1;
                            }
                        } else {
                            self.stats.hits_reserved += 1;
                        }
                        self.emit(now, |sm| SimEvent::MshrMerge { sm, line, warp });
                        AccessOutcome::HitReserved
                    }
                    MergeResult::Full => {
                        self.reservation_fail(ReservationFailReason::MshrFull);
                        AccessOutcome::ReservationFail
                    }
                },
                LineState::Invalid => unreachable!("probe never returns invalid lines"),
            }
        } else {
            self.allocate_demand_miss(line, warp, now)
        }
    }

    fn allocate_demand_miss(&mut self, line: LineAddr, warp: WarpId, now: Cycle) -> AccessOutcome {
        if !self.mshr.has_free_entry() {
            self.reservation_fail(ReservationFailReason::MshrFull);
            return AccessOutcome::ReservationFail;
        }
        if self.miss_queue.len() >= self.miss_queue_depth {
            self.reservation_fail(ReservationFailReason::MissQueueFull);
            return AccessOutcome::ReservationFail;
        }
        let victim = match self.demand_victim(line, now) {
            Some(w) => w,
            None => {
                self.reservation_fail(ReservationFailReason::NoEvictableWay);
                return AccessOutcome::ReservationFail;
            }
        };
        self.evict_for_alloc(victim, now);
        self.tags.reserve(victim, line, Side::Demand, now);
        self.mshr
            .allocate(line, MissOrigin::Demand, Some(warp), now);
        self.miss_queue.push_back(OutgoingRequest {
            line,
            kind: RequestKind::ReadMiss,
        });
        self.stats.misses += 1;
        AccessOutcome::Miss
    }

    /// Victim choice for a demand allocation, honoring the decoupling
    /// policies.
    fn demand_victim(
        &mut self,
        line: LineAddr,
        now: Cycle,
    ) -> Option<crate::cache::tag_array::Way> {
        if self.mode != L1Mode::Decoupled {
            return self.tags.find_victim(line, |_| true);
        }
        let confined = now < self.confined_until;
        let capped = !self.trained && self.tags.demand_lines() >= self.tags.capacity() / 2;
        if capped {
            // At the 50% training cap: force replacement of a demand
            // line; never expand into free space or the prefetch side.
            self.tags
                .find_lru_valid(line, |l| l.side == Side::Demand)
                .or_else(|| self.tags.find_victim(line, |l| l.side == Side::Demand))
        } else if confined {
            // Throttle confinement: free space is fine, but prefetch
            // lines must not be displaced.
            self.tags.find_victim(line, |l| l.side == Side::Demand)
        } else {
            if self.tags.free_lines() == 0 {
                self.bulk_free(now);
            }
            // §3.2: both sides expand freely; the LRU victim may be an
            // unconsumed prefetched line, which raises the overrun flag
            // (the throttle's space trigger).
            let v = self.tags.find_victim(line, |_| true);
            if let Some(w) = v {
                use crate::cache::tag_array::LineState;
                let l = self.tags.line(w);
                if l.state == LineState::Valid
                    && l.side == Side::Prefetch
                    && !l.used
                    && now.since(l.fill_cycle) < OVERRUN_AGE_CYCLES
                {
                    self.overrun = true;
                }
            }
            v
        }
    }

    /// §3.2: when the SRAM is full, free 25% of it by LRU, from the
    /// prefetch side unless ≥80% of prefetched data was transferred
    /// (accurate prefetching), in which case older demand data goes.
    fn bulk_free(&mut self, now: Cycle) {
        let quarter = (self.tags.capacity() / 4).max(1);
        let side = if self.fraction_transferred() >= 0.8 {
            Side::Demand
        } else {
            Side::Prefetch
        };
        let mut evicted = self.tags.bulk_evict_lru(side, quarter);
        if evicted.is_empty() {
            // Chosen side empty; fall back to the other side.
            let other = match side {
                Side::Demand => Side::Prefetch,
                Side::Prefetch => Side::Demand,
            };
            evicted = self.tags.bulk_evict_lru(other, quarter);
        }
        for l in &evicted {
            self.stats.evictions += 1;
            if l.side == Side::Prefetch && !l.used {
                self.pf_stats.evicted_unused += 1;
                if now.since(l.fill_cycle) < OVERRUN_AGE_CYCLES {
                    self.overrun = true;
                }
                let lifetime = now.since(l.fill_cycle);
                self.lifecycle.lifetime_unused.record(lifetime);
                let dead = l.tag;
                self.emit(now, |sm| SimEvent::PrefetchEvictedUnused {
                    sm,
                    line: dead,
                    lifetime,
                });
            }
        }
    }

    fn evict_for_alloc(&mut self, way: crate::cache::tag_array::Way, now: Cycle) {
        use crate::cache::tag_array::LineState;
        if self.tags.line(way).state == LineState::Valid {
            let l = self.tags.evict(way);
            self.stats.evictions += 1;
            if l.side == Side::Prefetch && !l.used {
                self.pf_stats.evicted_unused += 1;
                // Young lines dying unused = the prefetcher outran
                // consumption (frontier churn). Old unused lines are
                // simply wrong prefetches — not a space signal.
                if now.since(l.fill_cycle) < OVERRUN_AGE_CYCLES {
                    self.overrun = true;
                }
                let lifetime = now.since(l.fill_cycle);
                self.lifecycle.lifetime_unused.record(lifetime);
                self.emit(now, |sm| SimEvent::PrefetchEvictedUnused {
                    sm,
                    line: l.tag,
                    lifetime,
                });
            }
        }
    }

    /// Asks the L1 to issue a prefetch for `line`.
    pub fn request_prefetch(&mut self, line: LineAddr, now: Cycle) -> PrefetchIssue {
        let sw = Stopwatch::start(self.prof.is_some());
        let res = self.request_prefetch_inner(line, now);
        match res {
            PrefetchIssue::Issued => {
                self.emit(now, |sm| SimEvent::PrefetchIssued { sm, line });
            }
            PrefetchIssue::Redundant => {
                self.emit(now, |sm| SimEvent::PrefetchDropped {
                    sm,
                    line,
                    reason: PrefetchDropReason::Redundant,
                });
            }
            PrefetchIssue::Rejected => {
                self.emit(now, |sm| SimEvent::PrefetchDropped {
                    sm,
                    line,
                    reason: PrefetchDropReason::Rejected,
                });
            }
        }
        sw.stop(&mut self.prof, Phase::L1Lookup);
        res
    }

    fn request_prefetch_inner(&mut self, line: LineAddr, now: Cycle) -> PrefetchIssue {
        // Present or in-flight anywhere -> redundant.
        if self.tags.probe(line).is_some() {
            return PrefetchIssue::Redundant;
        }
        if let Some(iso) = &self.isolated {
            if iso.probe(line).is_some() {
                return PrefetchIssue::Redundant;
            }
        }
        if !self.mshr.has_free_entry() || self.miss_queue.len() >= self.miss_queue_depth {
            return PrefetchIssue::Rejected;
        }
        // Reserve space at the destination.
        let mut iso_dead: Option<(LineAddr, u64)> = None;
        let reserved = if let Some(iso) = &mut self.isolated {
            match iso.find_victim(line, |_| true) {
                Some(w) => {
                    use crate::cache::tag_array::LineState;
                    if iso.line(w).state == LineState::Valid {
                        let l = iso.evict(w);
                        if l.side == Side::Prefetch && !l.used {
                            self.pf_stats.evicted_unused += 1;
                            iso_dead = Some((l.tag, now.since(l.fill_cycle)));
                        }
                    }
                    iso.reserve(w, line, Side::Prefetch, now);
                    true
                }
                None => false,
            }
        } else {
            if self.mode == L1Mode::Decoupled && self.tags.free_lines() == 0 {
                self.bulk_free(now);
            }
            // Plain LRU victim: recently filled prefetch lines (the
            // frontier) are naturally protected.
            let victim = self.tags.find_victim(line, |_| true);
            match victim {
                Some(w) => {
                    self.evict_for_alloc(w, now);
                    self.tags.reserve(w, line, Side::Prefetch, now);
                    true
                }
                None => false,
            }
        };
        if let Some((dead, lifetime)) = iso_dead {
            self.lifecycle.lifetime_unused.record(lifetime);
            self.emit(now, |sm| SimEvent::PrefetchEvictedUnused {
                sm,
                line: dead,
                lifetime,
            });
        }
        if !reserved {
            return PrefetchIssue::Rejected;
        }
        self.mshr.allocate(line, MissOrigin::Prefetch, None, now);
        self.miss_queue.push_back(OutgoingRequest {
            line,
            kind: RequestKind::ReadMiss,
        });
        PrefetchIssue::Issued
    }

    /// A write-through, no-allocate store. Returns `false` when the
    /// miss queue is full (reservation fail; the warp retries).
    pub fn access_store(&mut self, line: LineAddr, now: Cycle) -> bool {
        let sw = Stopwatch::start(self.prof.is_some());
        let accepted = self.access_store_inner(line, now);
        sw.stop(&mut self.prof, Phase::L1Lookup);
        accepted
    }

    fn access_store_inner(&mut self, line: LineAddr, now: Cycle) -> bool {
        if self.miss_queue.len() >= self.miss_queue_depth {
            self.reservation_fail(ReservationFailReason::MissQueueFull);
            return false;
        }
        if let Some(way) = self.tags.probe(line) {
            use crate::cache::tag_array::LineState;
            if self.tags.line(way).state == LineState::Valid {
                self.tags.touch(way, now);
            }
        }
        self.miss_queue.push_back(OutgoingRequest {
            line,
            kind: RequestKind::Store,
        });
        true
    }

    /// Pops the next outgoing request if the interconnect can take it.
    pub fn pop_outgoing(&mut self) -> Option<OutgoingRequest> {
        self.miss_queue.pop_front()
    }

    /// Peeks the head of the miss queue.
    pub fn peek_outgoing(&self) -> Option<&OutgoingRequest> {
        self.miss_queue.front()
    }

    /// Delivers a fill from the memory partition: completes the MSHR,
    /// fills the reserved line, returns the warps to wake.
    ///
    /// A fill with no outstanding MSHR entry (a fault-injected
    /// duplicate, or the original response finally arriving after a
    /// timeout reissue already completed the miss) is counted as
    /// spurious and discarded.
    pub fn fill(&mut self, line: LineAddr, now: Cycle) -> Waiters {
        let sw = Stopwatch::start(self.prof.is_some());
        let waiters = self.fill_inner(line, now);
        sw.stop(&mut self.prof, Phase::Mshr);
        waiters
    }

    fn fill_inner(&mut self, line: LineAddr, now: Cycle) -> Waiters {
        let Some(entry) = self.mshr.try_complete(line) else {
            self.fault_stats.spurious_fills += 1;
            return Vec::new();
        };
        let waiters = entry.waiters.len() as u32;
        self.emit(now, |sm| SimEvent::MshrFill { sm, line, waiters });
        let pure_prefetch = entry.origin == MissOrigin::Prefetch && !entry.demand_merged;
        if pure_prefetch {
            self.pf_stats.fills += 1;
            self.transfer_denom += 1;
            let latency = now.since(entry.alloc_cycle);
            self.lifecycle.issue_to_fill.record(latency);
            self.emit(now, |sm| SimEvent::PrefetchFilled { sm, line, latency });
        }
        if let Some(iso) = &mut self.isolated {
            if let Some(way) = iso.probe(line) {
                iso.fill(way, now);
                return entry.waiters;
            }
        }
        let way = self
            .tags
            .probe(line)
            .expect("reserved line must still be present at fill time");
        // A demand-merged prefetch lands on the demand side (set at
        // merge time); late-merged waiters get the data now.
        self.tags.fill(way, now);
        entry.waiters
    }

    /// Outstanding MSHR entries (diagnostics).
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// MSHR entry capacity (diagnostics).
    pub fn mshr_capacity(&self) -> usize {
        self.mshr.capacity()
    }

    /// Requests queued for the interconnect (diagnostics).
    pub fn miss_queue_len(&self) -> usize {
        self.miss_queue.len()
    }

    /// Configured miss-queue depth (diagnostics/metrics).
    pub fn miss_queue_capacity(&self) -> usize {
        self.miss_queue_depth
    }

    /// Tag-array lines reserved for in-flight misses, including the
    /// isolated side buffer (diagnostics).
    pub fn reserved_lines(&self) -> u32 {
        self.tags.reserved_lines() + self.isolated.as_ref().map_or(0, TagArray::reserved_lines)
    }

    /// Timeout recovery: re-issues read misses whose fill has been
    /// outstanding longer than the configured timeout, up to the
    /// per-entry retry budget and the miss queue's spare room. The
    /// MSHR entry (and its reserved line and waiters) stays in place;
    /// only a fresh read goes down the hierarchy. No-op unless
    /// [`FaultPlan::recovery`](crate::FaultPlan) is set.
    pub fn tick_recovery(&mut self, now: Cycle) {
        let sw = Stopwatch::start(self.prof.is_some());
        self.tick_recovery_inner(now);
        sw.stop(&mut self.prof, Phase::Mshr);
    }

    fn tick_recovery_inner(&mut self, now: Cycle) {
        let Some(rec) = self.recovery else { return };
        if self.mshr.is_empty() {
            return;
        }
        let room = self.miss_queue_depth.saturating_sub(self.miss_queue.len());
        if room == 0 {
            return;
        }
        // HashMap iteration order varies between runs; reissue oldest
        // first (line address breaking ties) so identical seeds stay
        // bit-identical.
        let mut candidates: Vec<(Cycle, crate::types::LineAddr)> = self
            .mshr
            .iter()
            .filter(|e| now.since(e.last_issue) >= rec.timeout && e.retries < rec.max_retries)
            .map(|e| (e.last_issue, e.line))
            .collect();
        candidates.sort_unstable();
        candidates.truncate(room);
        for (_, line) in candidates {
            let entry = self
                .mshr
                .get_mut(line)
                .expect("candidate collected from the MSHR above");
            entry.retries += 1;
            entry.last_issue = now;
            self.miss_queue.push_back(OutgoingRequest {
                line,
                kind: RequestKind::ReadMiss,
            });
            self.fault_stats.reissued_requests += 1;
        }
    }

    /// Serializes the complete cache state for a checkpoint: tag
    /// arrays, MSHRs, the miss queue, the decoupling policy state,
    /// and every counter/histogram. The placement mode, queue depth,
    /// and recovery plan are config-derived and not captured; trace
    /// and profiling attachments are runtime-only (checkpoints are
    /// taken at a flushed cycle boundary, so their buffers are empty).
    pub fn save_state(&self) -> Value {
        let mut fields = vec![
            ("tags".into(), self.tags.save_state()),
            (
                "isolated".into(),
                match &self.isolated {
                    Some(iso) => iso.save_state(),
                    None => Value::Null,
                },
            ),
            ("mshr".into(), self.mshr.save_state()),
            (
                "miss_queue".into(),
                Value::Arr(
                    self.miss_queue
                        .iter()
                        .map(|r| {
                            Value::Arr(vec![
                                Value::u64(r.line.0),
                                Value::u64(match r.kind {
                                    RequestKind::ReadMiss => 0,
                                    RequestKind::Store => 1,
                                }),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("confined_until".into(), Value::u64(self.confined_until.0)),
            ("trained".into(), Value::Bool(self.trained)),
            ("transfer_numer".into(), Value::u64(self.transfer_numer)),
            ("transfer_denom".into(), Value::u64(self.transfer_denom)),
            ("overrun".into(), Value::Bool(self.overrun)),
        ];
        fields.push(("fault_stats".into(), self.fault_stats.save_state()));
        fields.push(("stats".into(), self.stats.save_state()));
        fields.push(("pf_stats".into(), self.pf_stats.save_state()));
        fields.push(("lifecycle".into(), self.lifecycle.save_state()));
        Value::Obj(fields)
    }

    /// Restores the complete cache state from [`save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when a field is missing, mistyped,
    /// or inconsistent with this cache's configured geometry.
    ///
    /// [`save_state`]: UnifiedL1::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.tags.restore_state(snapshot::field(v, "tags")?)?;
        match (&mut self.isolated, snapshot::field(v, "isolated")?) {
            (None, Value::Null) => {}
            (Some(iso), saved @ Value::Obj(_)) => iso.restore_state(saved)?,
            _ => {
                return Err(SnapshotError::malformed(
                    "isolated-buffer presence disagrees with the configuration",
                ))
            }
        }
        self.mshr.restore_state(snapshot::field(v, "mshr")?)?;
        let queue = snapshot::arr_field(v, "miss_queue")?;
        if queue.len() > self.miss_queue_depth {
            return Err(SnapshotError::malformed(format!(
                "checkpoint miss queue holds {}, depth is {}",
                queue.len(),
                self.miss_queue_depth
            )));
        }
        let bad = || SnapshotError::malformed("bad miss-queue entry");
        self.miss_queue = queue
            .iter()
            .map(|e| {
                let f = e.as_arr().filter(|f| f.len() == 2).ok_or_else(bad)?;
                Ok(OutgoingRequest {
                    line: LineAddr(f[0].as_u64().ok_or_else(bad)?),
                    kind: match f[1].as_u64().ok_or_else(bad)? {
                        0 => RequestKind::ReadMiss,
                        1 => RequestKind::Store,
                        _ => return Err(bad()),
                    },
                })
            })
            .collect::<Result<VecDeque<_>, SnapshotError>>()?;
        self.confined_until = Cycle(snapshot::u64_field(v, "confined_until")?);
        self.trained = snapshot::bool_field(v, "trained")?;
        self.transfer_numer = snapshot::u64_field(v, "transfer_numer")?;
        self.transfer_denom = snapshot::u64_field(v, "transfer_denom")?;
        self.overrun = snapshot::bool_field(v, "overrun")?;
        self.fault_stats
            .restore_state(snapshot::field(v, "fault_stats")?)?;
        self.stats.restore_state(snapshot::field(v, "stats")?)?;
        self.pf_stats
            .restore_state(snapshot::field(v, "pf_stats")?)?;
        self.lifecycle
            .restore_state(snapshot::field(v, "lifecycle")?)?;
        Ok(())
    }

    /// Checks the L1's conservation laws, returning a description of
    /// every violated invariant (empty = healthy). Used by the device
    /// auditor each audit window; cheap enough to leave on in tests.
    pub fn audit_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.mshr.len() > self.mshr.capacity() {
            v.push(format!(
                "MSHR occupancy {} exceeds capacity {}",
                self.mshr.len(),
                self.mshr.capacity()
            ));
        }
        if self.miss_queue.len() > self.miss_queue_depth {
            v.push(format!(
                "miss queue length {} exceeds depth {}",
                self.miss_queue.len(),
                self.miss_queue_depth
            ));
        }
        // Every outstanding miss must hold exactly one reserved line,
        // and vice versa: a reservation with no MSHR entry can never
        // be filled, an entry with no reservation has nowhere to land.
        let reserved = self.reserved_lines() as usize;
        if reserved != self.mshr.len() {
            v.push(format!(
                "{} reserved lines but {} MSHR entries",
                reserved,
                self.mshr.len()
            ));
        }
        for entry in self.mshr.iter() {
            use crate::cache::tag_array::LineState;
            let in_tags = self
                .tags
                .probe(entry.line)
                .is_some_and(|w| self.tags.line(w).state == LineState::Reserved);
            let in_iso = self.isolated.as_ref().is_some_and(|iso| {
                iso.probe(entry.line)
                    .is_some_and(|w| iso.line(w).state == LineState::Reserved)
            });
            if !in_tags && !in_iso {
                v.push(format!(
                    "MSHR entry for line {:#x} has no reserved cache line",
                    entry.line.0
                ));
            }
        }
        // Line accounting must balance: every line is free, valid on
        // one side, or reserved.
        let t = &self.tags;
        let sum = t.free_lines() + t.demand_lines() + t.prefetch_lines() + t.reserved_lines();
        if sum != t.capacity() {
            v.push(format!(
                "line census {} (free {} + demand {} + prefetch {} + reserved {}) \
                 != capacity {}",
                sum,
                t.free_lines(),
                t.demand_lines(),
                t.prefetch_lines(),
                t.reserved_lines(),
                t.capacity()
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        let mut c = GpuConfig::scaled(1);
        c.miss_queue_depth = 2;
        c.mshr_merge = 8;
        c
    }

    fn l1(mode: L1Mode) -> UnifiedL1 {
        UnifiedL1::new(&cfg(), mode)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l1(L1Mode::Plain);
        let line = LineAddr(5);
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(0)),
            AccessOutcome::Miss
        );
        assert_eq!(c.stats.misses, 1);
        let out = c.pop_outgoing().unwrap();
        assert_eq!(out.line, line);
        assert_eq!(out.kind, RequestKind::ReadMiss);
        let waiters = c.fill(line, Cycle(100));
        assert_eq!(waiters, vec![WarpId(0)]);
        assert_eq!(
            c.access_demand(line, WarpId(1), Cycle(101)),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn reserved_merge_and_mshr_merge_limit() {
        let mut c = l1(L1Mode::Plain);
        let line = LineAddr(5);
        c.access_demand(line, WarpId(0), Cycle(0));
        for w in 1..8 {
            assert_eq!(
                c.access_demand(line, WarpId(w), Cycle(1)),
                AccessOutcome::HitReserved,
                "merge {w}"
            );
        }
        // merge capacity 8 = 1 allocator + 7 merges.
        assert_eq!(
            c.access_demand(line, WarpId(9), Cycle(2)),
            AccessOutcome::ReservationFail
        );
        assert_eq!(c.stats.fail_mshr, 1);
    }

    #[test]
    fn miss_queue_full_is_reservation_fail() {
        let mut c = l1(L1Mode::Plain);
        assert_eq!(
            c.access_demand(LineAddr(1), WarpId(0), Cycle(0)),
            AccessOutcome::Miss
        );
        assert_eq!(
            c.access_demand(LineAddr(2), WarpId(1), Cycle(0)),
            AccessOutcome::Miss
        );
        // Queue depth 2 -> third miss fails.
        assert_eq!(
            c.access_demand(LineAddr(3), WarpId(2), Cycle(0)),
            AccessOutcome::ReservationFail
        );
        assert_eq!(c.stats.fail_miss_queue, 1);
        // Draining the queue unblocks.
        c.pop_outgoing();
        assert_eq!(
            c.access_demand(LineAddr(3), WarpId(2), Cycle(1)),
            AccessOutcome::Miss
        );
    }

    #[test]
    fn prefetch_hit_transfers_and_counts_useful() {
        let mut c = l1(L1Mode::Decoupled);
        let line = LineAddr(9);
        assert_eq!(c.request_prefetch(line, Cycle(0)), PrefetchIssue::Issued);
        assert_eq!(c.request_prefetch(line, Cycle(1)), PrefetchIssue::Redundant);
        c.pop_outgoing();
        let waiters = c.fill(line, Cycle(50));
        assert!(waiters.is_empty());
        assert_eq!(c.pf_stats.fills, 1);
        assert_eq!(c.prefetch_lines(), 1);
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(60)),
            AccessOutcome::HitPrefetch
        );
        assert_eq!(c.pf_stats.useful, 1);
        assert_eq!(c.stats.hits_on_prefetch, 1);
        assert_eq!(c.prefetch_lines(), 0, "flag flipped to demand side");
        // Re-touch: still counted as a covered (predicted) address,
        // but `useful` is not double-counted.
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(61)),
            AccessOutcome::HitPrefetch
        );
        assert_eq!(c.pf_stats.useful, 1);
        assert_eq!(c.stats.hits_on_prefetch, 2);
    }

    #[test]
    fn demand_merging_into_inflight_prefetch_is_late() {
        let mut c = l1(L1Mode::Decoupled);
        let line = LineAddr(9);
        c.request_prefetch(line, Cycle(0));
        assert_eq!(
            c.access_demand(line, WarpId(3), Cycle(1)),
            AccessOutcome::HitReserved
        );
        assert_eq!(c.pf_stats.late, 1);
        assert_eq!(c.stats.merges_with_prefetch, 1);
        c.pop_outgoing();
        let waiters = c.fill(line, Cycle(40));
        assert_eq!(waiters, vec![WarpId(3)]);
        // Landed on the demand side: no prefetch lines resident.
        assert_eq!(c.prefetch_lines(), 0);
        assert_eq!(
            c.pf_stats.fills, 0,
            "demand-merged fill is not a pure prefetch fill"
        );
    }

    #[test]
    fn training_cap_restricts_demand_to_half() {
        let mut c = l1(L1Mode::Decoupled);
        c.set_trained(false);
        let total = c.total_lines();
        let mut failed_expand = false;
        // Swamp the cache with demand misses; with an untrained
        // prefetcher demand may occupy at most half the SRAM.
        let mut cycle = 0u64;
        for i in 0..(total * 2) as u64 {
            let line = LineAddr(i);
            match c.access_demand(line, WarpId(0), Cycle(cycle)) {
                AccessOutcome::Miss => {
                    c.pop_outgoing();
                    c.fill(line, Cycle(cycle + 1));
                }
                AccessOutcome::ReservationFail => failed_expand = true,
                _ => {}
            }
            cycle += 2;
        }
        assert!(c.tags.demand_lines() <= total / 2 + 1);
        let _ = failed_expand;
    }

    #[test]
    fn confinement_protects_prefetch_side() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 64;
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Decoupled);
        c.set_trained(true);
        let total = c.total_lines();
        // Fill the whole cache with prefetched lines.
        for i in 0..total as u64 {
            assert_eq!(
                c.request_prefetch(LineAddr(i), Cycle(0)),
                PrefetchIssue::Issued
            );
            c.pop_outgoing();
            c.fill(LineAddr(i), Cycle(1));
        }
        assert_eq!(c.prefetch_lines(), total);
        // Confine demand; a demand miss cannot displace prefetch data.
        c.confine_until(Cycle(1000));
        assert_eq!(
            c.access_demand(LineAddr(10_000), WarpId(0), Cycle(2)),
            AccessOutcome::ReservationFail
        );
        assert_eq!(c.stats.fail_no_way, 1);
        // After the window the same access succeeds.
        assert_eq!(
            c.access_demand(LineAddr(10_000), WarpId(0), Cycle(2000)),
            AccessOutcome::Miss
        );
    }

    #[test]
    fn unused_prefetch_eviction_is_counted() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 1024;
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Decoupled);
        c.set_trained(true);
        let total = c.total_lines() as u64;
        // Overfill with prefetches only; evictions must count unused.
        for i in 0..total * 2 {
            let r = c.request_prefetch(LineAddr(i), Cycle(i));
            if r == PrefetchIssue::Issued {
                c.pop_outgoing();
                c.fill(LineAddr(i), Cycle(i));
            }
        }
        assert!(c.pf_stats.evicted_unused > 0);
    }

    #[test]
    fn isolated_buffer_serves_hits_without_touching_l1() {
        let mut c = l1(L1Mode::Isolated { lines: 4 });
        let line = LineAddr(3);
        assert_eq!(c.request_prefetch(line, Cycle(0)), PrefetchIssue::Issued);
        c.pop_outgoing();
        c.fill(line, Cycle(10));
        assert_eq!(c.free_lines(), c.total_lines(), "L1 untouched");
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(20)),
            AccessOutcome::HitPrefetch
        );
        assert_eq!(c.pf_stats.useful, 1);
        // Still served from the buffer on re-access.
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(21)),
            AccessOutcome::HitPrefetch
        );
        assert_eq!(c.pf_stats.useful, 1, "useful counted once");
    }

    /// Fills the whole decoupled cache with prefetched lines at
    /// consecutive line addresses starting at `base`.
    fn fill_with_prefetches(c: &mut UnifiedL1, base: u64, count: u64, cycle_base: u64) {
        for i in 0..count {
            assert_eq!(
                c.request_prefetch(LineAddr(base + i), Cycle(cycle_base + i)),
                PrefetchIssue::Issued
            );
            c.pop_outgoing();
            c.fill(LineAddr(base + i), Cycle(cycle_base + i));
        }
    }

    #[test]
    fn bulk_free_evicts_prefetch_side_when_transfers_are_rare() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 4096;
        cfgv.mshr_entries = 4096;
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Decoupled);
        c.set_trained(true);
        let total = u64::from(c.total_lines());
        fill_with_prefetches(&mut c, 0, total, 0);
        // Nothing transferred: a demand miss on a full cache triggers
        // the 25% bulk free on the *prefetch* side (§3.2 rule).
        let before = c.prefetch_lines();
        assert_eq!(
            c.access_demand(LineAddr(1 << 20), WarpId(0), Cycle(10_000)),
            AccessOutcome::Miss
        );
        assert!(
            c.prefetch_lines() + c.total_lines() / 4 <= before + 1,
            "prefetch side must shrink by ~25%: {before} -> {}",
            c.prefetch_lines()
        );
    }

    #[test]
    fn bulk_free_spares_prefetch_side_when_mostly_transferred() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 4096;
        cfgv.mshr_entries = 4096;
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Decoupled);
        c.set_trained(true);
        let total = u64::from(c.total_lines());
        fill_with_prefetches(&mut c, 0, total, 0);
        // Consume >80% of the prefetched data (flag-flip transfers).
        let consumed = total * 9 / 10;
        for i in 0..consumed {
            assert_eq!(
                c.access_demand(LineAddr(i), WarpId(0), Cycle(1000 + i)),
                AccessOutcome::HitPrefetch
            );
        }
        // Cache is still full; accurate prefetching (>80% transferred)
        // means the bulk free takes *demand* (transferred) lines and
        // keeps the remaining unconsumed prefetch lines.
        let unconsumed_before = c.prefetch_lines();
        assert_eq!(
            c.access_demand(LineAddr(1 << 20), WarpId(0), Cycle(100_000)),
            AccessOutcome::Miss
        );
        assert!(
            c.prefetch_lines() >= unconsumed_before.saturating_sub(1),
            "unconsumed prefetches survive: {unconsumed_before} -> {}",
            c.prefetch_lines()
        );
        assert!(c.pf_stats.evicted_unused <= 1, "no unused prefetch deaths");
    }

    #[test]
    fn overrun_flag_raised_and_cleared() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 4096;
        cfgv.mshr_entries = 4096;
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Decoupled);
        c.set_trained(true);
        let total = u64::from(c.total_lines());
        assert!(!c.take_overrun());
        // Overfill with young prefetches: the second lap evicts unused
        // young prefetch lines -> overrun.
        fill_with_prefetches(&mut c, 0, total * 2, 0);
        assert!(c.take_overrun(), "frontier churn must raise the flag");
        assert!(!c.take_overrun(), "take clears it");
    }

    #[test]
    fn spurious_fill_is_discarded_not_fatal() {
        let mut c = l1(L1Mode::Plain);
        let line = LineAddr(5);
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(0)),
            AccessOutcome::Miss
        );
        c.pop_outgoing();
        assert_eq!(c.fill(line, Cycle(100)), vec![WarpId(0)]);
        // The duplicate of the same fill arrives later.
        assert!(c.fill(line, Cycle(101)).is_empty());
        assert_eq!(c.fault_stats.spurious_fills, 1);
        // A fill for a line never requested is equally harmless.
        assert!(c.fill(LineAddr(9999), Cycle(102)).is_empty());
        assert_eq!(c.fault_stats.spurious_fills, 2);
        assert!(c.audit_invariants().is_empty());
    }

    #[test]
    fn recovery_reissues_timed_out_miss() {
        let mut cfgv = cfg();
        cfgv.fault.recovery = Some(crate::fault::Recovery {
            timeout: 100,
            max_retries: 2,
        });
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Plain);
        let line = LineAddr(5);
        assert_eq!(
            c.access_demand(line, WarpId(0), Cycle(0)),
            AccessOutcome::Miss
        );
        c.pop_outgoing(); // request leaves; its fill will be "lost"
        c.tick_recovery(Cycle(50));
        assert!(c.peek_outgoing().is_none(), "too early to reissue");
        c.tick_recovery(Cycle(100));
        let re = c.pop_outgoing().expect("timed-out miss reissued");
        assert_eq!(re.line, line);
        assert_eq!(re.kind, RequestKind::ReadMiss);
        assert_eq!(c.fault_stats.reissued_requests, 1);
        // Retry budget: one more, then the entry is left alone.
        c.tick_recovery(Cycle(200));
        assert!(c.pop_outgoing().is_some());
        c.tick_recovery(Cycle(300));
        assert!(c.pop_outgoing().is_none(), "retry budget spent");
        assert_eq!(c.fault_stats.reissued_requests, 2);
        // The reissued fill completes the original miss and waiters.
        assert_eq!(c.fill(line, Cycle(400)), vec![WarpId(0)]);
        assert!(c.audit_invariants().is_empty());
    }

    #[test]
    fn recovery_respects_miss_queue_room() {
        let mut cfgv = cfg();
        cfgv.miss_queue_depth = 2;
        cfgv.fault.recovery = Some(crate::fault::Recovery {
            timeout: 10,
            max_retries: 8,
        });
        let mut c = UnifiedL1::new(&cfgv, L1Mode::Plain);
        c.access_demand(LineAddr(1), WarpId(0), Cycle(0));
        c.access_demand(LineAddr(2), WarpId(1), Cycle(0));
        // Queue still full: no room to reissue.
        c.tick_recovery(Cycle(100));
        assert_eq!(c.miss_queue_len(), 2);
        assert_eq!(c.fault_stats.reissued_requests, 0);
        c.pop_outgoing();
        c.pop_outgoing();
        c.tick_recovery(Cycle(200));
        assert_eq!(c.miss_queue_len(), 2, "both reissued into freed room");
        assert_eq!(c.fault_stats.reissued_requests, 2);
    }

    #[test]
    fn audit_is_clean_through_normal_operation() {
        let mut c = l1(L1Mode::Decoupled);
        assert!(c.audit_invariants().is_empty());
        c.access_demand(LineAddr(1), WarpId(0), Cycle(0));
        c.request_prefetch(LineAddr(2), Cycle(0));
        assert!(c.audit_invariants().is_empty());
        assert_eq!(c.reserved_lines(), 2);
        assert_eq!(c.outstanding_misses(), 2);
        c.pop_outgoing();
        c.pop_outgoing();
        c.fill(LineAddr(1), Cycle(10));
        c.fill(LineAddr(2), Cycle(11));
        assert!(c.audit_invariants().is_empty());
        assert_eq!(c.reserved_lines(), 0);
    }

    #[test]
    fn store_uses_miss_queue_and_can_fail() {
        let mut c = l1(L1Mode::Plain);
        assert!(c.access_store(LineAddr(1), Cycle(0)));
        assert!(c.access_store(LineAddr(2), Cycle(0)));
        assert!(!c.access_store(LineAddr(3), Cycle(0)), "queue depth 2");
        assert_eq!(c.stats.fail_miss_queue, 1);
        assert_eq!(c.pop_outgoing().unwrap().kind, RequestKind::Store);
    }
}

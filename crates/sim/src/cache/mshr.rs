//! Miss Status Holding Registers.
//!
//! The L1 tracks outstanding misses in an MSHR file with a bounded
//! number of entries and a bounded merge capability per entry
//! (Table 1: 512 entries, 8 merges on the V100). Exhaustion of either
//! produces reservation fails, one of the paper's motivation points.

use std::collections::HashMap;

use crate::json::Value;
use crate::obs::{SimEvent, TraceEvent};
use crate::snapshot::{self, SnapshotError};
use crate::types::{Cycle, LineAddr, SmId, WarpId};

/// The origin of an outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissOrigin {
    /// Allocated by a demand load.
    Demand,
    /// Allocated by a prefetch (no warp waits unless one merges later).
    Prefetch,
}

/// One outstanding miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Missing line.
    pub line: LineAddr,
    /// How the miss was created.
    pub origin: MissOrigin,
    /// Warps waiting on this line (empty for un-merged prefetches).
    pub waiters: Vec<WarpId>,
    /// Whether a demand request has merged into a prefetch-origin
    /// entry (a *late* prefetch in the §4 metrics).
    pub demand_merged: bool,
    /// Total requests merged into this entry, including the allocator.
    pub requests: u32,
    /// Allocation cycle.
    pub alloc_cycle: Cycle,
    /// Cycle the miss was last sent down the hierarchy (allocation, or
    /// the most recent timeout-recovery reissue).
    pub last_issue: Cycle,
    /// Timeout-recovery reissues consumed.
    pub retries: u32,
}

/// Result of attempting to merge into an existing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeResult {
    /// Merged into the outstanding entry.
    Merged {
        /// The entry was allocated by a prefetch: the merging demand's
        /// address was correctly predicted (late prefetch coverage).
        was_prefetch: bool,
        /// This is the first demand to merge into the entry (counts
        /// the prefetch as late exactly once).
        first_demand: bool,
    },
    /// The entry's merge capacity is exhausted.
    Full,
}

/// The MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: HashMap<LineAddr, MshrEntry>,
    capacity: usize,
    merge_capacity: usize,
    /// Allocation events buffered while tracing is enabled; the owning
    /// L1 drains them each cycle. `None` (the default) keeps the hot
    /// path to a single branch.
    trace: Option<(SmId, Vec<TraceEvent>)>,
}

impl MshrFile {
    /// Creates a file with `entries` slots and `merge` requesters per
    /// slot (the allocating request counts as one).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(entries: u32, merge: u32) -> Self {
        assert!(entries > 0 && merge > 0);
        MshrFile {
            entries: HashMap::with_capacity(entries as usize),
            capacity: entries as usize,
            merge_capacity: merge as usize,
            trace: None,
        }
    }

    /// Starts buffering [`SimEvent::MshrAllocate`] events on behalf of
    /// the SM that owns this file.
    pub fn enable_trace(&mut self, sm: SmId) {
        self.trace = Some((sm, Vec::new()));
    }

    /// Moves buffered trace events into `out` (in allocation order).
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some((_, buf)) = self.trace.as_mut() {
            out.append(buf);
        }
    }

    /// Outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new entry can be allocated.
    pub fn has_free_entry(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Looks up an outstanding miss.
    pub fn get(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.get(&line)
    }

    /// Allocates a new entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line already has an entry or the file is
    /// full — callers must check [`MshrFile::has_free_entry`] and
    /// [`MshrFile::get`] first.
    pub fn allocate(
        &mut self,
        line: LineAddr,
        origin: MissOrigin,
        waiter: Option<WarpId>,
        now: Cycle,
    ) {
        debug_assert!(self.has_free_entry());
        debug_assert!(!self.entries.contains_key(&line));
        if let Some((sm, buf)) = self.trace.as_mut() {
            buf.push(TraceEvent {
                cycle: now,
                data: SimEvent::MshrAllocate {
                    sm: *sm,
                    line,
                    prefetch: origin == MissOrigin::Prefetch,
                },
            });
        }
        let waiters = waiter.into_iter().collect();
        self.entries.insert(
            line,
            MshrEntry {
                line,
                origin,
                waiters,
                demand_merged: false,
                requests: 1,
                alloc_cycle: now,
                last_issue: now,
                retries: 0,
            },
        );
    }

    /// Merges a demand request into an existing entry.
    pub fn merge_demand(&mut self, line: LineAddr, waiter: WarpId) -> MergeResult {
        let entry = self
            .entries
            .get_mut(&line)
            .expect("merge target must exist");
        // The allocating request occupies one merge slot.
        if entry.requests as usize >= self.merge_capacity {
            return MergeResult::Full;
        }
        entry.requests += 1;
        entry.waiters.push(waiter);
        let was_prefetch = entry.origin == MissOrigin::Prefetch;
        let first_demand = was_prefetch && !entry.demand_merged;
        if was_prefetch {
            entry.demand_merged = true;
        }
        MergeResult::Merged {
            was_prefetch,
            first_demand,
        }
    }

    /// Completes a miss, removing and returning its entry.
    ///
    /// # Panics
    ///
    /// Panics if no entry exists for `line`.
    pub fn complete(&mut self, line: LineAddr) -> MshrEntry {
        self.try_complete(line)
            .expect("completed line must have an MSHR entry")
    }

    /// Completes a miss if an entry exists. Fault injection can deliver
    /// a fill twice (or a recovered fill after the original straggles
    /// in); the second arrival finds no entry and must not panic.
    pub fn try_complete(&mut self, line: LineAddr) -> Option<MshrEntry> {
        self.entries.remove(&line)
    }

    /// Configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over all outstanding entries (auditing).
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.entries.values()
    }

    /// Iterates mutably over all outstanding entries (timeout
    /// recovery updates `last_issue`/`retries` in place).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MshrEntry> {
        self.entries.values_mut()
    }

    /// Mutable access to the entry for `line`, if present.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut MshrEntry> {
        self.entries.get_mut(&line)
    }

    /// Serializes every outstanding entry for a checkpoint. Entries
    /// are written in ascending line order so the encoding is
    /// independent of `HashMap` iteration order — the byte-stability
    /// the kill-anywhere guarantee needs.
    pub fn save_state(&self) -> Value {
        let mut lines: Vec<&MshrEntry> = self.entries.values().collect();
        lines.sort_by_key(|e| e.line);
        let entries = lines
            .into_iter()
            .map(|e| {
                Value::Obj(vec![
                    ("line".into(), Value::u64(e.line.0)),
                    (
                        "origin".into(),
                        Value::u64(match e.origin {
                            MissOrigin::Demand => 0,
                            MissOrigin::Prefetch => 1,
                        }),
                    ),
                    (
                        "waiters".into(),
                        Value::Arr(
                            e.waiters
                                .iter()
                                .map(|w| Value::u64(u64::from(w.0)))
                                .collect(),
                        ),
                    ),
                    ("demand_merged".into(), Value::Bool(e.demand_merged)),
                    ("requests".into(), Value::u64(u64::from(e.requests))),
                    ("alloc_cycle".into(), Value::u64(e.alloc_cycle.0)),
                    ("last_issue".into(), Value::u64(e.last_issue.0)),
                    ("retries".into(), Value::u64(u64::from(e.retries))),
                ])
            })
            .collect();
        Value::Obj(vec![("entries".into(), Value::Arr(entries))])
    }

    /// Restores the outstanding entries from [`save_state`]
    /// (capacities are config-derived and kept).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a mistyped entry or more
    /// entries than this file's capacity.
    ///
    /// [`save_state`]: MshrFile::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let entries = snapshot::arr_field(v, "entries")?;
        if entries.len() > self.capacity {
            return Err(SnapshotError::malformed(format!(
                "checkpoint has {} MSHR entries, capacity is {}",
                entries.len(),
                self.capacity
            )));
        }
        let mut restored = HashMap::with_capacity(self.capacity);
        for e in entries {
            let line = LineAddr(snapshot::u64_field(e, "line")?);
            let origin = match snapshot::u64_field(e, "origin")? {
                0 => MissOrigin::Demand,
                1 => MissOrigin::Prefetch,
                _ => return Err(SnapshotError::malformed("bad MSHR origin")),
            };
            let waiters = snapshot::arr_field(e, "waiters")?
                .iter()
                .map(|w| {
                    w.as_u32()
                        .map(WarpId)
                        .ok_or_else(|| SnapshotError::malformed("bad MSHR waiter"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            restored.insert(
                line,
                MshrEntry {
                    line,
                    origin,
                    waiters,
                    demand_merged: snapshot::bool_field(e, "demand_merged")?,
                    requests: snapshot::u32_field(e, "requests")?,
                    alloc_cycle: Cycle(snapshot::u64_field(e, "alloc_cycle")?),
                    last_issue: Cycle(snapshot::u64_field(e, "last_issue")?),
                    retries: snapshot::u32_field(e, "retries")?,
                },
            );
        }
        self.entries = restored;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m = MshrFile::new(2, 3);
        assert!(m.is_empty());
        m.allocate(LineAddr(1), MissOrigin::Demand, Some(WarpId(0)), Cycle(0));
        assert_eq!(m.len(), 1);
        assert!(m.get(LineAddr(1)).is_some());
        assert_eq!(
            m.merge_demand(LineAddr(1), WarpId(1)),
            MergeResult::Merged {
                was_prefetch: false,
                first_demand: false
            }
        );
        assert_eq!(
            m.merge_demand(LineAddr(1), WarpId(2)),
            MergeResult::Merged {
                was_prefetch: false,
                first_demand: false
            }
        );
        // merge capacity 3 = allocator + 2 merges.
        assert_eq!(m.merge_demand(LineAddr(1), WarpId(3)), MergeResult::Full);
        let e = m.complete(LineAddr(1));
        assert_eq!(e.waiters, vec![WarpId(0), WarpId(1), WarpId(2)]);
        assert!(m.is_empty());
    }

    #[test]
    fn entry_capacity() {
        let mut m = MshrFile::new(1, 8);
        m.allocate(LineAddr(1), MissOrigin::Demand, Some(WarpId(0)), Cycle(0));
        assert!(!m.has_free_entry());
        assert_eq!(m.capacity(), 1);
    }

    #[test]
    fn try_complete_tolerates_missing_entry() {
        let mut m = MshrFile::new(2, 8);
        assert!(m.try_complete(LineAddr(1)).is_none());
        m.allocate(LineAddr(1), MissOrigin::Demand, Some(WarpId(0)), Cycle(0));
        assert!(m.try_complete(LineAddr(1)).is_some());
        assert!(m.try_complete(LineAddr(1)).is_none(), "duplicate fill");
    }

    #[test]
    fn retry_bookkeeping_starts_at_allocation() {
        let mut m = MshrFile::new(1, 8);
        m.allocate(LineAddr(3), MissOrigin::Demand, Some(WarpId(0)), Cycle(17));
        let e = m.get(LineAddr(3)).unwrap();
        assert_eq!(e.last_issue, Cycle(17));
        assert_eq!(e.retries, 0);
        for e in m.iter_mut() {
            e.retries += 1;
            e.last_issue = Cycle(40);
        }
        assert_eq!(m.iter().count(), 1);
        assert_eq!(m.get(LineAddr(3)).unwrap().retries, 1);
    }

    #[test]
    fn prefetch_merge_is_flagged_once() {
        let mut m = MshrFile::new(1, 8);
        m.allocate(LineAddr(7), MissOrigin::Prefetch, None, Cycle(0));
        assert_eq!(
            m.merge_demand(LineAddr(7), WarpId(4)),
            MergeResult::Merged {
                was_prefetch: true,
                first_demand: true
            }
        );
        // Later merges are still covered, but the prefetch is counted
        // late only once.
        assert_eq!(
            m.merge_demand(LineAddr(7), WarpId(5)),
            MergeResult::Merged {
                was_prefetch: true,
                first_demand: false
            }
        );
        let e = m.complete(LineAddr(7));
        assert!(e.demand_merged);
        assert_eq!(e.origin, MissOrigin::Prefetch);
    }
}

//! Set-associative tag array with per-line state, LRU, and the
//! demand/prefetch side flag used by Snake's decoupled unified cache.

use crate::config::CacheGeometry;
use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::types::{Cycle, LineAddr};

/// Allocation state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Empty.
    Invalid,
    /// Allocated for an in-flight miss; data not yet arrived.
    Reserved,
    /// Holds valid data.
    Valid,
}

/// Which logical partition of the unified SRAM a line belongs to.
///
/// The paper's decoupling is "not a physical movement but the
/// alteration of the corresponding flag" (§3.2) — exactly this flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Ordinary demand (L1) data.
    Demand,
    /// Prefetched data not yet consumed by a demand access.
    Prefetch,
}

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct Line {
    /// Line-granular address tag (full address; sets are recomputed).
    pub tag: LineAddr,
    /// Allocation state.
    pub state: LineState,
    /// Demand/prefetch side flag.
    pub side: Side,
    /// Last touch, for LRU.
    pub last_use: Cycle,
    /// Cycle the line's data arrived (fills) or was allocated.
    pub fill_cycle: Cycle,
    /// For prefetch-side lines: whether a demand access ever hit it.
    pub used: bool,
    /// Sticky: the line's data was brought in by a prefetch (survives
    /// the transfer to the demand side). Coverage accounting counts
    /// every demand hit on such lines as a correctly predicted address.
    pub origin_prefetch: bool,
}

impl Line {
    fn invalid() -> Self {
        Line {
            tag: LineAddr(0),
            state: LineState::Invalid,
            side: Side::Demand,
            last_use: Cycle::ZERO,
            fill_cycle: Cycle::ZERO,
            used: false,
            origin_prefetch: false,
        }
    }
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Way(pub(crate) usize);

/// A set-associative tag array.
///
/// `L2` and the unified L1 share this structure; the L1 additionally
/// drives the [`Side`] flags and occupancy counters.
#[derive(Debug, Clone)]
pub struct TagArray {
    sets: u32,
    ways: u32,
    lines: Vec<Line>,
    valid: u32,
    valid_prefetch: u32,
    reserved: u32,
}

impl TagArray {
    /// Builds an empty array for `usable_lines` lines with the given
    /// associativity. The set count is `usable_lines / ways` and must
    /// be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(usable_lines: u32, ways: u32) -> Self {
        assert!(ways > 0 && usable_lines >= ways);
        assert_eq!(usable_lines % ways, 0, "lines must divide into sets");
        let sets = usable_lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        TagArray {
            sets,
            ways,
            lines: vec![Line::invalid(); usable_lines as usize],
            valid: 0,
            valid_prefetch: 0,
            reserved: 0,
        }
    }

    /// Builds an array from a [`CacheGeometry`], reduced by a
    /// carve-out (bytes removed from the top, e.g. shared memory).
    pub fn from_geometry(geom: &CacheGeometry, carveout_bytes: u32) -> Self {
        let usable = (geom.capacity_bytes - carveout_bytes) / geom.line_bytes;
        // Shrink ways to keep the set count: carve-out removes ways,
        // matching how Volta's carve-out reduces associativity.
        let ways = (usable / geom.sets()).max(1);
        let usable = ways * geom.sets();
        TagArray::new(usable, ways)
    }

    /// Number of lines.
    pub fn capacity(&self) -> u32 {
        self.lines.len() as u32
    }

    /// Lines currently invalid.
    pub fn free_lines(&self) -> u32 {
        self.capacity() - self.valid - self.reserved
    }

    /// Valid lines on the prefetch side.
    pub fn prefetch_lines(&self) -> u32 {
        self.valid_prefetch
    }

    /// Valid lines on the demand side.
    pub fn demand_lines(&self) -> u32 {
        self.valid - self.valid_prefetch
    }

    /// Lines reserved for in-flight misses.
    pub fn reserved_lines(&self) -> u32 {
        self.reserved
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.0 % u64::from(self.sets)) as usize
    }

    fn set_range(&self, addr: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_of(addr) * self.ways as usize;
        s..s + self.ways as usize
    }

    /// Finds the way holding `addr`, if present (any state but Invalid).
    pub fn probe(&self, addr: LineAddr) -> Option<Way> {
        self.set_range(addr)
            .find(|&i| self.lines[i].state != LineState::Invalid && self.lines[i].tag == addr)
            .map(Way)
    }

    /// Immutable view of a line.
    pub fn line(&self, way: Way) -> &Line {
        &self.lines[way.0]
    }

    /// Touches a line for LRU and marks prefetch-side usage.
    pub fn touch(&mut self, way: Way, now: Cycle) {
        let l = &mut self.lines[way.0];
        l.last_use = now;
    }

    /// Flips a prefetch-side line to the demand side (the §3.2
    /// "transfer" on a demand hit) and marks it used.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is not a valid prefetch-side line.
    pub fn transfer_to_demand(&mut self, way: Way, now: Cycle) {
        let l = &mut self.lines[way.0];
        debug_assert_eq!(l.state, LineState::Valid);
        debug_assert_eq!(l.side, Side::Prefetch);
        l.side = Side::Demand;
        l.used = true;
        l.last_use = now;
        self.valid_prefetch -= 1;
    }

    /// Selects a victim way in `addr`'s set: an invalid way if any,
    /// otherwise the LRU *valid* way passing `allow` (reserved ways are
    /// never victims). Returns `None` if nothing is evictable.
    pub fn find_victim<F>(&self, addr: LineAddr, allow: F) -> Option<Way>
    where
        F: Fn(&Line) -> bool,
    {
        let mut best: Option<(usize, Cycle)> = None;
        for i in self.set_range(addr) {
            match self.lines[i].state {
                LineState::Invalid => return Some(Way(i)),
                LineState::Reserved => continue,
                LineState::Valid => {
                    if allow(&self.lines[i]) {
                        let lu = self.lines[i].last_use;
                        if best.is_none_or(|(_, b)| lu < b) {
                            best = Some((i, lu));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| Way(i))
    }

    /// Like [`TagArray::find_victim`] but never returns an invalid way:
    /// used to *force* replacement within a partition (the decoupled
    /// L1's 50% demand cap must not expand into free space).
    pub fn find_lru_valid<F>(&self, addr: LineAddr, allow: F) -> Option<Way>
    where
        F: Fn(&Line) -> bool,
    {
        let mut best: Option<(usize, Cycle)> = None;
        for i in self.set_range(addr) {
            if self.lines[i].state == LineState::Valid && allow(&self.lines[i]) {
                let lu = self.lines[i].last_use;
                if best.is_none_or(|(_, b)| lu < b) {
                    best = Some((i, lu));
                }
            }
        }
        best.map(|(i, _)| Way(i))
    }

    /// Evicts (invalidates) a line, returning its bookkeeping for the
    /// caller's statistics.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is reserved — in-flight lines cannot
    /// be evicted.
    pub fn evict(&mut self, way: Way) -> Line {
        let l = self.lines[way.0];
        debug_assert_ne!(l.state, LineState::Reserved);
        if l.state == LineState::Valid {
            self.valid -= 1;
            if l.side == Side::Prefetch {
                self.valid_prefetch -= 1;
            }
        }
        self.lines[way.0] = Line::invalid();
        l
    }

    /// Reserves a (previously invalid) way for an in-flight miss.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the way is not invalid.
    pub fn reserve(&mut self, way: Way, addr: LineAddr, side: Side, now: Cycle) {
        let l = &mut self.lines[way.0];
        debug_assert_eq!(l.state, LineState::Invalid);
        *l = Line {
            tag: addr,
            state: LineState::Reserved,
            side,
            last_use: now,
            fill_cycle: now,
            used: false,
            origin_prefetch: side == Side::Prefetch,
        };
        self.reserved += 1;
    }

    /// Changes the side of a reserved line (a demand merging into an
    /// in-flight prefetch promotes it to the demand side on arrival).
    pub fn set_reserved_side(&mut self, way: Way, side: Side) {
        debug_assert_eq!(self.lines[way.0].state, LineState::Reserved);
        self.lines[way.0].side = side;
    }

    /// Completes a reserved line's fill.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is not reserved.
    pub fn fill(&mut self, way: Way, now: Cycle) {
        let l = &mut self.lines[way.0];
        debug_assert_eq!(l.state, LineState::Reserved);
        l.state = LineState::Valid;
        l.fill_cycle = now;
        l.last_use = now;
        self.reserved -= 1;
        self.valid += 1;
        if l.side == Side::Prefetch {
            self.valid_prefetch += 1;
        }
    }

    /// Bulk-evicts the LRU `count` valid lines of `side`, returning the
    /// evicted lines (the §3.2 "free 25% of the unified cache" rule).
    pub fn bulk_evict_lru(&mut self, side: Side, count: u32) -> Vec<Line> {
        let mut candidates: Vec<usize> = (0..self.lines.len())
            .filter(|&i| self.lines[i].state == LineState::Valid && self.lines[i].side == side)
            .collect();
        candidates.sort_by_key(|&i| self.lines[i].last_use);
        candidates.truncate(count as usize);
        candidates.into_iter().map(|i| self.evict(Way(i))).collect()
    }

    /// Iterates over all valid lines (testing/diagnostics).
    pub fn iter_valid(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.state == LineState::Valid)
    }

    /// Serializes every line for a checkpoint. The geometry and the
    /// occupancy counters are not captured: geometry comes from the
    /// config, counters are recomputed from the lines on restore.
    pub fn save_state(&self) -> Value {
        let lines = self
            .lines
            .iter()
            .map(|l| {
                Value::Arr(vec![
                    Value::u64(l.tag.0),
                    Value::u64(match l.state {
                        LineState::Invalid => 0,
                        LineState::Reserved => 1,
                        LineState::Valid => 2,
                    }),
                    Value::u64(match l.side {
                        Side::Demand => 0,
                        Side::Prefetch => 1,
                    }),
                    Value::u64(l.last_use.0),
                    Value::u64(l.fill_cycle.0),
                    Value::Bool(l.used),
                    Value::Bool(l.origin_prefetch),
                ])
            })
            .collect();
        Value::Obj(vec![("lines".into(), Value::Arr(lines))])
    }

    /// Restores every line from [`save_state`] and recomputes the
    /// occupancy counters.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the line count does not match
    /// this array's geometry or a line entry is mistyped.
    ///
    /// [`save_state`]: TagArray::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let lines = snapshot::arr_field(v, "lines")?;
        if lines.len() != self.lines.len() {
            return Err(SnapshotError::malformed(format!(
                "tag array has {} lines, checkpoint has {}",
                self.lines.len(),
                lines.len()
            )));
        }
        let bad = || SnapshotError::malformed("bad tag-array line entry");
        let mut restored = Vec::with_capacity(lines.len());
        for entry in lines {
            let f = entry.as_arr().ok_or_else(bad)?;
            if f.len() != 7 {
                return Err(bad());
            }
            let num = |i: usize| f[i].as_u64().ok_or_else(bad);
            let flag = |i: usize| f[i].as_bool().ok_or_else(bad);
            restored.push(Line {
                tag: LineAddr(num(0)?),
                state: match num(1)? {
                    0 => LineState::Invalid,
                    1 => LineState::Reserved,
                    2 => LineState::Valid,
                    _ => return Err(bad()),
                },
                side: match num(2)? {
                    0 => Side::Demand,
                    1 => Side::Prefetch,
                    _ => return Err(bad()),
                },
                last_use: Cycle(num(3)?),
                fill_cycle: Cycle(num(4)?),
                used: flag(5)?,
                origin_prefetch: flag(6)?,
            });
        }
        self.lines = restored;
        self.valid = self
            .lines
            .iter()
            .filter(|l| l.state == LineState::Valid)
            .count() as u32;
        self.valid_prefetch = self
            .lines
            .iter()
            .filter(|l| l.state == LineState::Valid && l.side == Side::Prefetch)
            .count() as u32;
        self.reserved = self
            .lines
            .iter()
            .filter(|l| l.state == LineState::Reserved)
            .count() as u32;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> TagArray {
        TagArray::new(8, 2) // 4 sets x 2 ways
    }

    #[test]
    fn reserve_fill_probe_evict_roundtrip() {
        let mut t = arr();
        let a = LineAddr(4); // set 0
        assert!(t.probe(a).is_none());
        let w = t.find_victim(a, |_| true).unwrap();
        t.reserve(w, a, Side::Demand, Cycle(1));
        assert_eq!(t.reserved_lines(), 1);
        assert_eq!(t.line(t.probe(a).unwrap()).state, LineState::Reserved);
        t.fill(w, Cycle(5));
        assert_eq!(t.reserved_lines(), 0);
        assert_eq!(t.free_lines(), 7);
        let l = t.evict(t.probe(a).unwrap());
        assert_eq!(l.tag, a);
        assert_eq!(t.free_lines(), 8);
    }

    #[test]
    fn victim_is_lru_valid() {
        let mut t = arr();
        // Fill both ways of set 1 (addrs 1 and 5).
        for (addr, cy) in [(1u64, 10u64), (5, 20)] {
            let a = LineAddr(addr);
            let w = t.find_victim(a, |_| true).unwrap();
            t.reserve(w, a, Side::Demand, Cycle(cy));
            t.fill(w, Cycle(cy));
        }
        // LRU is addr 1.
        let v = t.find_victim(LineAddr(9), |_| true).unwrap();
        assert_eq!(t.line(v).tag, LineAddr(1));
        // Touch addr 1; now addr 5 is LRU.
        let w1 = t.probe(LineAddr(1)).unwrap();
        t.touch(w1, Cycle(30));
        let v = t.find_victim(LineAddr(9), |_| true).unwrap();
        assert_eq!(t.line(v).tag, LineAddr(5));
    }

    #[test]
    fn reserved_lines_are_not_victims() {
        let mut t = TagArray::new(2, 2); // 1 set x 2 ways
        for addr in [0u64, 1] {
            let a = LineAddr(addr);
            let w = t.find_victim(a, |_| true).unwrap();
            t.reserve(w, a, Side::Demand, Cycle(0));
        }
        assert!(t.find_victim(LineAddr(2), |_| true).is_none());
    }

    #[test]
    fn side_counters_and_transfer() {
        let mut t = arr();
        let a = LineAddr(2);
        let w = t.find_victim(a, |_| true).unwrap();
        t.reserve(w, a, Side::Prefetch, Cycle(0));
        t.fill(w, Cycle(3));
        assert_eq!(t.prefetch_lines(), 1);
        assert_eq!(t.demand_lines(), 0);
        t.transfer_to_demand(t.probe(a).unwrap(), Cycle(4));
        assert_eq!(t.prefetch_lines(), 0);
        assert_eq!(t.demand_lines(), 1);
        assert!(t.line(t.probe(a).unwrap()).used);
    }

    #[test]
    fn victim_filter_respects_side() {
        let mut t = TagArray::new(2, 2);
        for (addr, side) in [(0u64, Side::Demand), (1, Side::Prefetch)] {
            let a = LineAddr(addr);
            let w = t.find_victim(a, |_| true).unwrap();
            t.reserve(w, a, side, Cycle(0));
            t.fill(w, Cycle(0));
        }
        let v = t
            .find_victim(LineAddr(2), |l| l.side == Side::Prefetch)
            .unwrap();
        assert_eq!(t.line(v).tag, LineAddr(1));
        assert!(t
            .find_victim(LineAddr(2), |l| l.side == Side::Prefetch && l.used)
            .is_none());
    }

    #[test]
    fn bulk_evict_takes_lru_of_side() {
        let mut t = TagArray::new(16, 4);
        for i in 0..8u64 {
            let a = LineAddr(i);
            let w = t.find_victim(a, |_| true).unwrap();
            let side = if i % 2 == 0 {
                Side::Prefetch
            } else {
                Side::Demand
            };
            t.reserve(w, a, side, Cycle(i));
            t.fill(w, Cycle(i));
        }
        let evicted = t.bulk_evict_lru(Side::Prefetch, 2);
        assert_eq!(evicted.len(), 2);
        // Oldest prefetch lines are addrs 0 and 2.
        let mut tags: Vec<u64> = evicted.iter().map(|l| l.tag.0).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 2]);
        assert_eq!(t.prefetch_lines(), 2);
    }

    #[test]
    fn from_geometry_respects_carveout() {
        let g = CacheGeometry::new(16 * 1024, 128, 32); // 128 lines, 4 sets
        let full = TagArray::from_geometry(&g, 0);
        assert_eq!(full.capacity(), 128);
        let half = TagArray::from_geometry(&g, 8 * 1024);
        assert_eq!(half.capacity(), 64);
    }
}

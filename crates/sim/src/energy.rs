//! First-order energy model (the paper's AccelWattch substitution).
//!
//! Energy = static power × runtime + Σ (event count × event energy).
//! The paper's energy result (Fig 19) is first-order: Snake saves
//! energy mainly by shortening runtime (static energy) and by removing
//! repeated reservation-fail accesses, while paying a small premium
//! for prefetch traffic and the tables (6.4 pJ/access, 6 mW static —
//! §5.5). Those are exactly the terms modeled here.

use crate::config::GpuConfig;
use crate::stats::SimStats;

/// Per-event energies in picojoules and static power in watts.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per warp instruction issued (execution pipeline).
    pub instr_pj: f64,
    /// Energy per L1 access (any outcome, including reservation fails —
    /// failed accesses still burn tag-lookup energy, one of the paper's
    /// motivation points).
    pub l1_access_pj: f64,
    /// Energy per L2 access.
    pub l2_access_pj: f64,
    /// Energy per DRAM line transfer.
    pub dram_access_pj: f64,
    /// Energy per interconnect byte.
    pub noc_byte_pj: f64,
    /// Energy per prefetcher-table access (the paper's 6.4 pJ).
    pub prefetcher_access_pj: f64,
    /// Device static power in watts, per SM.
    pub static_w_per_sm: f64,
    /// Prefetcher static power in watts, per SM (the paper's 6 mW).
    pub prefetcher_static_w: f64,
}

impl EnergyModel {
    /// Defaults loosely calibrated to a 12 nm datacenter GPU so that
    /// static energy dominates memory-bound runs (the regime of Fig 19).
    pub fn volta_like() -> Self {
        EnergyModel {
            instr_pj: 60.0,
            l1_access_pj: 150.0,
            l2_access_pj: 800.0,
            dram_access_pj: 4_000.0, // HBM2 ~3.9 pJ/bit x 128 B
            noc_byte_pj: 4.0,
            prefetcher_access_pj: 6.4,
            // Quasi-constant (leakage + clocking + idle-lane) power of a
            // datacenter GPU, amortized per SM: ~250 W / 80 SMs.
            static_w_per_sm: 3.0,
            prefetcher_static_w: 0.006,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::volta_like()
    }
}

/// Energy breakdown of a run, in joules.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Static (leakage + clock) energy over the runtime.
    pub static_j: f64,
    /// Execution pipeline energy.
    pub core_j: f64,
    /// L1 energy.
    pub l1_j: f64,
    /// L2 energy.
    pub l2_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
    /// Interconnect energy.
    pub noc_j: f64,
    /// Prefetcher table energy (dynamic + static).
    pub prefetcher_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.static_j
            + self.core_j
            + self.l1_j
            + self.l2_j
            + self.dram_j
            + self.noc_j
            + self.prefetcher_j
    }
}

impl EnergyModel {
    /// Evaluates the model on a run's statistics.
    ///
    /// `has_prefetcher` enables the table costs (a baseline GPU carries
    /// no prefetcher hardware).
    pub fn evaluate(
        &self,
        stats: &SimStats,
        cfg: &GpuConfig,
        has_prefetcher: bool,
    ) -> EnergyBreakdown {
        let seconds = stats.cycles as f64 / (cfg.core_clock_mhz as f64 * 1e6);
        let pj = 1e-12;
        let l1_accesses = stats.l1.total_accesses() + stats.prefetch.issued + stats.stores;
        let l2_accesses = stats.l2_hits + stats.l2_misses;
        let prefetcher_accesses = if has_prefetcher {
            // One table access per observed demand load plus one per
            // generated request.
            stats.demand_loads + stats.prefetch.requested
        } else {
            0
        };
        EnergyBreakdown {
            static_j: self.static_w_per_sm * f64::from(cfg.num_sms) * seconds,
            core_j: stats.instructions as f64 * self.instr_pj * pj,
            l1_j: l1_accesses as f64 * self.l1_access_pj * pj,
            l2_j: l2_accesses as f64 * self.l2_access_pj * pj,
            dram_j: stats.l2_misses as f64 * self.dram_access_pj * pj,
            noc_j: (stats.noc_bytes_up + stats.noc_bytes_down) as f64 * self.noc_byte_pj * pj,
            prefetcher_j: if has_prefetcher {
                prefetcher_accesses as f64 * self.prefetcher_access_pj * pj
                    + self.prefetcher_static_w * f64::from(cfg.num_sms) * seconds
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheStats;

    fn stats(cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instructions: 1000,
            demand_loads: 500,
            l1: CacheStats {
                hits: 300,
                misses: 200,
                ..Default::default()
            },
            l2_hits: 100,
            l2_misses: 100,
            noc_bytes_up: 10_000,
            noc_bytes_down: 30_000,
            ..Default::default()
        }
    }

    #[test]
    fn shorter_runs_use_less_static_energy() {
        let m = EnergyModel::volta_like();
        let cfg = GpuConfig::scaled(2);
        let slow = m.evaluate(&stats(100_000), &cfg, false);
        let fast = m.evaluate(&stats(80_000), &cfg, false);
        assert!(fast.static_j < slow.static_j);
        assert!(fast.total_j() < slow.total_j());
    }

    #[test]
    fn prefetcher_hardware_costs_something_but_little() {
        let m = EnergyModel::volta_like();
        let cfg = GpuConfig::scaled(2);
        let s = stats(100_000);
        let without = m.evaluate(&s, &cfg, false);
        let with = m.evaluate(&s, &cfg, true);
        assert!(with.total_j() > without.total_j());
        let overhead = (with.total_j() - without.total_j()) / without.total_j();
        assert!(overhead < 0.01, "paper: <1% power overhead, got {overhead}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::volta_like();
        let cfg = GpuConfig::scaled(1);
        let b = m.evaluate(&stats(1000), &cfg, true);
        let sum = b.static_j + b.core_j + b.l1_j + b.l2_j + b.dram_j + b.noc_j + b.prefetcher_j;
        assert!((b.total_j() - sum).abs() < 1e-18);
    }

    #[test]
    fn static_energy_dominates_memory_bound_runs() {
        let m = EnergyModel::volta_like();
        let cfg = GpuConfig::scaled(2);
        let b = m.evaluate(&stats(1_000_000), &cfg, false);
        assert!(b.static_j > 0.5 * b.total_j());
    }
}

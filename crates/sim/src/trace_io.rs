//! Plain-text kernel-trace serialization.
//!
//! The synthetic generators in `snake-workloads` stand in for the
//! paper's Accel-Sim traces, but the simulator itself is
//! trace-agnostic: this module defines a simple line-oriented text
//! format so externally produced traces (e.g. converted from real
//! Accel-Sim/NVBit output) can be replayed through the same pipeline.
//!
//! ## Format
//!
//! ```text
//! # anything after '#' is a comment
//! kernel my-kernel
//! warp 0            <- starts a warp belonging to CTA 0
//! L 10 0x1000       <- load, pc 10, one coalesced transaction
//! L 12 0x2000,0x80  <- divergent load, two transactions
//! S 14 0x1000       <- store
//! C 8               <- compute for 8 cycles
//! warp 0
//! ...
//! ```
//!
//! Addresses accept decimal or `0x` hexadecimal. Warps appear in
//! trace order; the n-th `warp` line defines warp *n*.
//!
//! ## Examples
//!
//! ```
//! use snake_sim::trace_io;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "kernel demo\nwarp 0\nL 1 0x80\nC 4\nS 2 128\n";
//! let kernel = trace_io::from_text(text)?;
//! assert_eq!(kernel.name(), "demo");
//! assert_eq!(kernel.total_loads(), 1);
//! let round_trip = trace_io::from_text(&trace_io::to_text(&kernel))?;
//! assert_eq!(kernel, round_trip);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::kernel::{AddrList, Instr, KernelTrace, WarpTrace};
use crate::types::{Address, CtaId, Pc};

/// Serializes a kernel trace to the text format.
pub fn to_text(kernel: &KernelTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("kernel {}\n", kernel.name()));
    for warp in kernel.warps() {
        out.push_str(&format!("warp {}\n", warp.cta.0));
        for instr in &warp.instrs {
            match instr {
                Instr::Load { pc, addrs } => {
                    out.push_str(&format!("L {} {}\n", pc.0, fmt_addrs(addrs)));
                }
                Instr::Store { pc, addrs } => {
                    out.push_str(&format!("S {} {}\n", pc.0, fmt_addrs(addrs)));
                }
                Instr::Compute { cycles } => {
                    out.push_str(&format!("C {cycles}\n"));
                }
            }
        }
    }
    out
}

fn fmt_addrs(addrs: &AddrList) -> String {
    addrs
        .iter()
        .map(|a| format!("{:#x}", a.0))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a kernel trace from the text format.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line for any
/// syntax problem: unknown directives, instructions before the first
/// `warp`, malformed numbers, or an empty trace.
pub fn from_text(text: &str) -> Result<KernelTrace, ParseTraceError> {
    let mut name = "trace".to_owned();
    let mut warps: Vec<WarpTrace> = Vec::new();
    let mut current: Option<(CtaId, Vec<Instr>)> = None;

    let err = |line_no: usize, msg: &str| ParseTraceError {
        line: line_no + 1,
        message: msg.to_owned(),
    };

    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line");
        match op {
            "kernel" => {
                name = parts
                    .next()
                    .ok_or_else(|| err(line_no, "kernel needs a name"))?
                    .to_owned();
            }
            "warp" => {
                let cta: u32 = parse_num(
                    parts
                        .next()
                        .ok_or_else(|| err(line_no, "warp needs a CTA id"))?,
                )
                .ok_or_else(|| err(line_no, "bad CTA id"))?;
                if let Some((cta, instrs)) = current.take() {
                    warps.push(WarpTrace::new(cta, instrs));
                }
                current = Some((CtaId(cta), Vec::new()));
            }
            "L" | "S" => {
                let (_, instrs) = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "instruction before first warp"))?;
                let pc: u32 = parse_num(parts.next().ok_or_else(|| err(line_no, "missing pc"))?)
                    .ok_or_else(|| err(line_no, "bad pc"))?;
                let addr_field = parts
                    .next()
                    .ok_or_else(|| err(line_no, "missing address"))?;
                let addrs: Option<Vec<Address>> = addr_field
                    .split(',')
                    .map(|a| parse_num::<u64>(a).map(Address))
                    .collect();
                let addrs = AddrList::from_vec(addrs.ok_or_else(|| err(line_no, "bad address"))?);
                instrs.push(if op == "L" {
                    Instr::Load { pc: Pc(pc), addrs }
                } else {
                    Instr::Store { pc: Pc(pc), addrs }
                });
            }
            "C" => {
                let (_, instrs) = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "instruction before first warp"))?;
                let cycles: u32 = parse_num(
                    parts
                        .next()
                        .ok_or_else(|| err(line_no, "missing cycle count"))?,
                )
                .ok_or_else(|| err(line_no, "bad cycle count"))?;
                instrs.push(Instr::Compute { cycles });
            }
            other => return Err(err(line_no, &format!("unknown directive {other:?}"))),
        }
        if let Some(extra) = parts.next() {
            return Err(err(line_no, &format!("trailing token {extra:?}")));
        }
    }
    if let Some((cta, instrs)) = current.take() {
        warps.push(WarpTrace::new(cta, instrs));
    }
    if warps.is_empty() {
        return Err(ParseTraceError {
            line: 0,
            message: "trace has no warps".to_owned(),
        });
    }
    Ok(KernelTrace::new(name, warps))
}

fn parse_num<T: TryFrom<u64>>(s: &str) -> Option<T> {
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<u64>().ok()?
    };
    T::try_from(v).ok()
}

/// Error parsing a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid trace: {}", self.message)
        } else {
            write!(f, "invalid trace at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseTraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let warps = vec![
            WarpTrace::new(
                CtaId(0),
                vec![
                    Instr::load(10u32, 0x1000u64),
                    Instr::compute(4),
                    Instr::Load {
                        pc: Pc(12),
                        addrs: AddrList::from_vec(vec![Address(0x2000), Address(0x80)]),
                    },
                    Instr::store(14u32, 0x1000u64),
                ],
            ),
            WarpTrace::new(CtaId(1), vec![Instr::load(10u32, 0x9000u64)]),
        ];
        let k = KernelTrace::new("rt", warps);
        let parsed = from_text(&to_text(&k)).unwrap();
        assert_eq!(parsed, k);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header\nkernel k # trailing\nwarp 0\n  # indented comment\nL 1 128\n";
        let k = from_text(text).unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.total_loads(), 1);
    }

    #[test]
    fn decimal_and_hex_addresses_agree() {
        let a = from_text("kernel k\nwarp 0\nL 1 128\n").unwrap();
        let b = from_text("kernel k\nwarp 0\nL 1 0x80\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_name_the_line() {
        let e = from_text("kernel k\nwarp 0\nL 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));

        let e = from_text("kernel k\nL 1 0x80\n").unwrap_err();
        assert!(e.message.contains("before first warp"));

        let e = from_text("kernel k\nwarp 0\nX 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));

        let e = from_text("kernel k\n").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn trailing_tokens_rejected() {
        let e = from_text("kernel k\nwarp 0\nC 4 junk\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn parsed_trace_runs_in_the_simulator() {
        let text = "kernel io\nwarp 0\nL 1 0x0\nC 2\nL 2 0x1000\nwarp 0\nL 1 0x80\n";
        let k = from_text(text).unwrap();
        let out = crate::gpu::run_kernel(crate::config::GpuConfig::scaled(1), k, |_| {
            Box::new(crate::prefetch::NullPrefetcher)
        })
        .unwrap();
        assert_eq!(out.stats.demand_loads, 3);
    }
}

//! The streaming multiprocessor: warp slots, schedulers, the unified
//! L1, and the prefetcher hook.

use std::collections::VecDeque;

use crate::cache::unified_l1::{L1Mode, OutgoingRequest, PrefetchIssue, UnifiedL1};
use crate::config::GpuConfig;
use crate::json::Value;
use crate::kernel::{Instr, KernelTrace};
use crate::obs::{SimEvent, TraceEvent};
use crate::perfstat::{HostProfiler, Phase, Stopwatch};
use crate::prefetch::{
    AccessEvent, PrefetchContext, PrefetchPlacement, PrefetchRequest, Prefetcher, PrefetcherEvent,
};
use crate::scheduler::Scheduler;
use crate::snapshot::{self, SnapshotError};
use crate::stats::{AccessOutcome, ReservationFailReason, SimStats};
use crate::types::{CtaId, Cycle, SmId, WarpId};
use crate::warp::{WarpSlot, WarpState};
use crate::watchdog::{SmCensus, WarpBlock, WarpCensus};

/// A CTA waiting to be launched on this SM.
#[derive(Debug, Clone)]
pub(crate) struct PendingCta {
    pub cta: CtaId,
    /// Kernel trace indices of the CTA's warps.
    pub warps: Vec<usize>,
}

/// One streaming multiprocessor.
pub struct Sm {
    id: SmId,
    slots: Vec<Option<WarpSlot>>,
    schedulers: Vec<Scheduler>,
    l1: UnifiedL1,
    prefetcher: Box<dyn Prefetcher>,
    cta_queue: VecDeque<PendingCta>,
    launch_seq: u64,
    line_bytes: u32,
    hit_latency: u32,
    /// Per-SM statistic counters (NoC/L2 fields stay zero here).
    pub stats: SimStats,
    scratch: Vec<PrefetchRequest>,
    /// Maximum prefetch requests accepted from one access event.
    max_prefetches_per_event: usize,
    /// Stall-on-use: loads a warp may have in flight before blocking.
    max_outstanding_loads: u32,
    /// Pipeline events buffered while tracing is enabled; the GPU
    /// drains them each cycle. `None` (default) keeps the issue path
    /// branch-only.
    trace: Option<Vec<TraceEvent>>,
    /// Scratch buffer for prefetcher-reported chain-walk events.
    pf_events: Vec<PrefetcherEvent>,
    /// Host-time accumulator for the SM front-end
    /// ([`Phase::SmIssue`]) and the prefetcher hook
    /// ([`Phase::Prefetch`]). `None` (default) keeps every timed
    /// region to a single branch.
    prof: Option<HostProfiler>,
    /// Throttle state at the last tick (edge detection for
    /// [`SimEvent::ThrottleHalt`]/[`SimEvent::ThrottleResume`]).
    prev_throttled: bool,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("prefetcher", &self.prefetcher.name())
            .field("resident_warps", &self.slots.iter().flatten().count())
            .field("queued_ctas", &self.cta_queue.len())
            .finish()
    }
}

impl Sm {
    /// Builds an SM with the given prefetcher. The L1 placement mode is
    /// derived from the prefetcher's [`PrefetchPlacement`].
    pub fn new(cfg: &GpuConfig, id: SmId, prefetcher: Box<dyn Prefetcher>) -> Self {
        let mode = match prefetcher.placement() {
            PrefetchPlacement::Decoupled => L1Mode::Decoupled,
            PrefetchPlacement::PlainL1 => L1Mode::Plain,
            PrefetchPlacement::Isolated { lines } => L1Mode::Isolated { lines },
        };
        Sm {
            id,
            slots: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            schedulers: (0..cfg.schedulers_per_sm)
                .map(|_| Scheduler::new(cfg.scheduler))
                .collect(),
            l1: UnifiedL1::new(cfg, mode),
            prefetcher,
            cta_queue: VecDeque::new(),
            launch_seq: 0,
            line_bytes: cfg.l1.line_bytes,
            hit_latency: cfg.l1_hit_latency,
            stats: SimStats::default(),
            scratch: Vec::new(),
            max_prefetches_per_event: 16,
            max_outstanding_loads: cfg.max_outstanding_loads,
            trace: None,
            pf_events: Vec::new(),
            prof: None,
            prev_throttled: false,
        }
    }

    /// SM identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Starts buffering trace events for this SM, its L1/MSHR, and the
    /// prefetcher (chain-walk telemetry).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
        self.l1.enable_trace(self.id);
    }

    /// Moves buffered trace events into `out`: the SM's own pipeline
    /// events first, then the L1's (which include the MSHR's).
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some(buf) = self.trace.as_mut() {
            out.append(buf);
        }
        self.l1.drain_trace(out);
    }

    fn emit(&mut self, cycle: Cycle, data: SimEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(TraceEvent { cycle, data });
        }
    }

    /// Starts accumulating host-time for this SM's phases and its
    /// L1's (see [`perfstat`](crate::perfstat)).
    pub fn enable_profiling(&mut self) {
        self.prof = Some(HostProfiler::new());
        self.l1.enable_profiling();
    }

    /// Folds this SM's host-time accumulator (and its L1's) into
    /// `into` (end of run).
    pub fn merge_profile(&mut self, into: &mut HostProfiler) {
        if let Some(prof) = self.prof.take() {
            into.merge(&prof);
        }
        self.l1.merge_profile(into);
    }

    /// Number of resident warps (windowed-metrics input).
    pub fn active_warps(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether the prefetcher reported throttling at the last tick.
    pub fn is_throttled(&self) -> bool {
        self.prev_throttled
    }

    /// The prefetcher's current chain-walk depth budget (0 for
    /// mechanisms without chains).
    pub fn chain_depth(&self) -> u32 {
        self.prefetcher.chain_depth()
    }

    /// Queues a CTA for execution on this SM.
    pub(crate) fn enqueue_cta(&mut self, cta: PendingCta) {
        self.cta_queue.push_back(cta);
    }

    /// Gives the prefetcher its pre-kernel look at the trace.
    pub fn kernel_launch(&mut self, kernel: &KernelTrace) {
        self.prefetcher.on_kernel_launch(kernel);
    }

    /// Whether all queued and resident work has finished and the L1
    /// has drained (no queued requests, no outstanding misses).
    pub fn is_done(&self) -> bool {
        self.cta_queue.is_empty()
            && self.slots.iter().all(|s| s.is_none())
            && self.l1.peek_outgoing().is_none()
            && self.l1.outstanding_misses() == 0
    }

    /// Immutable view of the L1 (diagnostics and tests).
    pub fn l1(&self) -> &UnifiedL1 {
        &self.l1
    }

    /// The prefetcher's report name.
    pub fn prefetcher_name(&self) -> &str {
        self.prefetcher.name()
    }

    fn try_launch_ctas(&mut self) {
        loop {
            let Some(front) = self.cta_queue.front() else {
                return;
            };
            let free: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_none())
                .map(|(i, _)| i)
                .collect();
            if free.len() < front.warps.len() {
                return;
            }
            let cta = self.cta_queue.pop_front().expect("front checked");
            for (slot_idx, trace_idx) in free.into_iter().zip(cta.warps.iter().copied()) {
                self.slots[slot_idx] = Some(WarpSlot::new(cta.cta, trace_idx, self.launch_seq));
                self.launch_seq += 1;
            }
        }
    }

    /// Advances the SM by one cycle: launch CTAs, refresh warps, issue
    /// from each scheduler, account stalls, sync prefetcher state.
    ///
    /// `noc_backpressured` reports whether the interconnect refused
    /// injections *last* cycle (the SMs tick before this cycle's
    /// injection loop) — it reattributes `MissQueueFull` rejections to
    /// the NoC when the queue is full because the network will not
    /// drain it.
    pub fn tick(
        &mut self,
        kernel: &KernelTrace,
        now: Cycle,
        noc_utilization: f64,
        noc_backpressured: bool,
    ) {
        // Phase attribution: the front-end regions below (CTA launch,
        // warp refresh, scheduler picks) are timed as `SmIssue`; the
        // L1 and prefetcher calls nested in `issue()` time themselves
        // (`L1Lookup`/`Mshr`/`Prefetch`), so phases stay disjoint.
        let sw = Stopwatch::start(self.prof.is_some());
        self.try_launch_ctas();
        sw.stop(&mut self.prof, Phase::SmIssue);
        self.l1.tick_recovery(now);
        let sw = Stopwatch::start(self.prof.is_some());
        for slot in self.slots.iter_mut().flatten() {
            slot.refresh(now);
        }
        sw.stop(&mut self.prof, Phase::SmIssue);

        let n_sched = self.schedulers.len();
        let mut issued = 0u32;
        for sid in 0..n_sched {
            let mut sched = std::mem::take(&mut self.schedulers[sid]);
            let sw = Stopwatch::start(self.prof.is_some());
            let picked = sched.pick(&self.slots, sid, n_sched);
            sw.stop(&mut self.prof, Phase::SmIssue);
            // Exactly one stall-taxonomy bucket is charged per
            // scheduler per cycle, so the buckets partition
            // `scheduler_cycles` exactly (audit-enforced).
            if let Some(slot_idx) = picked {
                let retrying = self.slots[slot_idx]
                    .as_ref()
                    .is_some_and(|s| !s.pending.is_empty());
                self.l1.clear_last_fail();
                let did_issue = self.issue(slot_idx, kernel, now, noc_utilization);
                if self.slots[slot_idx].is_none() {
                    sched.invalidate(slot_idx);
                }
                if did_issue {
                    issued += 1;
                    self.stats.stall.issued += 1;
                } else if self.slots[slot_idx].is_none() {
                    // Trace exhausted: the warp retired, nothing to run.
                    self.stats.stall.no_warp += 1;
                } else if retrying {
                    // A reservation-failed memory instruction retried.
                    // The L1 latched which resource rejected it; a clean
                    // drain (no new fail) is an ordinary stall-on-use.
                    match self.l1.last_fail() {
                        Some(
                            ReservationFailReason::MshrFull | ReservationFailReason::NoEvictableWay,
                        ) => self.stats.stall.mem_struct_mshr += 1,
                        Some(ReservationFailReason::MissQueueFull) => {
                            if noc_backpressured {
                                self.stats.stall.mem_struct_noc += 1;
                            } else {
                                self.stats.stall.mem_struct_missq += 1;
                            }
                        }
                        None => self.stats.stall.mem_data += 1,
                    }
                } else {
                    // issue() only declines on retry or retire today;
                    // keep the partition exact if that ever changes.
                    self.stats.stall.scoreboard += 1;
                }
            } else {
                // Nothing issuable in this scheduler's slot partition:
                // attribute the idle slot to what its warps are doing.
                let (mut live, mut mem, mut barrier) = (false, false, false);
                for slot in (sid..self.slots.len())
                    .step_by(n_sched)
                    .filter_map(|i| self.slots[i].as_ref())
                {
                    live = true;
                    if slot.memory_stalled() {
                        // `mem` outranks the remaining buckets, so the
                        // rest of the partition cannot change the verdict.
                        mem = true;
                        break;
                    } else if slot.busy_mem {
                        barrier = true;
                    }
                }
                let bucket = if !live {
                    &mut self.stats.stall.no_warp
                } else if mem {
                    &mut self.stats.stall.mem_data
                } else if barrier {
                    &mut self.stats.stall.barrier
                } else {
                    &mut self.stats.stall.scoreboard
                };
                *bucket += 1;
            }
            self.schedulers[sid] = sched;
        }
        self.stats.stall.scheduler_cycles += n_sched as u64;

        // Stall taxonomy (Fig 5).
        let live: Vec<&WarpSlot> = self.slots.iter().flatten().collect();
        if !live.is_empty() && issued == 0 {
            self.stats.all_stall_cycles += 1;
            if live.iter().all(|w| w.memory_stalled()) {
                self.stats.all_stall_mem_cycles += 1;
            }
        }
        self.stats.cycles = now.0 + 1;

        // Prefetcher/L1 policy sync (charged to the prefetch phase:
        // it is the mechanism's throttle/training state being read).
        let sw = Stopwatch::start(self.prof.is_some());
        self.l1.set_trained(self.prefetcher.trained());
        let throttled = self.prefetcher.throttled(now);
        if throttled != self.prev_throttled {
            self.prev_throttled = throttled;
            let data = if throttled {
                SimEvent::ThrottleHalt {
                    sm: self.id,
                    bw_utilization: noc_utilization,
                }
            } else {
                SimEvent::ThrottleResume {
                    sm: self.id,
                    bw_utilization: noc_utilization,
                }
            };
            self.emit(now, data);
        }
        if throttled {
            self.l1.confine_until(now.plus(1));
            self.stats.prefetch.throttled_cycles += 1;
        }
        sw.stop(&mut self.prof, Phase::Prefetch);
    }

    /// Issues from `slot_idx`. Returns `true` if a *new* instruction
    /// was issued (retries of reservation-failed transactions return
    /// `false`).
    fn issue(
        &mut self,
        slot_idx: usize,
        kernel: &KernelTrace,
        now: Cycle,
        noc_utilization: f64,
    ) -> bool {
        let mut slot = self.slots[slot_idx]
            .take()
            .expect("scheduler picked a live slot");

        if !slot.pending.is_empty() {
            let next_is_load = matches!(
                kernel.warps()[slot.trace_idx].instrs.get(slot.next),
                Some(Instr::Load { .. })
            );
            self.process_txns(&mut slot, slot_idx, now, noc_utilization, next_is_load);
            self.slots[slot_idx] = Some(slot);
            return false;
        }

        let trace = &kernel.warps()[slot.trace_idx];
        match trace.instrs.get(slot.next) {
            None => {
                // Trace exhausted: retire the warp and free the slot.
                return false;
            }
            Some(Instr::Compute { cycles }) => {
                slot.next += 1;
                slot.state = WarpState::Busy(now.plus(u64::from(*cycles).max(1)));
                slot.busy_mem = false;
                self.stats.instructions += 1;
                self.emit(
                    now,
                    SimEvent::WarpIssue {
                        sm: self.id,
                        warp: WarpId(slot_idx as u32),
                    },
                );
            }
            Some(Instr::Load { pc, addrs }) => {
                slot.next += 1;
                slot.cur_pc = *pc;
                slot.cur_is_load = true;
                slot.cur_coalesced = addrs.len() == 1;
                slot.pending = addrs.iter().collect();
                self.stats.instructions += 1;
                self.emit(
                    now,
                    SimEvent::WarpIssue {
                        sm: self.id,
                        warp: WarpId(slot_idx as u32),
                    },
                );
                let next_is_load = matches!(trace.instrs.get(slot.next), Some(Instr::Load { .. }));
                self.process_txns(&mut slot, slot_idx, now, noc_utilization, next_is_load);
            }
            Some(Instr::Store { pc, addrs }) => {
                slot.next += 1;
                slot.cur_pc = *pc;
                slot.cur_is_load = false;
                slot.cur_coalesced = addrs.len() == 1;
                slot.pending = addrs.iter().collect();
                self.stats.instructions += 1;
                self.emit(
                    now,
                    SimEvent::WarpIssue {
                        sm: self.id,
                        warp: WarpId(slot_idx as u32),
                    },
                );
                self.process_txns(&mut slot, slot_idx, now, noc_utilization, false);
            }
        }
        self.slots[slot_idx] = Some(slot);
        true
    }

    /// Sends the warp's pending transactions to the L1, stopping at the
    /// first reservation fail (in-order LSU).
    fn process_txns(
        &mut self,
        slot: &mut WarpSlot,
        slot_idx: usize,
        now: Cycle,
        noc_utilization: f64,
        next_is_load: bool,
    ) {
        while let Some(&addr) = slot.pending.first() {
            let line = addr.line(self.line_bytes);
            if slot.cur_is_load {
                let outcome = self.l1.access_demand(line, WarpId(slot_idx as u32), now);
                if outcome == AccessOutcome::ReservationFail {
                    break;
                }
                slot.pending.remove(0);
                self.stats.demand_loads += 1;
                if matches!(outcome, AccessOutcome::Miss | AccessOutcome::HitReserved) {
                    slot.outstanding += 1;
                }
                if slot.cur_coalesced {
                    let event = AccessEvent {
                        sm: self.id,
                        warp: WarpId(slot_idx as u32),
                        cta: slot.cta,
                        pc: slot.cur_pc,
                        addr,
                        outcome,
                        cycle: now,
                    };
                    self.run_prefetcher(&event, now, noc_utilization);
                }
            } else {
                if !self.l1.access_store(line, now) {
                    break;
                }
                slot.pending.remove(0);
                self.stats.stores += 1;
            }
        }
        if slot.pending.is_empty() {
            if slot.cur_is_load {
                if next_is_load && slot.outstanding < self.max_outstanding_loads {
                    // Stall-on-use: keep issuing back-to-back loads;
                    // the next non-load instruction is the use barrier.
                    slot.state = WarpState::Ready;
                } else {
                    slot.settle_mem_instr(now, self.hit_latency);
                    if slot.state == WarpState::Waiting {
                        self.emit(
                            now,
                            SimEvent::WarpStall {
                                sm: self.id,
                                warp: WarpId(slot_idx as u32),
                            },
                        );
                    }
                }
            } else {
                slot.state = WarpState::Busy(now.plus(1));
                slot.busy_mem = true;
            }
        }
        // else: stay Ready; the scheduler retries next cycle.
    }

    fn run_prefetcher(&mut self, event: &AccessEvent, now: Cycle, noc_utilization: f64) {
        let sw = Stopwatch::start(self.prof.is_some());
        let ctx = PrefetchContext {
            cycle: now,
            bw_utilization: noc_utilization,
            free_lines: self.l1.free_lines(),
            total_lines: self.l1.total_lines(),
            prefetch_overrun: self.l1.take_overrun(),
            telemetry: self.trace.is_some(),
        };
        self.scratch.clear();
        self.prefetcher
            .on_demand_access(event, &ctx, &mut self.scratch);
        if self.trace.is_some() {
            self.pf_events.clear();
            self.prefetcher.drain_events(&mut self.pf_events);
            for i in 0..self.pf_events.len() {
                let data = match self.pf_events[i] {
                    PrefetcherEvent::ChainWalkStart { warp, pc } => SimEvent::ChainWalkStart {
                        sm: self.id,
                        warp,
                        pc,
                    },
                    PrefetcherEvent::ChainWalkStep { depth, addr } => SimEvent::ChainWalkStep {
                        sm: self.id,
                        depth,
                        addr,
                    },
                    PrefetcherEvent::ChainWalkStop { steps, reason } => SimEvent::ChainWalkStop {
                        sm: self.id,
                        steps,
                        reason,
                    },
                };
                self.emit(now, data);
            }
        }
        // Stop before the issue loop: `request_prefetch` times itself
        // under `L1Lookup`.
        sw.stop(&mut self.prof, Phase::Prefetch);
        self.scratch.truncate(self.max_prefetches_per_event);
        self.stats.prefetch.requested += self.scratch.len() as u64;
        for i in 0..self.scratch.len() {
            let line = self.scratch[i].addr.line(self.line_bytes);
            match self.l1.request_prefetch(line, now) {
                PrefetchIssue::Issued => self.stats.prefetch.issued += 1,
                PrefetchIssue::Redundant => self.stats.prefetch.redundant += 1,
                PrefetchIssue::Rejected => self.stats.prefetch.rejected += 1,
            }
        }
    }

    /// Drains one outgoing L1 request, if any (called by the GPU's
    /// interconnect injection loop).
    pub fn pop_outgoing(&mut self) -> Option<OutgoingRequest> {
        self.l1.pop_outgoing()
    }

    /// Whether the L1 has requests waiting for the interconnect.
    pub fn has_outgoing(&self) -> bool {
        self.l1.peek_outgoing().is_some()
    }

    /// Delivers a fill from the interconnect; wakes waiting warps and
    /// retires finished ones.
    pub fn deliver_fill(&mut self, line: crate::types::LineAddr, now: Cycle) {
        let waiters = self.l1.fill(line, now);
        for wid in waiters {
            let unstalled = self
                .slots
                .get_mut(wid.index())
                .and_then(|s| s.as_mut())
                .is_some_and(WarpSlot::complete_response);
            if unstalled {
                self.emit(
                    now,
                    SimEvent::WarpUnstall {
                        sm: self.id,
                        warp: wid,
                    },
                );
            }
        }
    }

    /// Folds the L1's counters into this SM's [`SimStats`] (called once
    /// at the end of simulation).
    pub fn finalize_stats(&mut self) {
        self.stats.l1 = self.l1.stats;
        let pf = &mut self.stats.prefetch;
        let l1pf = &self.l1.pf_stats;
        pf.fills = l1pf.fills;
        pf.useful = l1pf.useful;
        pf.late = l1pf.late;
        pf.evicted_unused = l1pf.evicted_unused;
        self.stats.fault.reissued_requests = self.l1.fault_stats.reissued_requests;
        self.stats.fault.spurious_fills = self.l1.fault_stats.spurious_fills;
    }

    /// Count of instructions issued so far (watchdog progress signal).
    pub fn instructions_issued(&self) -> u64 {
        self.stats.instructions
    }

    /// Whether any resident warp is absorbing a fixed latency that ends
    /// after `now` — guaranteed future progress the watchdog must not
    /// mistake for a wedge.
    pub fn has_busy_warp(&self, now: Cycle) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|s| matches!(s.state, WarpState::Busy(until) if until > now))
    }

    /// Snapshot of this SM's blocked state for a
    /// [`DeadlockReport`](crate::DeadlockReport).
    pub fn census(&self) -> SmCensus {
        let warps = self
            .slots
            .iter()
            .flatten()
            .map(|s| WarpCensus {
                cta: s.cta,
                trace_idx: s.trace_idx,
                next: s.next,
                block: match s.state {
                    WarpState::Ready => WarpBlock::Ready,
                    WarpState::Busy(until) => WarpBlock::Busy(until),
                    WarpState::Waiting => WarpBlock::Waiting,
                },
                outstanding: s.outstanding,
                pending_txns: s.pending.len(),
            })
            .collect();
        SmCensus {
            sm: self.id,
            mshr_entries: self.l1.outstanding_misses(),
            mshr_capacity: self.l1.mshr_capacity(),
            reserved_lines: self.l1.reserved_lines(),
            miss_queue: self.l1.miss_queue_len(),
            queued_ctas: self.cta_queue.len(),
            warps,
        }
    }

    /// Serializes the complete SM state for a checkpoint: every warp
    /// slot, scheduler cursors, the unified L1, the prefetcher's own
    /// state, the CTA launch queue, and counters. Config-derived
    /// fields (latencies, capacities) are not captured; trace and
    /// profiling attachments are runtime-only (event buffers are
    /// drained every cycle, so they are empty at a checkpoint
    /// boundary), and `scratch`/`pf_events` never hold data across
    /// cycles.
    pub fn save_state(&self) -> Value {
        let slots = self
            .slots
            .iter()
            .map(|s| match s {
                Some(slot) => slot.save_state(),
                None => Value::Null,
            })
            .collect();
        let cta_queue = self
            .cta_queue
            .iter()
            .map(|c| {
                Value::Arr(vec![
                    Value::u64(u64::from(c.cta.0)),
                    Value::Arr(c.warps.iter().map(|&w| Value::u64(w as u64)).collect()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("slots".into(), Value::Arr(slots)),
            (
                "schedulers".into(),
                Value::Arr(self.schedulers.iter().map(Scheduler::save_state).collect()),
            ),
            ("l1".into(), self.l1.save_state()),
            ("prefetcher".into(), self.prefetcher.save_state()),
            ("cta_queue".into(), Value::Arr(cta_queue)),
            ("launch_seq".into(), Value::u64(self.launch_seq)),
            ("stats".into(), self.stats.save_state()),
            ("prev_throttled".into(), Value::Bool(self.prev_throttled)),
        ])
    }

    /// Restores from [`save_state`](Sm::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field,
    /// or when the slot/scheduler counts do not match this SM's
    /// configuration (the checkpoint belongs to a different config).
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let slot_entries = snapshot::arr_field(v, "slots")?;
        if slot_entries.len() != self.slots.len() {
            return Err(SnapshotError::malformed(format!(
                "checkpoint has {} warp slots, SM has {}",
                slot_entries.len(),
                self.slots.len()
            )));
        }
        let mut slots = Vec::with_capacity(slot_entries.len());
        for entry in slot_entries {
            slots.push(match entry {
                Value::Null => None,
                other => Some(WarpSlot::from_state(other)?),
            });
        }
        let sched_entries = snapshot::arr_field(v, "schedulers")?;
        if sched_entries.len() != self.schedulers.len() {
            return Err(SnapshotError::malformed(format!(
                "checkpoint has {} schedulers, SM has {}",
                sched_entries.len(),
                self.schedulers.len()
            )));
        }
        let mut cta_queue = VecDeque::new();
        for entry in snapshot::arr_field(v, "cta_queue")? {
            let pending = entry
                .as_arr()
                .and_then(|row| {
                    if let [cta, warps] = row {
                        let warps = warps
                            .as_arr()?
                            .iter()
                            .map(|w| w.as_u64().map(|w| w as usize))
                            .collect::<Option<Vec<_>>>()?;
                        Some(PendingCta {
                            cta: CtaId(cta.as_u32()?),
                            warps,
                        })
                    } else {
                        None
                    }
                })
                .ok_or_else(|| SnapshotError::malformed("SM cta_queue entry"))?;
            cta_queue.push_back(pending);
        }
        for (sched, entry) in self.schedulers.iter_mut().zip(sched_entries) {
            sched.restore_state(entry)?;
        }
        self.l1.restore_state(snapshot::field(v, "l1")?)?;
        self.prefetcher
            .restore_state(snapshot::field(v, "prefetcher")?)?;
        self.stats.restore_state(snapshot::field(v, "stats")?)?;
        self.slots = slots;
        self.cta_queue = cta_queue;
        self.launch_seq = snapshot::u64_field(v, "launch_seq")?;
        self.prev_throttled = snapshot::bool_field(v, "prev_throttled")?;
        Ok(())
    }

    /// Frees retired warps (trace exhausted, nothing outstanding).
    /// Called each cycle by the GPU after fills are delivered.
    pub fn retire_finished(&mut self, kernel: &KernelTrace) {
        for slot_opt in &mut self.slots {
            let retire = match slot_opt {
                Some(s) => {
                    s.next >= kernel.warps()[s.trace_idx].instrs.len()
                        && s.pending.is_empty()
                        && s.outstanding == 0
                        && s.state == WarpState::Ready
                }
                None => false,
            };
            if retire {
                *slot_opt = None;
            }
        }
    }
}

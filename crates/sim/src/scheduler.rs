//! Warp schedulers.
//!
//! Each SM has `schedulers_per_sm` schedulers; resident warp slots are
//! statically partitioned among them by `slot % schedulers` (as on real
//! NVIDIA SMs). The paper's baseline is Greedy-Then-Oldest (GTO) —
//! notably, GTO's greediness is why Snake's Head table doubles its
//! warp-id/base-address columns (§3.1, §5.5).

use crate::config::SchedulerPolicy;
use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::warp::WarpSlot;

/// Per-scheduler pick state.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    policy: SchedulerPolicy,
    /// GTO: the warp currently issued greedily. LRR: last issued warp.
    current: Option<usize>,
}

impl Scheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Scheduler {
            policy,
            current: None,
        }
    }

    /// Picks a slot index to issue from among `slots` (the SM's full
    /// slot array; `None` entries are free slots). Only slots with
    /// `slot_idx % stride == offset` belong to this scheduler.
    pub fn pick(
        &mut self,
        slots: &[Option<WarpSlot>],
        offset: usize,
        stride: usize,
    ) -> Option<usize> {
        let issuable = |i: usize| {
            slots
                .get(i)
                .and_then(|s| s.as_ref())
                .is_some_and(|w| w.issuable())
        };
        match self.policy {
            SchedulerPolicy::GreedyThenOldest => {
                if let Some(cur) = self.current {
                    if cur % stride == offset && issuable(cur) {
                        return Some(cur);
                    }
                }
                // Oldest = smallest launch sequence number.
                let pick = (offset..slots.len())
                    .step_by(stride)
                    .filter(|&i| issuable(i))
                    .min_by_key(|&i| slots[i].as_ref().expect("issuable").launch_seq);
                self.current = pick;
                pick
            }
            SchedulerPolicy::LooseRoundRobin => {
                let n = slots.len();
                if n == 0 {
                    return None;
                }
                let start = self.current.map_or(offset, |c| c + stride);
                // Walk this scheduler's slots once, wrapping.
                let mine: Vec<usize> = (offset..n).step_by(stride).collect();
                if mine.is_empty() {
                    return None;
                }
                let begin = mine
                    .iter()
                    .position(|&i| i >= start % n.max(1))
                    .unwrap_or(0);
                let pick = mine[begin..]
                    .iter()
                    .chain(mine[..begin].iter())
                    .copied()
                    .find(|&i| issuable(i));
                if pick.is_some() {
                    self.current = pick;
                }
                pick
            }
        }
    }

    /// Forgets the greedy warp (e.g. when its slot is recycled).
    pub fn invalidate(&mut self, slot: usize) {
        if self.current == Some(slot) {
            self.current = None;
        }
    }

    /// Serializes the pick state for a checkpoint (the policy is
    /// config-derived and not captured).
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![(
            "current".into(),
            snapshot::opt_u64_value(self.current.map(|c| c as u64)),
        )])
    }

    /// Restores the pick state from [`save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or mistyped field.
    ///
    /// [`save_state`]: Scheduler::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.current = snapshot::opt_u64_field(v, "current")?.map(|c| c as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CtaId;
    use crate::warp::WarpState;

    fn slot(seq: u64, ready: bool) -> Option<WarpSlot> {
        let mut w = WarpSlot::new(CtaId(0), 0, seq);
        if !ready {
            w.state = WarpState::Waiting;
        }
        Some(w)
    }

    #[test]
    fn gto_sticks_to_current_warp() {
        let mut s = Scheduler::new(SchedulerPolicy::GreedyThenOldest);
        let slots = vec![slot(5, true), slot(1, true), slot(2, true)];
        // First pick: oldest (seq 1) = slot 1.
        assert_eq!(s.pick(&slots, 0, 1), Some(1));
        // Stays greedy on slot 1 even though slot 2 is also ready.
        assert_eq!(s.pick(&slots, 0, 1), Some(1));
    }

    #[test]
    fn gto_falls_back_to_oldest_when_current_stalls() {
        let mut s = Scheduler::new(SchedulerPolicy::GreedyThenOldest);
        let mut slots = vec![slot(5, true), slot(1, true), slot(2, true)];
        assert_eq!(s.pick(&slots, 0, 1), Some(1));
        slots[1].as_mut().unwrap().state = WarpState::Waiting;
        // Oldest ready is seq 2 = slot 2.
        assert_eq!(s.pick(&slots, 0, 1), Some(2));
    }

    #[test]
    fn gto_respects_scheduler_partition() {
        let mut s = Scheduler::new(SchedulerPolicy::GreedyThenOldest);
        let slots = vec![slot(0, true), slot(1, true), slot(2, true), slot(3, true)];
        // Scheduler 1 of 2 only sees odd slots.
        assert_eq!(s.pick(&slots, 1, 2), Some(1));
    }

    #[test]
    fn gto_returns_none_when_nothing_ready() {
        let mut s = Scheduler::new(SchedulerPolicy::GreedyThenOldest);
        let slots = vec![slot(0, false), None];
        assert_eq!(s.pick(&slots, 0, 1), None);
    }

    #[test]
    fn lrr_rotates() {
        let mut s = Scheduler::new(SchedulerPolicy::LooseRoundRobin);
        let slots = vec![slot(0, true), slot(1, true), slot(2, true)];
        let a = s.pick(&slots, 0, 1).unwrap();
        let b = s.pick(&slots, 0, 1).unwrap();
        let c = s.pick(&slots, 0, 1).unwrap();
        let mut seen = vec![a, b, c];
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "all warps get a turn");
    }

    #[test]
    fn invalidate_clears_greedy_warp() {
        let mut s = Scheduler::new(SchedulerPolicy::GreedyThenOldest);
        let slots = vec![slot(0, true), slot(1, true)];
        let first = s.pick(&slots, 0, 1).unwrap();
        s.invalidate(first);
        assert_eq!(s.current, None);
    }
}

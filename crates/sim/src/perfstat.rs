//! Host-side performance observatory: where does *wall-clock* time go
//! while the simulator runs?
//!
//! PR 2's `obs` layer made the simulated GPU observable; this module
//! makes the simulator itself observable. Each component that does
//! per-cycle work (SM front-end, unified L1, MSHR, prefetcher hook,
//! interconnect, memory partition, trace flushing) owns an
//! `Option<HostProfiler>` and wraps its entry points in a
//! [`Stopwatch`] — the same Option-gated pattern as
//! [`TraceSink`](crate::obs::TraceSink), so the disabled path costs a
//! single branch and no clock reads. The GPU merges every component's
//! accumulator at the end of [`run`](crate::Gpu::run) into one
//! [`HostProfile`] carried on [`SimOutcome`](crate::SimOutcome).
//!
//! Phases are **disjoint leaf measurements**: a component times only
//! its own entry points, never a region that contains another
//! component's timed call, so phase times never double-count and sum
//! to at most the wall time. Whatever falls between timed regions
//! (loop glue, retirement, watchdog checks) is reported as
//! [`HostProfile::unaccounted_nanos`].
//!
//! Profiling is enabled with [`GpuConfig::host_profile`]; it never
//! changes simulated behavior, only measures the host cost of it.
//!
//! [`GpuConfig::host_profile`]: crate::GpuConfig::host_profile

use std::time::Instant;

/// A host-time phase of the per-cycle tick loop.
///
/// The taxonomy maps one-to-one onto the simulator's components (see
/// the module docs for which entry points feed each phase). Every
/// phase is always present in a [`HostProfile`], zeroed when it never
/// ran, so downstream serializers can rely on a fixed row set.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// SM front-end: CTA launch, warp refresh, scheduler picks.
    SmIssue,
    /// Unified-L1 lookups: demand loads, stores, prefetch issue.
    L1Lookup,
    /// MSHR completion work: fills and timeout-recovery scans.
    Mshr,
    /// Prefetcher training and candidate generation
    /// (`on_demand_access` plus telemetry drain).
    Prefetch,
    /// Interconnect: credit refill, packet injection, arrivals.
    Noc,
    /// Memory partition: L2 banks, DRAM pipes, request/response queues.
    MemPartition,
    /// Observability itself: per-cycle trace drain/forward and
    /// windowed-metrics sampling.
    Observability,
}

impl Phase {
    /// Every phase, in fixed report order.
    pub const ALL: [Phase; 7] = [
        Phase::SmIssue,
        Phase::L1Lookup,
        Phase::Mshr,
        Phase::Prefetch,
        Phase::Noc,
        Phase::MemPartition,
        Phase::Observability,
    ];

    /// Stable lower-case label used in `BENCH_*.json` and tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::SmIssue => "sm_issue",
            Phase::L1Lookup => "l1_lookup",
            Phase::Mshr => "mshr",
            Phase::Prefetch => "prefetch",
            Phase::Noc => "noc",
            Phase::MemPartition => "mem_partition",
            Phase::Observability => "observability",
        }
    }

    /// Parses a [`Phase::label`] back to the phase.
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }

    fn index(self) -> usize {
        match self {
            Phase::SmIssue => 0,
            Phase::L1Lookup => 1,
            Phase::Mshr => 2,
            Phase::Prefetch => 3,
            Phase::Noc => 4,
            Phase::MemPartition => 5,
            Phase::Observability => 6,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated wall-time and call count for one phase.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total nanoseconds spent inside the phase's timed regions.
    pub nanos: u64,
    /// Number of timed regions that contributed.
    pub calls: u64,
}

impl PhaseStat {
    /// Mean nanoseconds per call (0 when the phase never ran).
    pub fn nanos_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.nanos as f64 / self.calls as f64
        }
    }
}

/// A component-owned phase-time accumulator.
///
/// Components hold `Option<HostProfiler>` (`None` = profiling off) and
/// the GPU merges them all at the end of a run. The accumulator is a
/// flat array indexed by [`Phase`], so `add` is two integer adds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostProfiler {
    stats: [PhaseStat; Phase::ALL.len()],
}

impl HostProfiler {
    /// An empty accumulator.
    pub fn new() -> Self {
        HostProfiler::default()
    }

    /// Records one timed region of `nanos` under `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        let s = &mut self.stats[phase.index()];
        s.nanos += nanos;
        s.calls += 1;
    }

    /// Accumulated stat for one phase.
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.stats[phase.index()]
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &HostProfiler) {
        for (into, from) in self.stats.iter_mut().zip(other.stats.iter()) {
            into.nanos += from.nanos;
            into.calls += from.calls;
        }
    }

    /// Seals the accumulator into a [`HostProfile`] with run-level
    /// context (total wall time, simulated cycles, trace events).
    pub fn finish(self, wall_nanos: u64, cycles: u64, trace_events: u64) -> HostProfile {
        HostProfile {
            wall_nanos,
            cycles,
            trace_events,
            phases: self.stats,
        }
    }
}

/// A scoped wall-clock timer for one phase region.
///
/// `start(false)` reads no clock at all; `stop` against a `None`
/// profiler is a no-op — so a disabled profiler costs one branch per
/// region, matching the `obs` layer's zero-cost-when-off contract.
///
/// # Examples
///
/// ```
/// use snake_sim::perfstat::{HostProfiler, Phase, Stopwatch};
///
/// let mut prof = Some(HostProfiler::new());
/// let sw = Stopwatch::start(prof.is_some());
/// // ... the timed region ...
/// sw.stop(&mut prof, Phase::Noc);
/// assert_eq!(prof.unwrap().get(Phase::Noc).calls, 1);
/// ```
#[derive(Debug)]
#[must_use = "a started stopwatch must be stopped into a profiler"]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing when `enabled`, otherwise returns an inert watch.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        Stopwatch(if enabled { Some(Instant::now()) } else { None })
    }

    /// Stops the watch and charges the elapsed time to `phase`.
    #[inline]
    pub fn stop(self, prof: &mut Option<HostProfiler>, phase: Phase) {
        if let (Some(t0), Some(p)) = (self.0, prof.as_mut()) {
            p.add(phase, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Where the host's wall-clock time went during one simulation run.
///
/// Carried on [`SimOutcome::host`](crate::SimOutcome::host) when
/// [`GpuConfig::host_profile`](crate::GpuConfig::host_profile) is set.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostProfile {
    /// Total wall time of [`Gpu::run`](crate::Gpu::run), nanoseconds.
    pub wall_nanos: u64,
    /// Simulated cycles covered by the run.
    pub cycles: u64,
    /// Trace events flushed to an attached sink (0 without a sink).
    pub trace_events: u64,
    /// Per-phase accumulators, indexed in [`Phase::ALL`] order.
    phases: [PhaseStat; Phase::ALL.len()],
}

impl HostProfile {
    /// Accumulated stat for one phase.
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.phases[phase.index()]
    }

    /// Iterates phases with their stats, in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseStat)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self.get(p)))
    }

    /// Sum of all phase times, nanoseconds.
    pub fn phase_nanos_total(&self) -> u64 {
        self.phases.iter().map(|s| s.nanos).sum()
    }

    /// Wall time not attributed to any phase (loop glue, retirement,
    /// watchdog checks). Saturates at zero: per-region clock reads can
    /// in principle over-measure very short regions.
    pub fn unaccounted_nanos(&self) -> u64 {
        self.wall_nanos.saturating_sub(self.phase_nanos_total())
    }

    /// Simulated cycles per wall-clock second (0 for a zero-length run).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Trace events flushed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.trace_events as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Builds a profile directly from per-phase stats (exporters and
    /// tests; simulation code goes through [`HostProfiler::finish`]).
    pub fn from_parts(
        wall_nanos: u64,
        cycles: u64,
        trace_events: u64,
        stats: impl IntoIterator<Item = (Phase, PhaseStat)>,
    ) -> Self {
        let mut phases = [PhaseStat::default(); Phase::ALL.len()];
        for (p, s) in stats {
            phases[p.index()] = s;
        }
        HostProfile {
            wall_nanos,
            cycles,
            trace_events,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_and_cover_all() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(Phase::from_label("bogus"), None);
        // Index must be a bijection onto 0..len.
        let mut seen = [false; Phase::ALL.len()];
        for p in Phase::ALL {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
    }

    #[test]
    fn profiler_accumulates_and_merges() {
        let mut a = HostProfiler::new();
        a.add(Phase::Noc, 100);
        a.add(Phase::Noc, 50);
        a.add(Phase::Mshr, 7);
        let mut b = HostProfiler::new();
        b.add(Phase::Noc, 1);
        a.merge(&b);
        assert_eq!(
            a.get(Phase::Noc),
            PhaseStat {
                nanos: 151,
                calls: 3
            }
        );
        assert_eq!(a.get(Phase::Mshr), PhaseStat { nanos: 7, calls: 1 });
        assert_eq!(a.get(Phase::SmIssue), PhaseStat::default());
    }

    #[test]
    fn disabled_stopwatch_records_nothing() {
        let mut prof = Some(HostProfiler::new());
        Stopwatch::start(false).stop(&mut prof, Phase::L1Lookup);
        assert_eq!(prof.unwrap().get(Phase::L1Lookup).calls, 0);
        let mut off: Option<HostProfiler> = None;
        Stopwatch::start(true).stop(&mut off, Phase::L1Lookup);
        assert!(off.is_none());
    }

    #[test]
    fn enabled_stopwatch_charges_the_phase() {
        let mut prof = Some(HostProfiler::new());
        let sw = Stopwatch::start(true);
        std::hint::black_box(1 + 1);
        sw.stop(&mut prof, Phase::Prefetch);
        let s = prof.unwrap().get(Phase::Prefetch);
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn profile_derived_metrics() {
        let mut p = HostProfiler::new();
        p.add(Phase::SmIssue, 600);
        p.add(Phase::MemPartition, 300);
        let profile = p.finish(2_000, 4_000_000_000, 1_000_000_000);
        assert_eq!(profile.phase_nanos_total(), 900);
        assert_eq!(profile.unaccounted_nanos(), 1_100);
        assert!((profile.cycles_per_sec() - 2e15).abs() < 1e6);
        assert!((profile.events_per_sec() - 5e14).abs() < 1e6);
        assert_eq!(profile.iter().count(), Phase::ALL.len());
        // Over-measurement saturates instead of underflowing.
        let mut p = HostProfiler::new();
        p.add(Phase::SmIssue, 500);
        assert_eq!(p.finish(100, 1, 0).unaccounted_nanos(), 0);
    }

    #[test]
    fn zero_wall_profile_reports_zero_rates() {
        let profile = HostProfiler::new().finish(0, 0, 0);
        assert_eq!(profile.cycles_per_sec(), 0.0);
        assert_eq!(profile.events_per_sec(), 0.0);
    }

    #[test]
    fn from_parts_places_stats_by_phase() {
        let profile =
            HostProfile::from_parts(10, 20, 30, [(Phase::Noc, PhaseStat { nanos: 5, calls: 2 })]);
        assert_eq!(profile.get(Phase::Noc).calls, 2);
        assert_eq!(profile.get(Phase::SmIssue).calls, 0);
        assert_eq!(profile.wall_nanos, 10);
    }

    #[test]
    fn nanos_per_call_handles_zero() {
        assert_eq!(PhaseStat::default().nanos_per_call(), 0.0);
        let s = PhaseStat {
            nanos: 10,
            calls: 4,
        };
        assert!((s.nanos_per_call() - 2.5).abs() < 1e-12);
    }
}

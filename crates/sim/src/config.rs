//! Simulator configuration.
//!
//! [`GpuConfig`] mirrors Table 1 of the paper (NVIDIA Volta V100 as
//! modeled by Accel-Sim). Two constructors are provided:
//!
//! * [`GpuConfig::volta_v100`] — the paper's full-scale parameters.
//! * [`GpuConfig::scaled`] — a proportionally scaled-down machine that
//!   keeps the same contention *ratios* (cache capacity per warp, MSHR
//!   per miss-queue slot, bandwidth per SM) but simulates in
//!   milliseconds instead of minutes. All experiments default to it.

use crate::fault::FaultPlan;
use crate::types::Cycle;

/// Warp scheduling policy, per SM scheduler.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the current warp until it
    /// stalls, then switch to the oldest ready warp (paper baseline).
    #[default]
    GreedyThenOldest,
    /// Loose round-robin over ready warps.
    LooseRoundRobin,
}

/// Geometry of a set-associative cache.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry, validating that the parameters divide evenly.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `capacity_bytes` is not a
    /// multiple of `line_bytes * ways`, or if the derived set count is
    /// not a power of two.
    pub fn new(capacity_bytes: u32, line_bytes: u32, ways: u32) -> Self {
        assert!(capacity_bytes > 0 && line_bytes > 0 && ways > 0);
        let lines = capacity_bytes / line_bytes;
        assert_eq!(
            capacity_bytes % line_bytes,
            0,
            "capacity must be a whole number of lines"
        );
        assert_eq!(lines % ways, 0, "lines must divide evenly into sets");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            capacity_bytes,
            line_bytes,
            ways,
        }
    }

    /// Number of lines in the cache.
    pub fn lines(&self) -> u32 {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.lines() / self.ways
    }
}

/// Full simulator configuration (Table 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in MHz (used only for energy/second conversions).
    pub core_clock_mhz: u32,
    /// Warp schedulers per SM.
    pub schedulers_per_sm: u32,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Maximum resident warps per SM (threads/SM ÷ 32).
    pub max_warps_per_sm: u32,
    /// Threads per warp (always 32 on NVIDIA hardware).
    pub warp_width: u32,
    /// Outstanding loads one warp may have in flight before it blocks
    /// (stall-on-use: back-to-back loads issue without waiting; any
    /// non-load instruction acts as the use barrier).
    pub max_outstanding_loads: u32,

    /// Unified L1/shared-memory SRAM geometry (the decoupled space).
    pub l1: CacheGeometry,
    /// Bytes of the unified SRAM carved out as shared memory.
    pub shared_mem_carveout_bytes: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// MSHR entries in the L1.
    pub mshr_entries: u32,
    /// Maximum requests merged into one MSHR entry.
    pub mshr_merge: u32,
    /// L1 miss queue depth; a full queue produces reservation fails.
    pub miss_queue_depth: u32,

    /// L2 geometry (aggregate over all banks).
    pub l2: CacheGeometry,
    /// Number of L2 banks (requests are address-interleaved).
    pub l2_banks: u32,
    /// Total L1↔L2 round-trip latency for an L2 hit, in cycles.
    pub l2_hit_latency: u32,

    /// Additional latency of a DRAM access beyond an L2 hit, in cycles.
    pub dram_latency: u32,
    /// DRAM bandwidth in bytes per core cycle (aggregate).
    pub dram_bytes_per_cycle: u32,

    /// Interconnect peak bandwidth, bytes per cycle per direction,
    /// aggregated over the device (shared by all SMs).
    pub noc_bytes_per_cycle: u32,
    /// Interconnect one-way latency in cycles.
    pub noc_latency: u32,
    /// Window (cycles) over which interconnect utilization is measured
    /// (drives the Snake bandwidth throttle).
    pub bw_window: u32,

    /// Stop simulation after this many cycles even if warps remain
    /// (safety net; `None` = run to completion).
    pub max_cycles: Option<Cycle>,

    /// Externally imposed cycle budget, distinct from [`max_cycles`]
    /// (`max_cycles` is the "something is wrong" safety net; the budget
    /// is a *planned* truncation set by a sweep supervisor). Exceeding
    /// it ends the run with
    /// [`StopReason::BudgetExceeded`](crate::StopReason::BudgetExceeded)
    /// so truncated-but-reported runs stay distinguishable from both
    /// converged runs and runaway ones. `None` (the default) imposes no
    /// budget.
    ///
    /// [`max_cycles`]: GpuConfig::max_cycles
    pub cycle_budget: Option<Cycle>,

    /// Forward-progress watchdog: after this many consecutive cycles
    /// with no retired instruction, no delivered fill, and no movement
    /// anywhere in the memory system, the run stops with
    /// [`StopReason::Deadlock`](crate::StopReason::Deadlock) and a
    /// structured report instead of spinning until `max_cycles`.
    /// `None` disables the watchdog. Must comfortably exceed the
    /// longest legitimate quiet period (a DRAM round trip plus any
    /// injected response delay).
    pub watchdog_cycles: Option<u64>,
    /// Memory-hierarchy fault injection (default: no faults).
    pub fault: FaultPlan,
    /// Run the invariant auditor every this many cycles (and once at
    /// the end of the run). `None` disables auditing. Building the
    /// crate with the `audit` feature turns it on by default in both
    /// constructors.
    pub audit_window: Option<u64>,
    /// Sample windowed time-series metrics (IPC, hit rate, occupancy,
    /// NoC utilization, throttle state, chain depth) every this many
    /// cycles into [`SimOutcome::series`](crate::SimOutcome). `None`
    /// (the default) disables collection.
    pub metrics_window: Option<u64>,
    /// Write a checkpoint of the complete simulator state every this
    /// many cycles while running under
    /// [`Gpu::run_checkpointed`](crate::Gpu::run_checkpointed) (or a
    /// harness that polls [`Gpu::checkpoint`](crate::Gpu::checkpoint)).
    /// `None` (the default) disables periodic checkpointing entirely —
    /// the run pays zero overhead, matching the no-observer-effect
    /// discipline of tracing and profiling.
    pub checkpoint_every: Option<u64>,
    /// Collect a host-side performance profile: per-phase wall time of
    /// the tick loop (see [`perfstat`](crate::perfstat)) delivered as
    /// [`SimOutcome::host`](crate::SimOutcome::host). `false` (the
    /// default) keeps every timing site to a single branch — profiling
    /// never changes simulated behavior either way.
    pub host_profile: bool,
    /// Test hook for the perf-regression gate: busy-wait this many
    /// nanoseconds of *host* time inside the memory-partition phase on
    /// every tick. Simulated behavior is untouched; only wall time
    /// inflates. `0` (the default) disables the stall. Used by
    /// `repro --perf --perf-inject-ns` to prove the comparator flags a
    /// real slowdown.
    pub perf_inject_stall_ns: u64,
}

impl GpuConfig {
    /// The paper's Table 1 configuration (NVIDIA Volta V100).
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = snake_sim::GpuConfig::volta_v100();
    /// assert_eq!(cfg.num_sms, 80);
    /// assert_eq!(cfg.l1.capacity_bytes, 128 * 1024);
    /// ```
    pub fn volta_v100() -> Self {
        GpuConfig {
            num_sms: 80,
            core_clock_mhz: 1530,
            schedulers_per_sm: 4,
            scheduler: SchedulerPolicy::GreedyThenOldest,
            max_warps_per_sm: 64, // 2048 threads / 32
            warp_width: 32,
            max_outstanding_loads: 4,
            l1: CacheGeometry::new(128 * 1024, 128, 256),
            shared_mem_carveout_bytes: 0,
            l1_hit_latency: 28,
            mshr_entries: 512,
            mshr_merge: 8,
            miss_queue_depth: 8,
            // 96KB per sub-partition x 64 banks is the full device; we
            // model the aggregate with the paper's 24-way/128B shape.
            l2: CacheGeometry::new(6 * 1024 * 1024, 128, 24),
            l2_banks: 64,
            l2_hit_latency: 212,
            dram_latency: 260,
            dram_bytes_per_cycle: 576,
            noc_bytes_per_cycle: 1024,
            noc_latency: 20,
            bw_window: 256,
            max_cycles: Some(Cycle(50_000_000)),
            cycle_budget: None,
            watchdog_cycles: Some(10_000),
            fault: FaultPlan::default(),
            audit_window: if cfg!(feature = "audit") {
                Some(64)
            } else {
                None
            },
            metrics_window: None,
            checkpoint_every: None,
            host_profile: false,
            perf_inject_stall_ns: 0,
        }
    }

    /// A scaled-down machine preserving the V100's contention ratios.
    ///
    /// `sms` SMs, each with 16 resident warps and a 16 KiB unified L1
    /// (1 KiB per warp — *tighter* than the V100's 2 KiB per warp, so
    /// the cache contention the paper's decoupling/throttling address
    /// is clearly exercised), a proportionally narrower interconnect and
    /// DRAM, and the same latencies. This is the default substrate for
    /// all experiments: it produces the paper's baseline symptoms
    /// (≈30% reservation fails, ≈33% NoC utilization, ≈55% memory
    /// stalls) while simulating thousands of times faster.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = snake_sim::GpuConfig::scaled(2);
    /// assert_eq!(cfg.num_sms, 2);
    /// assert_eq!(cfg.l1.capacity_bytes / cfg.max_warps_per_sm, 1024);
    /// ```
    pub fn scaled(sms: u32) -> Self {
        assert!(sms > 0, "need at least one SM");
        GpuConfig {
            num_sms: sms,
            core_clock_mhz: 1530,
            schedulers_per_sm: 2,
            scheduler: SchedulerPolicy::GreedyThenOldest,
            max_warps_per_sm: 16,
            warp_width: 32,
            max_outstanding_loads: 4,
            l1: CacheGeometry::new(16 * 1024, 128, 32),
            shared_mem_carveout_bytes: 0,
            l1_hit_latency: 28,
            mshr_entries: 128,
            mshr_merge: 8,
            miss_queue_depth: 2,
            l2: CacheGeometry::new(256 * 1024, 128, 16),
            l2_banks: 8,
            l2_hit_latency: 120,
            dram_latency: 220,
            dram_bytes_per_cycle: 64 * sms,
            noc_bytes_per_cycle: 40 * sms,
            noc_latency: 20,
            bw_window: 256,
            max_cycles: Some(Cycle(20_000_000)),
            cycle_budget: None,
            watchdog_cycles: Some(10_000),
            fault: FaultPlan::default(),
            audit_window: if cfg!(feature = "audit") {
                Some(64)
            } else {
                None
            },
            metrics_window: None,
            checkpoint_every: None,
            host_profile: false,
            perf_inject_stall_ns: 0,
        }
    }

    /// Usable (non-shared-memory) bytes of the unified L1 SRAM.
    pub fn l1_usable_bytes(&self) -> u32 {
        self.l1.capacity_bytes - self.shared_mem_carveout_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency
    /// found (e.g. a shared-memory carve-out larger than the SRAM).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shared_mem_carveout_bytes >= self.l1.capacity_bytes {
            return Err(ConfigError::CarveoutTooLarge {
                carveout: self.shared_mem_carveout_bytes,
                capacity: self.l1.capacity_bytes,
            });
        }
        if self.mshr_merge == 0 || self.mshr_entries == 0 {
            return Err(ConfigError::ZeroParameter("mshr"));
        }
        if self.miss_queue_depth == 0 {
            return Err(ConfigError::ZeroParameter("miss_queue_depth"));
        }
        if self.noc_bytes_per_cycle == 0 || self.dram_bytes_per_cycle == 0 {
            return Err(ConfigError::ZeroParameter("bandwidth"));
        }
        if self.schedulers_per_sm == 0 || self.max_warps_per_sm == 0 {
            return Err(ConfigError::ZeroParameter("sm shape"));
        }
        if self.max_outstanding_loads == 0 {
            return Err(ConfigError::ZeroParameter("max_outstanding_loads"));
        }
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err(ConfigError::LineSizeMismatch {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        if self.cycle_budget == Some(Cycle(0)) {
            return Err(ConfigError::ZeroParameter("cycle_budget"));
        }
        if self.watchdog_cycles == Some(0) {
            return Err(ConfigError::ZeroParameter("watchdog_cycles"));
        }
        if self.audit_window == Some(0) {
            return Err(ConfigError::ZeroParameter("audit_window"));
        }
        if self.metrics_window == Some(0) {
            return Err(ConfigError::ZeroParameter("metrics_window"));
        }
        if self.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroParameter("checkpoint_every"));
        }
        self.fault
            .validate()
            .map_err(ConfigError::InvalidFaultPlan)?;
        if let (Some(wd), Some(r)) = (self.watchdog_cycles, self.fault.recovery) {
            if r.timeout >= wd {
                return Err(ConfigError::InvalidFaultPlan(format!(
                    "recovery timeout {} must be below watchdog_cycles {wd} \
                     or recovery can never fire",
                    r.timeout
                )));
            }
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::scaled(2)
    }
}

/// Error returned by [`GpuConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The shared-memory carve-out does not leave any cache space.
    CarveoutTooLarge {
        /// Requested carve-out bytes.
        carveout: u32,
        /// Total unified SRAM bytes.
        capacity: u32,
    },
    /// A parameter that must be non-zero was zero.
    ZeroParameter(&'static str),
    /// L1 and L2 line sizes differ.
    LineSizeMismatch {
        /// L1 line bytes.
        l1: u32,
        /// L2 line bytes.
        l2: u32,
    },
    /// The fault-injection plan is inconsistent (probability outside
    /// `[0, 1]`, malformed brownout, or recovery that cannot fire).
    InvalidFaultPlan(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::CarveoutTooLarge { carveout, capacity } => write!(
                f,
                "shared-memory carve-out {carveout} B leaves no cache in {capacity} B SRAM"
            ),
            ConfigError::ZeroParameter(p) => write!(f, "parameter {p} must be non-zero"),
            ConfigError::LineSizeMismatch { l1, l2 } => {
                write!(f, "L1 line size {l1} B differs from L2 line size {l2} B")
            }
            ConfigError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_table1() {
        let c = GpuConfig::volta_v100();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.l1.line_bytes, 128);
        assert_eq!(c.l1.ways, 256);
        assert_eq!(c.mshr_entries, 512);
        assert_eq!(c.mshr_merge, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_is_valid_and_proportional() {
        for sms in [1, 2, 4, 8] {
            let c = GpuConfig::scaled(sms);
            assert!(c.validate().is_ok(), "scaled({sms}) invalid");
            assert_eq!(c.l1.capacity_bytes / c.max_warps_per_sm, 1024);
        }
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(16 * 1024, 128, 32);
        assert_eq!(g.lines(), 128);
        assert_eq!(g.sets(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_sets() {
        // 24 lines / 8 ways = 3 sets -> reject.
        let _ = CacheGeometry::new(24 * 128, 128, 8);
    }

    #[test]
    fn validate_rejects_oversized_carveout() {
        let mut c = GpuConfig::scaled(1);
        c.shared_mem_carveout_bytes = c.l1.capacity_bytes;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::CarveoutTooLarge { .. })
        ));
    }

    #[test]
    fn validate_rejects_line_mismatch() {
        let mut c = GpuConfig::scaled(1);
        c.l2 = CacheGeometry::new(128 * 1024, 64, 16);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::LineSizeMismatch { .. })
        ));
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError::ZeroParameter("mshr");
        assert!(e.to_string().contains("mshr"));
        let e = ConfigError::InvalidFaultPlan("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn validate_rejects_bad_fault_plan() {
        let mut c = GpuConfig::scaled(1);
        c.fault.drop_response = 2.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn validate_rejects_recovery_slower_than_watchdog() {
        let mut c = GpuConfig::scaled(1);
        c.watchdog_cycles = Some(100);
        c.fault.recovery = Some(crate::fault::Recovery {
            timeout: 200,
            max_retries: 4,
        });
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidFaultPlan(_))
        ));
        c.watchdog_cycles = Some(1_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_watchdog_and_audit() {
        let mut c = GpuConfig::scaled(1);
        c.watchdog_cycles = Some(0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ZeroParameter("watchdog_cycles"))
        ));
        let mut c = GpuConfig::scaled(1);
        c.audit_window = Some(0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ZeroParameter("audit_window"))
        ));
        let mut c = GpuConfig::scaled(1);
        c.metrics_window = Some(0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ZeroParameter("metrics_window"))
        ));
        let mut c = GpuConfig::scaled(1);
        c.cycle_budget = Some(Cycle(0));
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ZeroParameter("cycle_budget"))
        ));
    }
}

//! Kernel traces: the input programs the simulator executes.
//!
//! The simulator is trace-driven, like Accel-Sim in the paper: a kernel
//! is a finite per-warp instruction stream. Loads carry the coalesced
//! base address of the warp's 32 threads (the paper keeps only the
//! first thread's address when the intra-warp stride is uniform —
//! §3.4); divergent loads carry multiple transactions.

use crate::types::{Address, CtaId, Pc, WarpId};

/// One instruction in a warp's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Compute work occupying the warp for the given number of cycles.
    Compute {
        /// Cycles the warp is busy.
        cycles: u32,
    },
    /// A global-memory load. The warp blocks until data returns.
    Load {
        /// Program counter of the load instruction (`PC_ld`).
        pc: Pc,
        /// Coalesced transaction addresses (usually one; more when the
        /// warp's threads diverge).
        addrs: AddrList,
    },
    /// A global-memory store. Fire-and-forget (write-through, no
    /// allocate); consumes interconnect bandwidth but does not block.
    Store {
        /// Program counter of the store instruction.
        pc: Pc,
        /// Coalesced transaction addresses.
        addrs: AddrList,
    },
}

impl Instr {
    /// Convenience constructor for a single-transaction load.
    pub fn load(pc: impl Into<Pc>, addr: impl Into<Address>) -> Self {
        Instr::Load {
            pc: pc.into(),
            addrs: AddrList::one(addr.into()),
        }
    }

    /// Convenience constructor for a single-transaction store.
    pub fn store(pc: impl Into<Pc>, addr: impl Into<Address>) -> Self {
        Instr::Store {
            pc: pc.into(),
            addrs: AddrList::one(addr.into()),
        }
    }

    /// Convenience constructor for compute work.
    pub fn compute(cycles: u32) -> Self {
        Instr::Compute { cycles }
    }

    /// Returns `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }
}

/// Transaction address list of a memory instruction.
///
/// Optimized for the common coalesced case (one address, no heap
/// allocation); divergent instructions spill to a boxed slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrList {
    /// A single coalesced transaction.
    One(Address),
    /// Multiple transactions (memory divergence).
    Many(Box<[Address]>),
}

impl AddrList {
    /// A single-transaction list.
    pub fn one(addr: Address) -> Self {
        AddrList::One(addr)
    }

    /// Builds a list from any number of addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty: a memory instruction must access
    /// at least one address.
    pub fn from_vec(addrs: Vec<Address>) -> Self {
        assert!(!addrs.is_empty(), "memory instruction with no addresses");
        if addrs.len() == 1 {
            AddrList::One(addrs[0])
        } else {
            AddrList::Many(addrs.into_boxed_slice())
        }
    }

    /// The first (base) address — what the prefetcher trains on.
    pub fn base(&self) -> Address {
        match self {
            AddrList::One(a) => *a,
            AddrList::Many(v) => v[0],
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        match self {
            AddrList::One(_) => 1,
            AddrList::Many(v) => v.len(),
        }
    }

    /// Always `false`; present for clippy/API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the transaction addresses.
    pub fn iter(&self) -> impl Iterator<Item = Address> + '_ {
        let slice: &[Address] = match self {
            AddrList::One(a) => std::slice::from_ref(a),
            AddrList::Many(v) => v,
        };
        slice.iter().copied()
    }
}

impl From<Address> for AddrList {
    fn from(a: Address) -> Self {
        AddrList::One(a)
    }
}

/// The trace of a single warp: its CTA and instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpTrace {
    /// CTA (thread block) this warp belongs to.
    pub cta: CtaId,
    /// The instruction stream, executed in order.
    pub instrs: Vec<Instr>,
}

impl WarpTrace {
    /// Creates a warp trace.
    pub fn new(cta: CtaId, instrs: Vec<Instr>) -> Self {
        WarpTrace { cta, instrs }
    }

    /// Number of load instructions in the trace.
    pub fn load_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_load()).count()
    }
}

/// A full kernel trace: one [`WarpTrace`] per warp, plus metadata.
///
/// Warp `i` in `warps` has [`WarpId`]`(i)` when resident. The GPU
/// front-end assigns warps to SMs CTA-by-CTA, round-robin over SMs,
/// respecting `max_warps_per_sm`.
///
/// # Examples
///
/// ```
/// use snake_sim::{Instr, KernelTrace, WarpTrace, CtaId};
/// let warp = WarpTrace::new(CtaId(0), vec![Instr::load(0u32, 0u64), Instr::compute(4)]);
/// let k = KernelTrace::new("demo", vec![warp]);
/// assert_eq!(k.total_instrs(), 2);
/// assert_eq!(k.total_loads(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    name: String,
    warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// Creates a kernel trace.
    ///
    /// # Panics
    ///
    /// Panics if `warps` is empty.
    pub fn new(name: impl Into<String>, warps: Vec<WarpTrace>) -> Self {
        assert!(!warps.is_empty(), "kernel must have at least one warp");
        KernelTrace {
            name: name.into(),
            warps,
        }
    }

    /// Kernel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-warp traces.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Number of warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Number of distinct CTAs.
    pub fn cta_count(&self) -> usize {
        let mut ctas: Vec<CtaId> = self.warps.iter().map(|w| w.cta).collect();
        ctas.sort_unstable();
        ctas.dedup();
        ctas.len()
    }

    /// Total instructions across all warps.
    pub fn total_instrs(&self) -> usize {
        self.warps.iter().map(|w| w.instrs.len()).sum()
    }

    /// Total load instructions across all warps.
    pub fn total_loads(&self) -> usize {
        self.warps.iter().map(|w| w.load_count()).sum()
    }

    /// The warp with the most load instructions — the paper's
    /// "representative warp" used in the Fig. 9/10 analyses.
    pub fn representative_warp(&self) -> (WarpId, &WarpTrace) {
        let (i, w) = self
            .warps
            .iter()
            .enumerate()
            .max_by_key(|(_, w)| w.load_count())
            .expect("kernel has at least one warp");
        (WarpId(i as u32), w)
    }

    /// Iterates over `(WarpId, &WarpTrace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WarpId, &WarpTrace)> {
        self.warps
            .iter()
            .enumerate()
            .map(|(i, w)| (WarpId(i as u32), w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(loads: usize) -> WarpTrace {
        let instrs = (0..loads)
            .map(|i| Instr::load(i as u32, (i * 128) as u64))
            .collect();
        WarpTrace::new(CtaId(0), instrs)
    }

    #[test]
    fn addrlist_one_vs_many() {
        let one = AddrList::from_vec(vec![Address(8)]);
        assert!(matches!(one, AddrList::One(_)));
        assert_eq!(one.len(), 1);
        assert_eq!(one.base(), Address(8));

        let many = AddrList::from_vec(vec![Address(8), Address(512)]);
        assert_eq!(many.len(), 2);
        assert_eq!(many.base(), Address(8));
        assert_eq!(many.iter().count(), 2);
        assert!(!many.is_empty());
    }

    #[test]
    #[should_panic(expected = "no addresses")]
    fn addrlist_rejects_empty() {
        let _ = AddrList::from_vec(vec![]);
    }

    #[test]
    fn representative_warp_is_max_loads() {
        let k = KernelTrace::new("k", vec![trace(2), trace(7), trace(3)]);
        let (wid, w) = k.representative_warp();
        assert_eq!(wid, WarpId(1));
        assert_eq!(w.load_count(), 7);
    }

    #[test]
    fn counts() {
        let mut w = trace(3);
        w.instrs.push(Instr::compute(10));
        w.instrs.push(Instr::store(99u32, 0u64));
        let k = KernelTrace::new("k", vec![w]);
        assert_eq!(k.total_instrs(), 5);
        assert_eq!(k.total_loads(), 3);
        assert_eq!(k.cta_count(), 1);
        assert_eq!(k.warp_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn kernel_rejects_empty() {
        let _ = KernelTrace::new("k", vec![]);
    }
}

//! Mid-simulation checkpoint/restore: kill-anywhere crash tolerance.
//!
//! A checkpoint captures the **complete** simulator state at a cycle
//! boundary — warp slots, scoreboards, L1 tag arrays, MSHRs, miss and
//! interconnect queues, the memory partition, prefetcher tables, the
//! fault injector's RNG stream position, watchdog progress counters,
//! and the observability accumulators — as one schema-versioned JSON
//! document. The format rides on [`crate::json`]'s lossless lexeme
//! round-trips: a restored run continues on exactly the bit pattern
//! the interrupted run would have used, so the final [`SimOutcome`]
//! is byte-identical to the uninterrupted run's.
//!
//! Durability follows the sweep manifest's discipline: the document
//! is written to a temporary file, fsynced, and atomically renamed
//! into place, so a crash mid-write leaves either the previous
//! checkpoint or none — never a torn one. Loading additionally
//! verifies a checksum over the state payload, so a truncated or
//! corrupted file is rejected with a typed [`SnapshotError`] before
//! any state is applied.
//!
//! What is deliberately **excluded**: host wall-clock profiling
//! ([`crate::perfstat`] measures the machine, not the simulation) and
//! the invariant auditor's scratch state (a validation tool, rebuilt
//! from scratch on resume). See DESIGN.md "Checkpoint/restore".
//!
//! [`SimOutcome`]: crate::SimOutcome

use std::fmt;
use std::io::Write;
use std::path::Path;

use crate::json::{self, Value};

/// Version of the checkpoint document schema. Bump on any change to
/// the component state layouts; a mismatch on load is a typed error,
/// never a silent misinterpretation.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// First token of every checkpoint file.
const SNAPSHOT_MAGIC: &str = "snake-checkpoint";

/// A checkpoint artifact: the config/kernel fingerprint it was taken
/// under plus the full simulator state document.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the configuration + kernel + mechanism the
    /// state belongs to (see [`Gpu::checkpoint`]); restoring under a
    /// different fingerprint is refused.
    ///
    /// [`Gpu::checkpoint`]: crate::Gpu::checkpoint
    pub fingerprint: u64,
    /// The serialized simulator state.
    pub state: Value,
}

/// A typed failure while writing, loading, or applying a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the checkpoint file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file or a state field is not a valid checkpoint: torn
    /// tail, checksum mismatch, missing or mistyped field.
    Malformed {
        /// What exactly was wrong.
        what: String,
    },
    /// The checkpoint was written by a different schema version.
    SchemaMismatch {
        /// Version found in the file.
        found: u64,
    },
    /// The checkpoint belongs to a different configuration, kernel,
    /// or mechanism than the one it is being restored into.
    ConfigMismatch {
        /// Fingerprint found in the file.
        found: u64,
        /// Fingerprint of the restoring simulation.
        expected: u64,
    },
}

impl SnapshotError {
    /// Convenience constructor for malformed-state errors.
    pub fn malformed(what: impl Into<String>) -> Self {
        SnapshotError::Malformed { what: what.into() }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => write!(f, "checkpoint {path}: {source}"),
            SnapshotError::Malformed { what } => write!(f, "malformed checkpoint: {what}"),
            SnapshotError::SchemaMismatch { found } => write!(
                f,
                "checkpoint schema version {found} does not match this binary's \
                 version {SNAPSHOT_SCHEMA_VERSION}"
            ),
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this \
                 run's configuration/kernel/mechanism fingerprint {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash (same function the sweep manifest uses for its
/// header fingerprint; duplicated because the bench crate depends on
/// this one, not the other way around).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Checkpoint {
    /// The simulation cycle the state was captured at — what a
    /// recovery supervisor reports when it resurrects a run from this
    /// artifact. Every schema-v1 state document carries the device
    /// cycle at its top level; `None` only for a foreign document.
    pub fn cycle(&self) -> Option<u64> {
        self.state.get("cycle").and_then(Value::as_u64)
    }

    /// Serializes the artifact as a single JSON document. The payload
    /// checksum goes in before the state, so [`from_json`] can detect
    /// any corruption that still parses.
    ///
    /// [`from_json`]: Checkpoint::from_json
    pub fn to_json(&self) -> Value {
        let crc = fnv1a64(self.state.to_string().as_bytes());
        Value::Obj(vec![
            ("magic".into(), Value::str(SNAPSHOT_MAGIC)),
            ("version".into(), Value::u64(SNAPSHOT_SCHEMA_VERSION)),
            ("fingerprint".into(), Value::u64(self.fingerprint)),
            ("crc".into(), Value::u64(crc)),
            ("state".into(), self.state.clone()),
        ])
    }

    /// Rebuilds and validates an artifact from its JSON document.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing magic/field or a
    /// checksum mismatch; [`SnapshotError::SchemaMismatch`] when the
    /// document was written by a different schema version.
    pub fn from_json(v: &Value) -> Result<Self, SnapshotError> {
        let magic = v
            .get("magic")
            .and_then(Value::as_str)
            .ok_or_else(|| SnapshotError::malformed("missing magic"))?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::malformed(format!(
                "magic {magic:?} is not {SNAPSHOT_MAGIC:?}"
            )));
        }
        let version = u64_field(v, "version")?;
        if version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch { found: version });
        }
        let fingerprint = u64_field(v, "fingerprint")?;
        let crc = u64_field(v, "crc")?;
        let state = field(v, "state")?.clone();
        let actual = fnv1a64(state.to_string().as_bytes());
        if actual != crc {
            return Err(SnapshotError::malformed(format!(
                "state checksum {actual:#018x} does not match recorded {crc:#018x}"
            )));
        }
        Ok(Checkpoint { fingerprint, state })
    }

    /// Writes the artifact to `path` with the manifest's crash
    /// discipline: temporary file in the same directory, `fsync`,
    /// atomic rename. A crash mid-write leaves the previous file (or
    /// none) intact. Returns the artifact size in bytes (reported on
    /// the [`SimEvent::CheckpointSaved`](crate::obs::SimEvent) trace
    /// event).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] with the offending path.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, SnapshotError> {
        let err = |source| SnapshotError::Io {
            path: path.display().to_string(),
            source,
        };
        let tmp = path.with_extension("ckpt-tmp");
        let text = self.to_json().to_string();
        {
            let mut f = std::fs::File::create(&tmp).map_err(err)?;
            f.write_all(text.as_bytes()).map_err(err)?;
            f.write_all(b"\n").map_err(err)?;
            f.sync_all().map_err(err)?;
        }
        std::fs::rename(&tmp, path).map_err(err)?;
        Ok(text.len() as u64 + 1)
    }

    /// Loads and validates an artifact from `path`. A torn tail (the
    /// process died mid-write without the atomic rename, or the file
    /// was truncated afterwards) fails the parse or the checksum and
    /// is rejected here — state is never partially applied.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] / [`SnapshotError::Malformed`] /
    /// [`SnapshotError::SchemaMismatch`] as described above.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(|source| SnapshotError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let v = json::parse(text.trim_end())
            .map_err(|e| SnapshotError::malformed(format!("{}: {e}", path.display())))?;
        Checkpoint::from_json(&v)
    }

    /// Checks the artifact against the fingerprint of the simulation
    /// about to be restored.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] when they differ.
    pub fn verify_fingerprint(&self, expected: u64) -> Result<(), SnapshotError> {
        if self.fingerprint != expected {
            return Err(SnapshotError::ConfigMismatch {
                found: self.fingerprint,
                expected,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Field accessors shared by every component's `restore_state`.
// ---------------------------------------------------------------------------

/// Looks up `key` in an object value.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] naming the missing key.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, SnapshotError> {
    v.get(key)
        .ok_or_else(|| SnapshotError::malformed(format!("missing field {key:?}")))
}

/// Reads a `u64` field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn u64_field(v: &Value, key: &str) -> Result<u64, SnapshotError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SnapshotError::malformed(format!("missing or non-u64 field {key:?}")))
}

/// Reads a `u32` field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing, mistyped, or out of range.
pub fn u32_field(v: &Value, key: &str) -> Result<u32, SnapshotError> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| SnapshotError::malformed(format!("field {key:?} exceeds u32")))
}

/// Reads a `usize` field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing, mistyped, or out of range.
pub fn usize_field(v: &Value, key: &str) -> Result<usize, SnapshotError> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| SnapshotError::malformed(format!("field {key:?} exceeds usize")))
}

/// Reads an `i64` field (stored as its decimal lexeme).
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn i64_field(v: &Value, key: &str) -> Result<i64, SnapshotError> {
    match v.get(key) {
        Some(Value::Num(s)) => s
            .parse()
            .map_err(|_| SnapshotError::malformed(format!("field {key:?} is not an i64"))),
        _ => Err(SnapshotError::malformed(format!(
            "missing or non-numeric field {key:?}"
        ))),
    }
}

/// Reads an `f64` field; the lexeme round-trips bit-exactly because
/// both sides use [`json::fmt_f64`]'s shortest representation.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn f64_field(v: &Value, key: &str) -> Result<f64, SnapshotError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| SnapshotError::malformed(format!("missing or non-f64 field {key:?}")))
}

/// Reads a `bool` field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn bool_field(v: &Value, key: &str) -> Result<bool, SnapshotError> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| SnapshotError::malformed(format!("missing or non-bool field {key:?}")))
}

/// Reads a string field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, SnapshotError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| SnapshotError::malformed(format!("missing or non-string field {key:?}")))
}

/// Reads an array field.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn arr_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], SnapshotError> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| SnapshotError::malformed(format!("missing or non-array field {key:?}")))
}

/// Reports where two state documents first diverge, as a `/`-joined
/// path of object keys and array indices (e.g. `sms/0/warps/3/next`),
/// or `None` when they are identical. Drives `pfdebug`'s divergence
/// bisector: the path names the first component whose restored state
/// differs.
pub fn first_divergence(a: &Value, b: &Value) -> Option<String> {
    fn walk(a: &Value, b: &Value, path: &mut Vec<String>) -> Option<String> {
        match (a, b) {
            (Value::Obj(fa), Value::Obj(fb)) if fa.len() == fb.len() => {
                for ((ka, va), (kb, vb)) in fa.iter().zip(fb) {
                    if ka != kb {
                        return Some(format!("{}/{ka}≠{kb}", path.join("/")));
                    }
                    path.push(ka.clone());
                    if let Some(hit) = walk(va, vb, path) {
                        return Some(hit);
                    }
                    path.pop();
                }
                None
            }
            (Value::Arr(xa), Value::Arr(xb)) if xa.len() == xb.len() => {
                for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                    path.push(i.to_string());
                    if let Some(hit) = walk(va, vb, path) {
                        return Some(hit);
                    }
                    path.pop();
                }
                None
            }
            _ if a == b => None,
            _ => Some(path.join("/")),
        }
    }
    walk(a, b, &mut Vec::new())
}

/// Encodes an `i64` as a decimal [`Value::Num`] lexeme.
pub fn i64_value(n: i64) -> Value {
    Value::Num(n.to_string())
}

/// Encodes an `Option<u64>` as the number or `null`.
pub fn opt_u64_value(n: Option<u64>) -> Value {
    match n {
        Some(n) => Value::u64(n),
        None => Value::Null,
    }
}

/// Reads an `Option<u64>` field written by [`opt_u64_value`].
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when missing or mistyped.
pub fn opt_u64_field(v: &Value, key: &str) -> Result<Option<u64>, SnapshotError> {
    match field(v, key)? {
        Value::Null => Ok(None),
        n => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| SnapshotError::malformed(format!("field {key:?} is not u64 or null"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            state: Value::Obj(vec![
                ("cycle".into(), Value::u64(41)),
                ("ipc".into(), Value::f64(1.0 / 3.0)),
            ]),
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let c = sample();
        let text = c.to_json().to_string();
        let back = Checkpoint::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let c = sample();
        c.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_rejected_not_applied() {
        let dir = std::env::temp_dir().join(format!("snap-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let c = sample();
        c.write_atomic(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [1, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Malformed { .. }),
                "cut at {cut}: {err}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_that_still_parses_fails_the_checksum() {
        let text = sample().to_json().to_string().replace("41", "42");
        let err = Checkpoint::from_json(&json::parse(&text).unwrap()).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn version_and_fingerprint_mismatches_are_typed() {
        let mut v = sample().to_json();
        if let Value::Obj(fields) = &mut v {
            fields[1].1 = Value::u64(SNAPSHOT_SCHEMA_VERSION + 1);
        }
        assert!(matches!(
            Checkpoint::from_json(&v).unwrap_err(),
            SnapshotError::SchemaMismatch { .. }
        ));
        let c = sample();
        assert!(c.verify_fingerprint(c.fingerprint).is_ok());
        assert!(matches!(
            c.verify_fingerprint(1).unwrap_err(),
            SnapshotError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn first_divergence_names_the_deep_path() {
        let a = json::parse(r#"{"sms":[{"w":[1,2]},{"w":[3,4]}],"cycle":9}"#).unwrap();
        assert_eq!(first_divergence(&a, &a), None);
        let b = json::parse(r#"{"sms":[{"w":[1,2]},{"w":[3,5]}],"cycle":9}"#).unwrap();
        assert_eq!(first_divergence(&a, &b).as_deref(), Some("sms/1/w/1"));
        let c = json::parse(r#"{"sms":[{"w":[1,2]}],"cycle":9}"#).unwrap();
        assert_eq!(first_divergence(&a, &c).as_deref(), Some("sms"));
    }

    #[test]
    fn field_accessors_report_the_key() {
        let v = Value::Obj(vec![("a".into(), Value::u64(1))]);
        assert_eq!(u64_field(&v, "a").unwrap(), 1);
        let err = u64_field(&v, "b").unwrap_err();
        assert!(err.to_string().contains("\"b\""), "{err}");
        assert_eq!(
            i64_field(&json::parse(r#"{"x":-5}"#).unwrap(), "x").unwrap(),
            -5
        );
        assert_eq!(
            opt_u64_field(&json::parse(r#"{"x":null}"#).unwrap(), "x").unwrap(),
            None
        );
    }
}

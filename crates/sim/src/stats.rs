//! Simulation statistics.
//!
//! Every figure in the paper's evaluation is a ratio of counters
//! collected here: reservation fails (Fig 3), interconnect utilization
//! (Fig 4), memory-stall fraction (Fig 5), coverage/accuracy
//! (Figs 16/17), IPC (Fig 18), energy events (Fig 19), and L1 hit
//! rates (Fig 25).

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};

/// Generates `save_state`/`restore_state` for a struct of plain `u64`
/// counters — the checkpoint encoding of every stats block.
macro_rules! persist_u64_fields {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $ty {
            /// Serializes every counter for a checkpoint.
            pub fn save_state(&self) -> Value {
                Value::Obj(vec![
                    $((stringify!($field).into(), Value::u64(self.$field)),)+
                ])
            }

            /// Restores every counter from `save_state`'s encoding.
            ///
            /// # Errors
            ///
            /// [`SnapshotError::Malformed`] on a missing or mistyped
            /// field.
            pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
                $(self.$field = snapshot::u64_field(v, stringify!($field))?;)+
                Ok(())
            }
        }
    };
}
pub(crate) use persist_u64_fields;

persist_u64_fields!(CacheStats {
    hits,
    hits_on_prefetch,
    hits_reserved,
    merges_with_prefetch,
    misses,
    fail_mshr,
    fail_miss_queue,
    fail_no_way,
    evictions,
});

persist_u64_fields!(PrefetchStats {
    requested,
    issued,
    redundant,
    rejected,
    fills,
    useful,
    late,
    evicted_unused,
    throttled_cycles,
});

persist_u64_fields!(FaultStats {
    dropped_responses,
    duplicated_responses,
    delayed_responses,
    reissued_requests,
    spurious_fills,
    brownout_cycles,
});

persist_u64_fields!(StallBreakdown {
    issued,
    no_warp,
    barrier,
    scoreboard,
    mem_data,
    mem_struct_mshr,
    mem_struct_missq,
    mem_struct_noc,
    scheduler_cycles,
});

/// Exact per-issue-slot cycle accounting: every scheduler, every
/// cycle, lands in exactly one bucket (mutually exclusive,
/// collectively exhaustive). The partition unit is the
/// *scheduler-cycle*: one SM tick contributes `schedulers_per_sm`
/// slots. The hard invariant — the eight buckets sum to
/// [`scheduler_cycles`](StallBreakdown::scheduler_cycles) — is
/// enforced every audit window (see [`crate::audit`]) and proptested.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// The slot issued a new instruction.
    pub issued: u64,
    /// No live warp in the scheduler's slot partition (SM idle, CTAs
    /// drained or not yet launched, or a warp retired this cycle).
    pub no_warp: u64,
    /// Live warps were serializing at a memory-use barrier: absorbing
    /// L1 hit latency or store issue latency (`Busy` entered by a
    /// memory instruction).
    pub barrier: u64,
    /// Live warps were blocked on a non-memory data dependency
    /// (`Busy` entered by a compute instruction).
    pub scoreboard: u64,
    /// Stall-on-use: warps waiting on outstanding loads, or a retry
    /// whose transactions drained cleanly this cycle.
    pub mem_data: u64,
    /// A retry was rejected at the L1 because the MSHR file was full
    /// (or every way in the set was held by in-flight reservations).
    pub mem_struct_mshr: u64,
    /// A retry was rejected because the miss queue was full, with the
    /// interconnect accepting traffic.
    pub mem_struct_missq: u64,
    /// A retry was rejected because the miss queue was full *while the
    /// interconnect was backpressured* last cycle — the NoC, not the
    /// queue, is the bottleneck.
    pub mem_struct_noc: u64,
    /// Total issue slots accounted: SM ticks × schedulers per SM.
    pub scheduler_cycles: u64,
}

impl StallBreakdown {
    /// Sum of the eight buckets — must equal
    /// [`scheduler_cycles`](StallBreakdown::scheduler_cycles).
    pub fn total(&self) -> u64 {
        self.issued
            + self.no_warp
            + self.barrier
            + self.scoreboard
            + self.mem_data
            + self.mem_struct_mshr
            + self.mem_struct_missq
            + self.mem_struct_noc
    }

    /// Whether the buckets partition the scheduler-cycles exactly.
    pub fn is_exact(&self) -> bool {
        self.total() == self.scheduler_cycles
    }

    /// The buckets with their stable labels, in display order.
    pub fn buckets(&self) -> [(&'static str, u64); 8] {
        [
            ("issued", self.issued),
            ("no_warp", self.no_warp),
            ("barrier", self.barrier),
            ("scoreboard", self.scoreboard),
            ("mem_data", self.mem_data),
            ("mem_struct_mshr", self.mem_struct_mshr),
            ("mem_struct_missq", self.mem_struct_missq),
            ("mem_struct_noc", self.mem_struct_noc),
        ]
    }

    /// One bucket as a fraction of all scheduler-cycles.
    pub fn fraction(&self, bucket: u64) -> f64 {
        ratio(bucket, self.scheduler_cycles)
    }

    /// Sums another breakdown into this one (per-SM → device merge).
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.issued += other.issued;
        self.no_warp += other.no_warp;
        self.barrier += other.barrier;
        self.scoreboard += other.scoreboard;
        self.mem_data += other.mem_data;
        self.mem_struct_mshr += other.mem_struct_mshr;
        self.mem_struct_missq += other.mem_struct_missq;
        self.mem_struct_noc += other.mem_struct_noc;
        self.scheduler_cycles += other.scheduler_cycles;
    }
}

/// Outcome of a single L1 access attempt.
///
/// Mirrors the paper's four L1 statuses (§2 footnote): *hit*, *miss*,
/// *reserved* (hit on a line still in flight) and *reservation fail*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Data present in the demand (L1) partition.
    Hit,
    /// Data present in the prefetch partition (counts as a hit; the
    /// line is transferred to the demand side by flipping its flag).
    HitPrefetch,
    /// Line already reserved by an outstanding miss; request merged
    /// into the existing MSHR entry.
    HitReserved,
    /// Miss: line reserved, request sent down the hierarchy.
    Miss,
    /// The cache could not accept the request (MSHR full, miss queue
    /// full, or no evictable way); the warp must retry.
    ReservationFail,
}

impl AccessOutcome {
    /// Whether the requesting warp obtained (or will obtain) the data
    /// from this access, i.e. anything but a reservation fail.
    pub fn accepted(self) -> bool {
        !matches!(self, AccessOutcome::ReservationFail)
    }
}

/// Why a reservation fail occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReservationFailReason {
    /// No free MSHR entry (or merge capacity exhausted).
    MshrFull,
    /// The miss queue to the interconnect is full — the dominant cause
    /// on recent GPU generations per the paper (§2).
    MissQueueFull,
    /// Every way in the set is reserved by in-flight misses.
    NoEvictableWay,
}

/// Counters for one cache (L1 or prefetch partition view).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits on the demand partition.
    pub hits: u64,
    /// Demand hits served by prefetched data.
    pub hits_on_prefetch: u64,
    /// Merges into an in-flight miss (reserved hits).
    pub hits_reserved: u64,
    /// Demand merges into an in-flight *prefetch* (late prefetch:
    /// covered, partially timely).
    pub merges_with_prefetch: u64,
    /// Demand misses that allocated a new MSHR entry.
    pub misses: u64,
    /// Reservation fails, by reason.
    pub fail_mshr: u64,
    /// Reservation fails due to a full miss queue.
    pub fail_miss_queue: u64,
    /// Reservation fails due to no evictable way.
    pub fail_no_way: u64,
    /// Lines evicted before first use (demand side).
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses = hits + reserved-hits + misses + fails
    /// (the denominator of Fig 3).
    pub fn total_accesses(&self) -> u64 {
        self.hits
            + self.hits_on_prefetch
            + self.hits_reserved
            + self.merges_with_prefetch
            + self.misses
            + self.reservation_fails()
    }

    /// Total reservation fails.
    pub fn reservation_fails(&self) -> u64 {
        self.fail_mshr + self.fail_miss_queue + self.fail_no_way
    }

    /// Fraction of accesses that were reservation fails (Fig 3).
    pub fn reservation_fail_rate(&self) -> f64 {
        ratio(self.reservation_fails(), self.total_accesses())
    }

    /// Hit rate over *accepted* accesses (Fig 25). Reserved hits and
    /// prefetch merges count as misses from the warp's perspective
    /// (it still waits), but reservation fails are excluded since the
    /// access is retried.
    pub fn hit_rate(&self) -> f64 {
        let accepted = self.hits
            + self.hits_on_prefetch
            + self.hits_reserved
            + self.merges_with_prefetch
            + self.misses;
        ratio(self.hits + self.hits_on_prefetch, accepted)
    }

    /// Records a reservation fail of the given kind.
    pub fn record_fail(&mut self, reason: ReservationFailReason) {
        match reason {
            ReservationFailReason::MshrFull => self.fail_mshr += 1,
            ReservationFailReason::MissQueueFull => self.fail_miss_queue += 1,
            ReservationFailReason::NoEvictableWay => self.fail_no_way += 1,
        }
    }
}

/// Prefetch effectiveness counters (definitions from §4 of the paper).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests the prefetcher asked for.
    pub requested: u64,
    /// Requests actually sent down the hierarchy (not already present
    /// or in flight, and accepted by the cache).
    pub issued: u64,
    /// Dropped because the line was already present or in flight.
    pub redundant: u64,
    /// Dropped because the cache could not accept them.
    pub rejected: u64,
    /// Prefetch fills that arrived in the cache.
    pub fills: u64,
    /// Prefetched lines referenced by a demand access after arriving
    /// (timely useful prefetches).
    pub useful: u64,
    /// Demand requests that merged with an in-flight prefetch
    /// (late but covering prefetches).
    pub late: u64,
    /// Prefetched lines evicted without ever being referenced
    /// (inaccurate prefetches).
    pub evicted_unused: u64,
    /// Cycles the prefetcher spent throttled.
    pub throttled_cycles: u64,
}

impl PrefetchStats {
    /// Fraction of issued prefetches that were used (precision).
    pub fn precision(&self) -> f64 {
        ratio(self.useful + self.late, self.issued)
    }
}

/// Counters for injected faults and the simulator's reaction to them
/// (see [`crate::FaultPlan`]). All zero on a healthy run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fill responses silently dropped by the injector.
    pub dropped_responses: u64,
    /// Fill responses delivered twice.
    pub duplicated_responses: u64,
    /// Fill responses held back by the injected extra delay.
    pub delayed_responses: u64,
    /// Read misses re-issued by timeout recovery.
    pub reissued_requests: u64,
    /// Fills that arrived with no outstanding MSHR entry (duplicate or
    /// post-recovery stragglers) and were discarded.
    pub spurious_fills: u64,
    /// Cycles the interconnect ran at reduced (brownout) bandwidth.
    pub brownout_cycles: u64,
}

/// Per-SM and device-wide summary.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired (all warps).
    pub instructions: u64,
    /// Demand load transactions sent to L1 (coverage denominator).
    pub demand_loads: u64,
    /// Store transactions.
    pub stores: u64,
    /// Cycles in which at least one warp was resident but *no* warp
    /// could issue because all were waiting on memory (Fig 5
    /// numerator).
    pub all_stall_mem_cycles: u64,
    /// Cycles in which no warp could issue for any reason
    /// (Fig 5 denominator: "total stalls").
    pub all_stall_cycles: u64,
    /// Exact per-issue-slot stall-reason taxonomy (buckets partition
    /// scheduler-cycles; see [`StallBreakdown`]).
    pub stall: StallBreakdown,
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Bytes moved L1→L2 (requests + write data).
    pub noc_bytes_up: u64,
    /// Bytes moved L2→L1 (fills).
    pub noc_bytes_down: u64,
    /// Prefetch counters.
    pub prefetch: PrefetchStats,
    /// Injected-fault counters.
    pub fault: FaultStats,
}

impl SimStats {
    /// Instructions per cycle, across the device.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Fraction of stall cycles attributable to memory (Fig 5).
    pub fn memory_stall_fraction(&self) -> f64 {
        ratio(self.all_stall_mem_cycles, self.all_stall_cycles)
    }

    /// Interconnect utilization against a peak of `peak_bytes_per_cycle`
    /// per direction (Fig 4).
    pub fn noc_utilization(&self, peak_bytes_per_cycle: u64) -> f64 {
        // Saturating: a pathological peak (u64::MAX from a fuzzer or a
        // misparsed config) times a long run must clamp, not wrap into
        // a tiny denominator. `ratio` already guards the zero case.
        let capacity = 2u64
            .saturating_mul(peak_bytes_per_cycle)
            .saturating_mul(self.cycles);
        ratio(self.noc_bytes_up + self.noc_bytes_down, capacity)
    }

    /// Prefetch coverage (Fig 16): demand accesses whose data was
    /// correctly predicted (served by prefetched data, or merged with
    /// an in-flight prefetch) over all demand accesses.
    pub fn coverage(&self) -> f64 {
        ratio(
            self.l1.hits_on_prefetch + self.l1.merges_with_prefetch,
            self.demand_loads,
        )
    }

    /// Timely coverage, the paper's "accuracy" (Fig 17): correctly
    /// predicted *and in the cache by the time the demand arrived*,
    /// over all demand accesses.
    pub fn timely_coverage(&self) -> f64 {
        ratio(self.l1.hits_on_prefetch, self.demand_loads)
    }

    /// Merges another SM's (or partition's) counters into this one.
    /// `cycles` is maxed, everything else summed.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.instructions += other.instructions;
        self.demand_loads += other.demand_loads;
        self.stores += other.stores;
        self.all_stall_mem_cycles += other.all_stall_mem_cycles;
        self.all_stall_cycles += other.all_stall_cycles;
        self.stall.merge(&other.stall);
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.noc_bytes_up += other.noc_bytes_up;
        self.noc_bytes_down += other.noc_bytes_down;
        let l = &mut self.l1;
        let o = &other.l1;
        l.hits += o.hits;
        l.hits_on_prefetch += o.hits_on_prefetch;
        l.hits_reserved += o.hits_reserved;
        l.merges_with_prefetch += o.merges_with_prefetch;
        l.misses += o.misses;
        l.fail_mshr += o.fail_mshr;
        l.fail_miss_queue += o.fail_miss_queue;
        l.fail_no_way += o.fail_no_way;
        l.evictions += o.evictions;
        let p = &mut self.prefetch;
        let q = &other.prefetch;
        p.requested += q.requested;
        p.issued += q.issued;
        p.redundant += q.redundant;
        p.rejected += q.rejected;
        p.fills += q.fills;
        p.useful += q.useful;
        p.late += q.late;
        p.evicted_unused += q.evicted_unused;
        p.throttled_cycles += q.throttled_cycles;
        let f = &mut self.fault;
        let g = &other.fault;
        f.dropped_responses += g.dropped_responses;
        f.duplicated_responses += g.duplicated_responses;
        f.delayed_responses += g.delayed_responses;
        f.reissued_requests += g.reissued_requests;
        f.spurious_fills += g.spurious_fills;
        // Brownouts are device-global; like cycles, take the max rather
        // than multiply by the SM count.
        f.brownout_cycles = f.brownout_cycles.max(g.brownout_cycles);
    }
}

impl SimStats {
    /// Serializes every counter (including the nested cache, prefetch,
    /// and fault blocks) for a checkpoint.
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("cycles".into(), Value::u64(self.cycles)),
            ("instructions".into(), Value::u64(self.instructions)),
            ("demand_loads".into(), Value::u64(self.demand_loads)),
            ("stores".into(), Value::u64(self.stores)),
            (
                "all_stall_mem_cycles".into(),
                Value::u64(self.all_stall_mem_cycles),
            ),
            ("all_stall_cycles".into(), Value::u64(self.all_stall_cycles)),
            ("stall".into(), self.stall.save_state()),
            ("l1".into(), self.l1.save_state()),
            ("l2_hits".into(), Value::u64(self.l2_hits)),
            ("l2_misses".into(), Value::u64(self.l2_misses)),
            ("noc_bytes_up".into(), Value::u64(self.noc_bytes_up)),
            ("noc_bytes_down".into(), Value::u64(self.noc_bytes_down)),
            ("prefetch".into(), self.prefetch.save_state()),
            ("fault".into(), self.fault.save_state()),
        ])
    }

    /// Restores from [`save_state`](SimStats::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or mistyped field.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.cycles = snapshot::u64_field(v, "cycles")?;
        self.instructions = snapshot::u64_field(v, "instructions")?;
        self.demand_loads = snapshot::u64_field(v, "demand_loads")?;
        self.stores = snapshot::u64_field(v, "stores")?;
        self.all_stall_mem_cycles = snapshot::u64_field(v, "all_stall_mem_cycles")?;
        self.all_stall_cycles = snapshot::u64_field(v, "all_stall_cycles")?;
        self.stall.restore_state(snapshot::field(v, "stall")?)?;
        self.l1.restore_state(snapshot::field(v, "l1")?)?;
        self.l2_hits = snapshot::u64_field(v, "l2_hits")?;
        self.l2_misses = snapshot::u64_field(v, "l2_misses")?;
        self.noc_bytes_up = snapshot::u64_field(v, "noc_bytes_up")?;
        self.noc_bytes_down = snapshot::u64_field(v, "noc_bytes_down")?;
        self.prefetch
            .restore_state(snapshot::field(v, "prefetch")?)?;
        self.fault.restore_state(snapshot::field(v, "fault")?)?;
        Ok(())
    }
}

pub(crate) fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accepted() {
        assert!(AccessOutcome::Hit.accepted());
        assert!(AccessOutcome::Miss.accepted());
        assert!(AccessOutcome::HitReserved.accepted());
        assert!(!AccessOutcome::ReservationFail.accepted());
    }

    #[test]
    fn cache_stats_rates() {
        let mut c = CacheStats {
            hits: 60,
            misses: 30,
            ..Default::default()
        };
        c.record_fail(ReservationFailReason::MissQueueFull);
        c.record_fail(ReservationFailReason::MshrFull);
        c.record_fail(ReservationFailReason::NoEvictableWay);
        assert_eq!(c.reservation_fails(), 3);
        assert_eq!(c.total_accesses(), 93);
        assert!((c.hit_rate() - 60.0 / 90.0).abs() < 1e-12);
        assert!((c.reservation_fail_rate() - 3.0 / 93.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_definitions() {
        let s = SimStats {
            demand_loads: 100,
            l1: CacheStats {
                hits_on_prefetch: 70,
                merges_with_prefetch: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.coverage() - 0.80).abs() < 1e-12);
        assert!((s.timely_coverage() - 0.70).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.memory_stall_fraction(), 0.0);
        assert_eq!(s.noc_utilization(0), 0.0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(PrefetchStats::default().precision(), 0.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SimStats {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 20,
            instructions: 7,
            demand_loads: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.demand_loads, 3);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn stats_types_are_serde() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<CacheStats>();
        assert_serde::<PrefetchStats>();
        assert_serde::<SimStats>();
        assert_serde::<crate::config::GpuConfig>();
        assert_serde::<crate::energy::EnergyModel>();
    }

    #[test]
    fn stats_state_round_trips_bit_exactly() {
        let c = CacheStats {
            hits: 1,
            misses: u64::MAX - 3,
            fail_no_way: 7,
            ..Default::default()
        };
        let text = c.save_state().to_string();
        let mut back = CacheStats::default();
        back.restore_state(&crate::json::parse(&text).unwrap())
            .unwrap();
        assert_eq!(back, c);
        assert_eq!(back.save_state().to_string(), text);
        assert!(back.restore_state(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn stall_breakdown_partitions_and_round_trips() {
        let b = StallBreakdown {
            issued: 10,
            no_warp: 3,
            barrier: 2,
            scoreboard: 1,
            mem_data: 20,
            mem_struct_mshr: 4,
            mem_struct_missq: 5,
            mem_struct_noc: 6,
            scheduler_cycles: 51,
        };
        assert_eq!(b.total(), 51);
        assert!(b.is_exact());
        assert!((b.fraction(b.mem_data) - 20.0 / 51.0).abs() < 1e-12);
        let mut merged = b;
        merged.merge(&b);
        assert_eq!(merged.scheduler_cycles, 102);
        assert!(merged.is_exact());
        let text = b.save_state().to_string();
        let mut back = StallBreakdown::default();
        back.restore_state(&crate::json::parse(&text).unwrap())
            .unwrap();
        assert_eq!(back, b);
        assert_eq!(back.save_state().to_string(), text);
        let short = StallBreakdown {
            scheduler_cycles: 52,
            ..b
        };
        assert!(!short.is_exact());
    }

    #[test]
    fn noc_utilization_math() {
        let s = SimStats {
            cycles: 100,
            noc_bytes_up: 500,
            noc_bytes_down: 1500,
            ..Default::default()
        };
        // peak 10 B/cy/direction -> capacity = 2*10*100 = 2000
        assert!((s.noc_utilization(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noc_utilization_saturates_instead_of_wrapping() {
        let s = SimStats {
            cycles: u64::MAX,
            noc_bytes_up: 1,
            ..Default::default()
        };
        // 2 * MAX * MAX would wrap to a tiny denominator and report an
        // absurd utilization; saturation keeps it sane.
        let u = s.noc_utilization(u64::MAX);
        assert!(u.is_finite());
        assert!(u <= 1e-9, "got {u}");
    }
}

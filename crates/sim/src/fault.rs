//! Deterministic memory-hierarchy fault injection.
//!
//! A [`FaultPlan`] describes *what can go wrong* between the L2
//! partition and the L1s: fill responses may be dropped, duplicated,
//! or delayed, and the interconnect may suffer periodic bandwidth
//! "brownouts". All decisions are drawn from a seeded generator, so a
//! given `(plan, kernel, config)` triple always produces the same
//! simulation — faulty runs are as reproducible as clean ones.
//!
//! The plan also carries the *response* to faults: when
//! [`FaultPlan::recovery`] is set, the L1 re-issues read misses whose
//! MSHR entry has been outstanding longer than the timeout, up to a
//! retry budget. Without recovery, a dropped fill permanently strands
//! its waiters and the forward-progress watchdog converts the hang
//! into a [`StopReason::Deadlock`](crate::StopReason::Deadlock).

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::stats::FaultStats;
use crate::types::Cycle;

/// Periodic interconnect bandwidth reduction.
///
/// For the first `active` cycles of every `period` cycles, both NoC
/// directions run at `scale` times their configured byte budget.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// Cycle length of one brownout cycle (active + healthy).
    pub period: u64,
    /// Leading cycles of each period with reduced bandwidth.
    pub active: u64,
    /// Bandwidth multiplier while active, in `(0, 1]`.
    pub scale: f64,
}

/// Timeout-and-reissue recovery for lost fill responses.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Cycles an MSHR entry may wait for its fill before the miss is
    /// re-issued down the hierarchy.
    pub timeout: u64,
    /// Maximum re-issues per MSHR entry. When exhausted the entry is
    /// left to the watchdog.
    pub max_retries: u32,
}

/// A seeded, deterministic description of injected faults.
///
/// The default plan injects nothing and adds no overhead.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Probability a read fill response is silently dropped.
    pub drop_response: f64,
    /// Probability a read fill response is delivered twice.
    pub duplicate_response: f64,
    /// Probability a read fill response is held back `delay_cycles`.
    pub delay_response: f64,
    /// Extra latency applied to delayed responses.
    pub delay_cycles: u64,
    /// Periodic interconnect bandwidth brownouts.
    pub brownout: Option<Brownout>,
    /// Timeout/reissue recovery; `None` leaves dropped fills stranded.
    pub recovery: Option<Recovery>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_response: 0.0,
            duplicate_response: 0.0,
            delay_response: 0.0,
            delay_cycles: 0,
            brownout: None,
            recovery: None,
        }
    }
}

impl FaultPlan {
    /// Whether any response-level fault can fire.
    pub fn perturbs_responses(&self) -> bool {
        self.drop_response > 0.0 || self.duplicate_response > 0.0 || self.delay_response > 0.0
    }

    /// Bandwidth multiplier in effect at `now` (1.0 = healthy).
    pub fn bandwidth_scale(&self, now: Cycle) -> f64 {
        match self.brownout {
            Some(b) if now.0 % b.period < b.active => b.scale,
            _ => 1.0,
        }
    }

    /// Checks the plan's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: a probability
    /// outside `[0, 1]`, combined probabilities above 1, or a
    /// malformed brownout/recovery shape.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_response", self.drop_response),
            ("duplicate_response", self.duplicate_response),
            ("delay_response", self.delay_response),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} outside [0, 1]"));
            }
        }
        let total = self.drop_response + self.duplicate_response + self.delay_response;
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total} > 1"));
        }
        if self.delay_response > 0.0 && self.delay_cycles == 0 {
            return Err("delay_response needs delay_cycles > 0".to_string());
        }
        if let Some(b) = self.brownout {
            if b.period == 0 || b.active == 0 || b.active > b.period {
                return Err(format!(
                    "brownout needs 0 < active <= period, got {}/{}",
                    b.active, b.period
                ));
            }
            if !(0.0..=1.0).contains(&b.scale) || b.scale == 0.0 {
                return Err(format!("brownout scale {} outside (0, 1]", b.scale));
            }
        }
        if let Some(r) = self.recovery {
            if r.timeout == 0 {
                return Err("recovery timeout must be non-zero".to_string());
            }
        }
        Ok(())
    }
}

/// What the injector decided for one fill response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Deliver normally.
    Deliver,
    /// Drop silently; no response ever reaches the L1.
    Drop,
    /// Deliver twice (the L1 must tolerate the spurious copy).
    Duplicate,
    /// Deliver after the given extra delay.
    Delay(u64),
}

/// SplitMix64: small, fast, and deterministic. The fault stream must
/// not depend on an external RNG crate (snake-sim has no runtime
/// dependencies), and statistical quality far beyond this is not
/// needed for fault scheduling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws per-response fault decisions from a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    /// Counters for the faults actually fired.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector; the decision stream is a pure function of
    /// `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            // Avoid the all-zero fixed point without perturbing
            // non-zero seeds into each other.
            state: plan.seed ^ 0xA5A5_A5A5_5A5A_5A5A,
            stats: FaultStats::default(),
        }
    }

    fn unit(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The generator's current position in the decision stream (the
    /// raw SplitMix64 state). Exposed so checkpoints can capture it:
    /// a restored chaos run must continue on the *same* decision
    /// stream, not restart it from the seed.
    pub fn generator_position(&self) -> u64 {
        self.state
    }

    /// Serializes the generator position and fired-fault counters for
    /// a checkpoint (the plan itself is config-derived).
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("state".into(), Value::u64(self.state)),
            ("stats".into(), self.stats.save_state()),
        ])
    }

    /// Restores the generator position and counters from
    /// [`save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or mistyped field.
    ///
    /// [`save_state`]: FaultInjector::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.state = snapshot::u64_field(v, "state")?;
        self.stats.restore_state(snapshot::field(v, "stats")?)?;
        Ok(())
    }

    /// Decides the fate of one fill response and records it.
    pub fn on_response(&mut self) -> ResponseFault {
        if !self.plan.perturbs_responses() {
            return ResponseFault::Deliver;
        }
        let roll = self.unit();
        let p = &self.plan;
        if roll < p.drop_response {
            self.stats.dropped_responses += 1;
            ResponseFault::Drop
        } else if roll < p.drop_response + p.duplicate_response {
            self.stats.duplicated_responses += 1;
            ResponseFault::Duplicate
        } else if roll < p.drop_response + p.duplicate_response + p.delay_response {
            self.stats.delayed_responses += 1;
            ResponseFault::Delay(p.delay_cycles)
        } else {
            ResponseFault::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(drop: f64, dup: f64, delay: f64) -> FaultPlan {
        FaultPlan {
            seed: 42,
            drop_response: drop,
            duplicate_response: dup,
            delay_response: delay,
            delay_cycles: 10,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn default_plan_is_inert_and_valid() {
        let p = FaultPlan::default();
        assert!(p.validate().is_ok());
        assert!(!p.perturbs_responses());
        let mut inj = FaultInjector::new(p);
        for _ in 0..100 {
            assert_eq!(inj.on_response(), ResponseFault::Deliver);
        }
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let p = plan_with(0.2, 0.2, 0.2);
        let mut a = FaultInjector::new(p);
        let mut b = FaultInjector::new(p);
        for _ in 0..1000 {
            assert_eq!(a.on_response(), b.on_response());
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(plan_with(0.5, 0.0, 0.0));
        let mut b = FaultInjector::new(FaultPlan {
            seed: 7,
            ..plan_with(0.5, 0.0, 0.0)
        });
        let same = (0..256)
            .filter(|_| a.on_response() == b.on_response())
            .count();
        assert!(same < 256, "streams must not be identical");
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let mut inj = FaultInjector::new(plan_with(0.3, 0.1, 0.2));
        for _ in 0..10_000 {
            inj.on_response();
        }
        let s = inj.stats;
        assert!((2500..3500).contains(&s.dropped_responses), "{s:?}");
        assert!((700..1300).contains(&s.duplicated_responses), "{s:?}");
        assert!((1500..2500).contains(&s.delayed_responses), "{s:?}");
    }

    #[test]
    fn restored_injector_continues_the_decision_stream() {
        let p = plan_with(0.2, 0.2, 0.2);
        let mut full = FaultInjector::new(p);
        let mut interrupted = FaultInjector::new(p);
        for _ in 0..137 {
            full.on_response();
            interrupted.on_response();
        }
        // "Kill" the interrupted run: serialize, rebuild from the
        // plan (which resets the stream to the seed), restore.
        let saved = interrupted.save_state();
        let mut resumed = FaultInjector::new(p);
        assert_ne!(
            resumed.generator_position(),
            interrupted.generator_position()
        );
        resumed.restore_state(&saved).unwrap();
        assert_eq!(resumed.generator_position(), full.generator_position());
        for _ in 0..500 {
            assert_eq!(resumed.on_response(), full.on_response());
        }
        assert_eq!(resumed.stats, full.stats);
        // Re-serialization is bit-stable.
        assert_eq!(
            resumed.save_state().to_string(),
            full.save_state().to_string()
        );
    }

    #[test]
    fn brownout_schedule_is_periodic() {
        let p = FaultPlan {
            brownout: Some(Brownout {
                period: 100,
                active: 25,
                scale: 0.25,
            }),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.bandwidth_scale(Cycle(0)), 0.25);
        assert_eq!(p.bandwidth_scale(Cycle(24)), 0.25);
        assert_eq!(p.bandwidth_scale(Cycle(25)), 1.0);
        assert_eq!(p.bandwidth_scale(Cycle(99)), 1.0);
        assert_eq!(p.bandwidth_scale(Cycle(100)), 0.25);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(plan_with(1.5, 0.0, 0.0).validate().is_err());
        assert!(plan_with(0.6, 0.6, 0.0).validate().is_err());
        assert!(FaultPlan {
            delay_response: 0.1,
            delay_cycles: 0,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            brownout: Some(Brownout {
                period: 10,
                active: 20,
                scale: 0.5
            }),
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            recovery: Some(Recovery {
                timeout: 0,
                max_retries: 3
            }),
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
    }
}

//! The prefetcher interface.
//!
//! The simulator is prefetcher-agnostic: on every demand access it
//! calls [`Prefetcher::on_demand_access`] with an [`AccessEvent`] and a
//! [`PrefetchContext`] snapshot (free space, measured bandwidth), and
//! the prefetcher appends [`PrefetchRequest`]s to an output buffer.
//! The concrete mechanisms (Snake and all baselines) live in the
//! `snake-core` crate; the simulator itself only ships
//! [`NullPrefetcher`].

use crate::json::Value;
use crate::kernel::KernelTrace;
use crate::obs::WalkStop;
use crate::snapshot::SnapshotError;
use crate::stats::AccessOutcome;
use crate::types::{Address, CtaId, Cycle, Pc, SmId, WarpId};

/// A demand access observed at the L1, the prefetcher's training input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// SM the access originated from.
    pub sm: SmId,
    /// Warp that executed the load (SM-local id).
    pub warp: WarpId,
    /// CTA of the warp.
    pub cta: CtaId,
    /// Program counter of the load (`PC_ld`).
    pub pc: Pc,
    /// Coalesced base address of the warp's transaction.
    pub addr: Address,
    /// What the L1 did with the access.
    pub outcome: AccessOutcome,
    /// Cycle of the access.
    pub cycle: Cycle,
}

/// A prefetch the mechanism wants issued (line granularity is applied
/// by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target byte address (the whole containing line is fetched).
    pub addr: Address,
}

impl PrefetchRequest {
    /// Creates a request for the line containing `addr`.
    pub fn new(addr: Address) -> Self {
        PrefetchRequest { addr }
    }
}

/// Machine-state snapshot given to the prefetcher on each event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchContext {
    /// Current cycle.
    pub cycle: Cycle,
    /// Interconnect utilization in `[0, 1]`, measured over the
    /// configured window (drives the bandwidth throttle trigger).
    pub bw_utilization: f64,
    /// Invalid (free) lines in the unified L1 SRAM.
    pub free_lines: u32,
    /// Total usable lines in the unified L1 SRAM.
    pub total_lines: u32,
    /// The prefetcher recently outran consumption: a prefetch
    /// allocation (or bulk free) had to evict a *not yet used*
    /// prefetched line. This is the space-throttle trigger — pausing
    /// gives the resident prefetched data time to be consumed (§3.3).
    pub prefetch_overrun: bool,
    /// Whether the simulator has a trace sink attached and wants
    /// [`PrefetcherEvent`]s recorded. Mechanisms must skip all event
    /// bookkeeping when this is `false` so the no-sink path stays
    /// zero-cost.
    pub telemetry: bool,
}

impl PrefetchContext {
    /// `true` when the unified cache has no free space (the paper's
    /// space-based throttle trigger).
    pub fn cache_full(&self) -> bool {
        self.free_lines == 0
    }
}

/// A telemetry event recorded by a mechanism during
/// [`Prefetcher::on_demand_access`] and collected by the simulator via
/// [`Prefetcher::drain_events`]. Only recorded when
/// [`PrefetchContext::telemetry`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherEvent {
    /// A chain walk started from a trigger access.
    ChainWalkStart {
        /// Triggering warp.
        warp: WarpId,
        /// Load PC indexing the head table.
        pc: Pc,
    },
    /// One chain-walk step emitted a target.
    ChainWalkStep {
        /// 1-based step depth.
        depth: u32,
        /// Target address of the step.
        addr: Address,
    },
    /// The chain walk stopped.
    ChainWalkStop {
        /// Steps completed before stopping.
        steps: u32,
        /// Why it stopped.
        reason: WalkStop,
    },
}

/// Where prefetched lines are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPlacement {
    /// Decoupled inside the unified L1 SRAM via per-line flags
    /// (Snake's §3.2 mechanism).
    Decoupled,
    /// Straight into the L1 as ordinary lines (no decoupling —
    /// Snake-DT and all plain baselines).
    PlainL1,
    /// A dedicated buffer of the given number of lines, separate from
    /// the unified SRAM (Isolated-Snake, §5.7).
    Isolated {
        /// Buffer capacity in lines.
        lines: u32,
    },
}

/// A hardware prefetching mechanism.
///
/// Implementations observe the demand stream and emit prefetch
/// candidates. All methods have defaults so trivial mechanisms stay
/// trivial; the trait is object-safe (the simulator stores a
/// `Box<dyn Prefetcher>`).
pub trait Prefetcher {
    /// Short mechanism name used in reports (e.g. `"snake"`, `"mta"`).
    fn name(&self) -> &str;

    /// Storage placement policy for this mechanism's prefetched lines.
    fn placement(&self) -> PrefetchPlacement {
        PrefetchPlacement::PlainL1
    }

    /// Called once per kernel before simulation starts. Oracle-style
    /// mechanisms may inspect the full trace; hardware mechanisms
    /// should only reset state.
    fn on_kernel_launch(&mut self, trace: &KernelTrace) {
        let _ = trace;
    }

    /// Observe one demand access; append prefetch requests to `out`.
    ///
    /// `out` is a reusable scratch buffer owned by the simulator; it is
    /// cleared before every call.
    ///
    /// Host-time note: when
    /// [`GpuConfig::host_profile`](crate::GpuConfig::host_profile) is
    /// set, the wall time spent inside this method (and
    /// [`drain_events`](Prefetcher::drain_events)) is charged to the
    /// `prefetch` phase of the run's
    /// [`HostProfile`](crate::perfstat::HostProfile) — an expensive
    /// mechanism shows up here, not smeared over the SM front-end.
    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    );

    /// Whether the mechanism is currently throttled. While throttled
    /// the L1 confines demand data to its own partition (§3.2/§3.3).
    fn throttled(&self, now: Cycle) -> bool {
        let _ = now;
        false
    }

    /// Whether the training phase has completed (while training, the
    /// decoupled L1 limits demand data to 50% of the SRAM, §3.2).
    fn trained(&self) -> bool {
        true
    }

    /// Current chain-walk depth limit, for mechanisms with a
    /// throttle-controlled walk (Snake). Non-chaining mechanisms
    /// report 0.
    fn chain_depth(&self) -> u32 {
        0
    }

    /// Moves any telemetry events recorded since the last drain into
    /// `out`. Only called when a trace sink is attached; the default
    /// is a no-op for mechanisms without telemetry.
    fn drain_events(&mut self, out: &mut Vec<PrefetcherEvent>) {
        let _ = out;
    }

    /// Serializes the mechanism's mutable state for a checkpoint. A
    /// stateless mechanism returns [`Value::Null`] (the default); a
    /// stateful one must capture everything its decisions depend on,
    /// or a restored run will diverge from an uninterrupted one.
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restores state captured by
    /// [`save_state`](Prefetcher::save_state). The default accepts
    /// only [`Value::Null`], so a mechanism that gains state without
    /// implementing the pair fails loudly instead of resuming wrong.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on an encoding the mechanism does
    /// not recognize.
    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        if matches!(v, Value::Null) {
            Ok(())
        } else {
            Err(SnapshotError::malformed(format!(
                "prefetcher {:?} has no state to restore",
                self.name()
            )))
        }
    }
}

/// A prefetcher that never prefetches (the baseline GPU).
///
/// # Examples
///
/// ```
/// use snake_sim::{NullPrefetcher, Prefetcher};
/// assert_eq!(NullPrefetcher.name(), "baseline");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "baseline"
    }

    fn on_demand_access(
        &mut self,
        _event: &AccessEvent,
        _ctx: &PrefetchContext,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_emits_nothing() {
        let mut p = NullPrefetcher;
        let ev = AccessEvent {
            sm: SmId(0),
            warp: WarpId(0),
            cta: CtaId(0),
            pc: Pc(0),
            addr: Address(0),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        };
        let ctx = PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 10,
            total_lines: 10,
            prefetch_overrun: false,
            telemetry: false,
        };
        let mut out = Vec::new();
        p.on_demand_access(&ev, &ctx, &mut out);
        assert!(out.is_empty());
        assert!(!p.throttled(Cycle(0)));
        assert!(p.trained());
        assert_eq!(p.placement(), PrefetchPlacement::PlainL1);
        assert_eq!(p.chain_depth(), 0);
        let mut events = Vec::new();
        p.drain_events(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn context_full_flag() {
        let mut ctx = PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.5,
            free_lines: 0,
            total_lines: 4,
            prefetch_overrun: false,
            telemetry: false,
        };
        assert!(ctx.cache_full());
        ctx.free_lines = 1;
        assert!(!ctx.cache_full());
    }

    #[test]
    fn prefetcher_is_object_safe() {
        let b: Box<dyn Prefetcher> = Box::new(NullPrefetcher);
        assert_eq!(b.name(), "baseline");
    }
}

//! Chrome trace-event JSON exporter.
//!
//! Renders a [`TraceEvent`] stream as the Trace Event Format's JSON
//! object form (`{"traceEvents":[...]}`), loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. Every simulator
//! event becomes an instant event (`"ph":"i"`) whose timestamp is the
//! raw cycle number and whose thread id is the owning SM; device-wide
//! events (brownouts, the terminal event) land on a dedicated track.
//!
//! The output is deliberately hand-rendered — no JSON library — with
//! one event per line, fields in a fixed order, and floats printed
//! with six decimal places, so the same run always produces the same
//! bytes (the golden-file test in `tests/observability.rs` depends on
//! this).

use super::{SimEvent, TraceEvent};

/// Thread id used for events not attributable to a single SM.
pub const DEVICE_TID: u64 = 1_000_000;

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn args_json(data: &SimEvent) -> String {
    match data {
        SimEvent::WarpIssue { warp, .. }
        | SimEvent::WarpStall { warp, .. }
        | SimEvent::WarpUnstall { warp, .. } => format!("{{\"warp\":{}}}", warp.0),
        SimEvent::L1Access {
            warp,
            line,
            outcome,
            ..
        } => format!(
            "{{\"warp\":{},\"line\":{},\"outcome\":\"{}\"}}",
            warp.0,
            line.0,
            json_escape(&format!("{outcome:?}"))
        ),
        SimEvent::MshrAllocate { line, prefetch, .. } => {
            format!("{{\"line\":{},\"prefetch\":{}}}", line.0, prefetch)
        }
        SimEvent::MshrMerge { line, warp, .. } => {
            format!("{{\"line\":{},\"warp\":{}}}", line.0, warp.0)
        }
        SimEvent::MshrFill { line, waiters, .. } => {
            format!("{{\"line\":{},\"waiters\":{}}}", line.0, waiters)
        }
        SimEvent::NocEnqueue {
            dir, line, bytes, ..
        } => format!(
            "{{\"dir\":\"{}\",\"line\":{},\"bytes\":{}}}",
            dir.label(),
            line.0,
            bytes
        ),
        SimEvent::NocDequeue { dir, line, .. } => {
            format!("{{\"dir\":\"{}\",\"line\":{}}}", dir.label(), line.0)
        }
        SimEvent::ThrottleHalt { bw_utilization, .. }
        | SimEvent::ThrottleResume { bw_utilization, .. } => {
            format!("{{\"bw_utilization\":{bw_utilization:.6}}}")
        }
        SimEvent::PrefetchIssued { line, .. } => format!("{{\"line\":{}}}", line.0),
        SimEvent::PrefetchDropped { line, reason, .. } => {
            format!("{{\"line\":{},\"reason\":\"{}\"}}", line.0, reason.label())
        }
        SimEvent::PrefetchFilled { line, latency, .. }
        | SimEvent::PrefetchFirstUse { line, latency, .. } => {
            format!("{{\"line\":{},\"latency\":{}}}", line.0, latency)
        }
        SimEvent::PrefetchEvictedUnused { line, lifetime, .. } => {
            format!("{{\"line\":{},\"lifetime\":{}}}", line.0, lifetime)
        }
        SimEvent::ChainWalkStart { warp, pc, .. } => {
            format!("{{\"warp\":{},\"pc\":{}}}", warp.0, pc.0)
        }
        SimEvent::ChainWalkStep { depth, addr, .. } => {
            format!("{{\"depth\":{},\"addr\":{}}}", depth, addr.0)
        }
        SimEvent::ChainWalkStop { steps, reason, .. } => {
            format!("{{\"steps\":{},\"reason\":\"{}\"}}", steps, reason.label())
        }
        SimEvent::FaultInjected { kind, line, .. } => {
            format!("{{\"kind\":\"{}\",\"line\":{}}}", kind.label(), line.0)
        }
        SimEvent::Brownout { active } => format!("{{\"active\":{active}}}"),
        SimEvent::CheckpointSaved { bytes } => format!("{{\"bytes\":{bytes}}}"),
        SimEvent::Restored { fingerprint } => {
            format!("{{\"fingerprint\":{fingerprint}}}")
        }
        SimEvent::Terminal { kind, detail } => format!(
            "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
            kind.label(),
            json_escape(detail)
        ),
    }
}

/// Streams the event stream as Chrome trace-event JSON into `out`.
///
/// This is the allocation-light path for large traces: events are
/// written one at a time, so peak memory is one event's formatting
/// buffer instead of the whole multi-megabyte document (`pfdebug
/// --trace-out` streams through a `BufWriter` directly to the file).
/// The bytes produced are identical to [`chrome_trace`] — the golden
/// byte-stability test covers both via the wrapper.
pub fn chrome_trace_to<W: std::io::Write>(
    events: &[TraceEvent],
    out: &mut W,
) -> std::io::Result<()> {
    out.write_all(b"{\"traceEvents\":[\n")?;
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.write_all(b",\n")?;
        }
        let tid = e.data.sm().map_or(DEVICE_TID, |s| u64::from(s.0));
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
            e.data.name(),
            e.cycle.0,
            tid,
            args_json(&e.data)
        )?;
    }
    out.write_all(b"\n]}\n")
}

/// Renders the event stream as Chrome trace-event JSON.
///
/// Thin wrapper over [`chrome_trace_to`] collecting into a `String`;
/// prefer the streaming form when writing to a file.
///
/// # Examples
///
/// ```
/// use snake_sim::obs::{chrome_trace, SimEvent, TraceEvent};
/// use snake_sim::Cycle;
/// let json = chrome_trace(&[TraceEvent {
///     cycle: Cycle(7),
///     data: SimEvent::Brownout { active: true },
/// }]);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ts\":7"));
/// ```
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = Vec::with_capacity(events.len() * 96 + 32);
    chrome_trace_to(events, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("trace output is ASCII-escaped UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{NocDir, TerminalKind};
    use crate::types::{Cycle, LineAddr, SmId};

    #[test]
    fn escape_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_shape_and_tids() {
        let events = vec![
            TraceEvent {
                cycle: Cycle(5),
                data: SimEvent::NocEnqueue {
                    dir: NocDir::Up,
                    sm: SmId(3),
                    line: LineAddr(9),
                    bytes: 32,
                },
            },
            TraceEvent {
                cycle: Cycle(6),
                data: SimEvent::Terminal {
                    kind: TerminalKind::Completed,
                    detail: "line1\nline2".into(),
                },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"name\":\"NocEnqueue\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains(&format!("\"tid\":{DEVICE_TID}")));
        assert!(json.contains("\"dir\":\"up\""));
        assert!(json.contains("line1\\nline2"));
        // Exactly one comma separator for two events.
        assert_eq!(json.matches("},\n{").count(), 1);
    }

    #[test]
    fn streaming_and_string_forms_are_byte_identical() {
        let events = vec![
            TraceEvent {
                cycle: Cycle(2),
                data: SimEvent::MshrFill {
                    sm: SmId(1),
                    line: LineAddr(4),
                    waiters: 2,
                },
            },
            TraceEvent {
                cycle: Cycle(3),
                data: SimEvent::Brownout { active: false },
            },
        ];
        let mut streamed = Vec::new();
        chrome_trace_to(&events, &mut streamed).unwrap();
        assert_eq!(streamed, chrome_trace(&events).into_bytes());
    }

    #[test]
    fn empty_stream_is_valid() {
        let json = chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
    }

    #[test]
    fn same_input_same_bytes() {
        let events = vec![TraceEvent {
            cycle: Cycle(1),
            data: SimEvent::ThrottleHalt {
                sm: SmId(0),
                bw_utilization: 0.75,
            },
        }];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
        assert!(chrome_trace(&events).contains("\"bw_utilization\":0.750000"));
    }
}

//! Fixed-bucket latency histograms for prefetch-lifecycle attribution.
//!
//! The simulator needs cheap, always-on latency distributions
//! (issue→fill, fill→first-use, lifetime of evicted-unused lines)
//! without allocating per-sample storage. [`LatencyHistogram`] uses
//! 16 power-of-two buckets — `record` is a shift and an increment, and
//! the whole type is `Copy`, so carrying one per L1 costs nothing on
//! the hot path. Percentiles are bucket-resolution upper bounds, which
//! is plenty for "did the fill beat the first use" questions.

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};

/// Number of power-of-two buckets in a [`LatencyHistogram`].
///
/// Bucket 0 holds exactly the value 0; bucket `i` (for `0 < i < 15`)
/// holds values in `[2^(i-1), 2^i)`; the last bucket is an overflow
/// bucket for everything `>= 2^14`.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-size log2-bucketed histogram of cycle latencies.
///
/// # Examples
///
/// ```
/// use snake_sim::obs::LatencyHistogram;
/// let mut h = LatencyHistogram::default();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) <= h.percentile(99.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

/// Bucket index for a value (see [`HISTOGRAM_BUCKETS`]).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let bits = 64 - value.leading_zeros() as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }
}

impl LatencyHistogram {
    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// sample (`p` in `[0, 100]`), clamped to the observed maximum so
    /// a reported percentile never exceeds any real sample. Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target sample, 1-based, ceil so p=100 → count.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return self.bucket_upper_bound(i);
            }
        }
        self.max
    }

    /// Median (`percentile(50.0)`).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Elementwise merge of another histogram into this one.
    /// Associative and commutative, so per-SM histograms can be folded
    /// in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Largest value representable by bucket `i`, clamped to the
    /// observed maximum (the overflow bucket has no artificial bound,
    /// and a final bucket that holds only the largest samples would
    /// otherwise report an upper bound no sample ever reached).
    fn bucket_upper_bound(&self, i: usize) -> u64 {
        if i == 0 {
            0
        } else if i == HISTOGRAM_BUCKETS - 1 {
            self.max
        } else {
            ((1u64 << i) - 1).min(self.max)
        }
    }

    /// Raw bucket counts (for exporters and tests).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Serializes the histogram for a checkpoint.
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            (
                "buckets".into(),
                Value::Arr(self.buckets.iter().map(|&b| Value::u64(b)).collect()),
            ),
            ("count".into(), Value::u64(self.count)),
            ("sum".into(), Value::u64(self.sum)),
            ("max".into(), Value::u64(self.max)),
        ])
    }

    /// Restores the histogram from [`save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing field or a bucket
    /// array of the wrong length.
    ///
    /// [`save_state`]: LatencyHistogram::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let buckets = snapshot::arr_field(v, "buckets")?;
        if buckets.len() != HISTOGRAM_BUCKETS {
            return Err(SnapshotError::malformed(format!(
                "histogram has {} buckets, expected {HISTOGRAM_BUCKETS}",
                buckets.len()
            )));
        }
        for (slot, b) in self.buckets.iter_mut().zip(buckets) {
            *slot = b
                .as_u64()
                .ok_or_else(|| SnapshotError::malformed("non-u64 histogram bucket"))?;
        }
        self.count = snapshot::u64_field(v, "count")?;
        self.sum = snapshot::u64_field(v, "sum")?;
        self.max = snapshot::u64_field(v, "max")?;
        Ok(())
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// Prefetch-lifecycle latency attribution, kept always-on by the
/// unified L1 (recording into a `Copy` histogram is cheaper than the
/// branch structure needed to gate it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchLifecycle {
    /// Cycles from prefetch issue (MSHR allocation) to the fill
    /// arriving in the L1.
    pub issue_to_fill: LatencyHistogram,
    /// Cycles from the fill landing to the first demand use — the
    /// paper's timeliness: small is "just in time", large is "fetched
    /// too early, occupied SRAM for nothing".
    pub fill_to_first_use: LatencyHistogram,
    /// For prefetched lines evicted *without ever being used*: cycles
    /// the dead line sat in the SRAM (allocation to eviction).
    pub lifetime_unused: LatencyHistogram,
}

impl PrefetchLifecycle {
    /// Merges another lifecycle record into this one (per-SM fold).
    pub fn merge(&mut self, other: &PrefetchLifecycle) {
        self.issue_to_fill.merge(&other.issue_to_fill);
        self.fill_to_first_use.merge(&other.fill_to_first_use);
        self.lifetime_unused.merge(&other.lifetime_unused);
    }

    /// Serializes all three histograms for a checkpoint.
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("issue_to_fill".into(), self.issue_to_fill.save_state()),
            (
                "fill_to_first_use".into(),
                self.fill_to_first_use.save_state(),
            ),
            ("lifetime_unused".into(), self.lifetime_unused.save_state()),
        ])
    }

    /// Restores from [`save_state`](PrefetchLifecycle::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.issue_to_fill
            .restore_state(snapshot::field(v, "issue_to_fill")?)?;
        self.fill_to_first_use
            .restore_state(snapshot::field(v, "fill_to_first_use")?)?;
        self.lifetime_unused
            .restore_state(snapshot::field(v, "lifetime_unused")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 13) - 1), 13);
        assert_eq!(bucket_index(1 << 13), 14);
        assert_eq!(bucket_index((1 << 14) - 1), 14);
        // Everything >= 2^14 lands in the overflow bucket.
        assert_eq!(bucket_index(1 << 14), 15);
        assert_eq!(bucket_index(u64::MAX), 15);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        // 100 samples of value 1, then 10 of value 100, then 1 of 5000.
        let mut h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(100);
        }
        h.record(5000);
        assert_eq!(h.count(), 111);
        assert_eq!(h.max(), 5000);
        // p50 (rank 56) and p90 (rank 100) are in the value-1 bucket,
        // whose upper bound is 1.
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p90(), 1);
        // p99 (rank 110) falls among the value-100 samples:
        // bucket 7 covers [64, 128) → upper bound 127.
        assert_eq!(h.p99(), 127);
        // p100 reaches the 5000 sample: bucket 13 covers [4096, 8192),
        // but the bound is clamped to the true maximum.
        assert_eq!(h.percentile(100.0), 5000);
    }

    #[test]
    fn percentile_never_exceeds_the_maximum() {
        // All samples in one bucket: [256, 512) would report 511
        // without clamping, above every real sample.
        let mut h = LatencyHistogram::default();
        for v in [260u64, 270, 273] {
            h.record(v);
        }
        assert_eq!(h.p50(), 273);
        assert_eq!(h.p99(), 273);
    }

    #[test]
    fn overflow_bucket_reports_true_max() {
        let mut h = LatencyHistogram::default();
        h.record(1 << 20);
        assert_eq!(h.percentile(100.0), 1 << 20);
        assert_eq!(h.p50(), 1 << 20);
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let mut h = LatencyHistogram::default();
        for _ in 0..9 {
            h.record(0);
        }
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(100.0), 1);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut c = LatencyHistogram::default();
        for v in [0u64, 1, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 2, 300] {
            b.record(v);
        }
        for v in [70_000u64, 4] {
            c.record(v);
        }

        // (a ⊔ b) ⊔ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // b ⊔ a == a ⊔ b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count(), 9);
        assert_eq!(left.max(), 70_000);
    }

    #[test]
    fn display_is_compact() {
        let mut h = LatencyHistogram::default();
        h.record(10);
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("p50="));
    }

    #[test]
    fn lifecycle_merge_folds_all_three() {
        let mut a = PrefetchLifecycle::default();
        a.issue_to_fill.record(10);
        let mut b = PrefetchLifecycle::default();
        b.fill_to_first_use.record(20);
        b.lifetime_unused.record(30);
        a.merge(&b);
        assert_eq!(a.issue_to_fill.count(), 1);
        assert_eq!(a.fill_to_first_use.count(), 1);
        assert_eq!(a.lifetime_unused.count(), 1);
    }
}

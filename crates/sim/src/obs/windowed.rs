//! Per-window time-series metrics.
//!
//! A [`WindowedMetrics`] collector turns the simulator's cumulative
//! counters into per-window rates: every `window` cycles the GPU hands
//! it a [`WindowTotals`] snapshot, the collector subtracts the previous
//! snapshot and appends a [`MetricsSample`]. The finished
//! [`MetricsSeries`] rides along in
//! [`SimOutcome`](crate::SimOutcome) and can be exported as CSV
//! ([`MetricsSeries::to_csv`]) or rendered as an ASCII timeline
//! ([`MetricsSeries::ascii_timeline`]).

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::stats::StallBreakdown;
use crate::types::Cycle;

/// Cumulative device-wide counters snapshotted at a window boundary.
/// Occupancies and utilization are instantaneous; the rest are
/// monotone totals the collector differences.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowTotals {
    /// Instructions issued since the run started.
    pub instructions: u64,
    /// Demand L1 accesses that hit (cumulative).
    pub l1_hits: u64,
    /// Demand L1 accesses in total (cumulative).
    pub l1_accesses: u64,
    /// MSHR entries currently in flight (all SMs).
    pub mshr_occupancy: usize,
    /// MSHR capacity (all SMs).
    pub mshr_capacity: usize,
    /// Miss-queue entries currently waiting (all SMs).
    pub miss_queue_occupancy: usize,
    /// Miss-queue capacity (all SMs).
    pub miss_queue_capacity: usize,
    /// NoC utilization over the interconnect's own window, `[0, 1]`.
    pub noc_utilization: f64,
    /// Warps currently resident and not retired.
    pub active_warps: usize,
    /// SMs whose prefetcher is currently throttled.
    pub throttled_sms: usize,
    /// Deepest chain-walk depth currently configured across SMs.
    pub max_chain_depth: u32,
    /// Cumulative issue-slot stall taxonomy (all SMs); the collector
    /// differences it into per-window fractions.
    pub stall: StallBreakdown,
}

/// One row of the time series: rates over a single window plus
/// instantaneous gauges at its closing edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSample {
    /// Cycle at the closing edge of the window.
    pub cycle: u64,
    /// Instructions per cycle over the window.
    pub ipc: f64,
    /// L1 demand hit rate over the window, `[0, 1]` (0 when no
    /// accesses fell in the window).
    pub l1_hit_rate: f64,
    /// MSHR occupancy fraction, `[0, 1]`.
    pub mshr_occupancy: f64,
    /// Miss-queue occupancy fraction, `[0, 1]`.
    pub miss_queue_occupancy: f64,
    /// NoC utilization, `[0, 1]`.
    pub noc_utilization: f64,
    /// Resident warps at the window edge.
    pub active_warps: usize,
    /// Throttled SMs at the window edge.
    pub throttled_sms: usize,
    /// Max chain depth across SMs at the window edge.
    pub chain_depth: u32,
    /// Fraction of the window's issue slots that issued, `[0, 1]`.
    pub stall_issued: f64,
    /// Fraction with no runnable warp in the scheduler's partition.
    pub stall_no_warp: f64,
    /// Fraction stalled absorbing memory-use latency (hit/store).
    pub stall_barrier: f64,
    /// Fraction stalled on a non-memory data dependency.
    pub stall_scoreboard: f64,
    /// Fraction stalled waiting on outstanding loads (stall-on-use).
    pub stall_mem_data: f64,
    /// Fraction rejected by a full MSHR (or no evictable way).
    pub stall_mem_mshr: f64,
    /// Fraction rejected by a full miss queue (NoC keeping up).
    pub stall_mem_missq: f64,
    /// Fraction rejected by a full miss queue under NoC backpressure.
    pub stall_mem_noc: f64,
}

/// The collected time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSeries {
    /// Sampling period in cycles.
    pub window: u64,
    /// One sample per elapsed window, in time order.
    pub samples: Vec<MetricsSample>,
    /// Label of a non-`Completed` stop reason (`"budget_exceeded"`,
    /// `"cycle_limit"`, `"deadlock"`), set when the run was truncated —
    /// so a series that simply ends can be told apart from one whose
    /// run was cut short. `None` for converged runs.
    pub stop: Option<String>,
}

fn fraction(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl MetricsSeries {
    /// Renders the series as CSV with a header row. Floats use six
    /// decimal places so output is byte-stable across runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cycle,ipc,l1_hit_rate,mshr_occupancy,miss_queue_occupancy,\
             noc_utilization,active_warps,throttled_sms,chain_depth,\
             stall_issued,stall_no_warp,stall_barrier,stall_scoreboard,\
             stall_mem_data,stall_mem_mshr,stall_mem_missq,stall_mem_noc\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},\
                 {:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                s.cycle,
                s.ipc,
                s.l1_hit_rate,
                s.mshr_occupancy,
                s.miss_queue_occupancy,
                s.noc_utilization,
                s.active_warps,
                s.throttled_sms,
                s.chain_depth,
                s.stall_issued,
                s.stall_no_warp,
                s.stall_barrier,
                s.stall_scoreboard,
                s.stall_mem_data,
                s.stall_mem_mshr,
                s.stall_mem_missq,
                s.stall_mem_noc
            ));
        }
        if let Some(stop) = &self.stop {
            out.push_str(&format!("# stop={stop}\n"));
        }
        out
    }

    /// Renders a fixed-width ASCII timeline: one column per sample,
    /// one row per tracked signal. Utilization-style rows use a
    /// ten-level ramp (` .:-=+*#%@`); the throttle row marks windows
    /// where any SM was throttled with `#`.
    pub fn ascii_timeline(&self) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let level = |v: f64| {
            let idx = (v.clamp(0.0, 1.0) * 9.0).round() as usize;
            RAMP[idx.min(9)]
        };
        let peak_ipc = self
            .samples
            .iter()
            .map(|s| s.ipc)
            .fold(0.0_f64, f64::max)
            .max(1e-9);

        let mut throttle = String::new();
        let mut noc = String::new();
        let mut hit = String::new();
        let mut ipc = String::new();
        for s in &self.samples {
            throttle.push(if s.throttled_sms > 0 { '#' } else { '.' });
            noc.push(level(s.noc_utilization));
            hit.push(level(s.l1_hit_rate));
            ipc.push(level(s.ipc / peak_ipc));
        }
        let span = self.samples.last().map_or(0, |s| s.cycle);
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {} windows x {} cycles (through cycle {}){}\n",
            self.samples.len(),
            self.window,
            span,
            match &self.stop {
                Some(stop) => format!(" — truncated: {stop}"),
                None => String::new(),
            }
        ));
        out.push_str(&format!("throttle |{throttle}|\n"));
        out.push_str(&format!("noc util |{noc}|\n"));
        out.push_str(&format!("hit rate |{hit}|\n"));
        out.push_str(&format!(
            "ipc/peak |{ipc}| (peak {:.2})\n",
            if peak_ipc <= 1e-9 { 0.0 } else { peak_ipc }
        ));
        out
    }
}

/// Incremental collector the GPU drives once per `window` cycles.
#[derive(Debug, Clone, Default)]
pub struct WindowedMetrics {
    series: MetricsSeries,
    last_cycle: u64,
    last_instructions: u64,
    last_l1_hits: u64,
    last_l1_accesses: u64,
    last_stall: StallBreakdown,
}

impl WindowedMetrics {
    /// Creates a collector sampling every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (rejected earlier by
    /// [`GpuConfig::validate`](crate::GpuConfig::validate)).
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "metrics window must be non-zero");
        WindowedMetrics {
            series: MetricsSeries {
                window,
                samples: Vec::new(),
                stop: None,
            },
            last_cycle: 0,
            last_instructions: 0,
            last_l1_hits: 0,
            last_l1_accesses: 0,
            last_stall: StallBreakdown::default(),
        }
    }

    /// Sampling period in cycles.
    pub fn window(&self) -> u64 {
        self.series.window
    }

    /// The most recently closed window's sample, if any — the row the
    /// GPU forwards to a live telemetry ring right after
    /// [`record`](WindowedMetrics::record).
    pub fn last_sample(&self) -> Option<&MetricsSample> {
        self.series.samples.last()
    }

    /// Closes the window ending at `cycle` with the given cumulative
    /// snapshot and appends a sample.
    pub fn record(&mut self, cycle: Cycle, totals: &WindowTotals) {
        let elapsed = cycle.0.saturating_sub(self.last_cycle).max(1);
        let d_instr = totals.instructions.saturating_sub(self.last_instructions);
        let d_hits = totals.l1_hits.saturating_sub(self.last_l1_hits);
        let d_acc = totals.l1_accesses.saturating_sub(self.last_l1_accesses);
        let d_sched = totals
            .stall
            .scheduler_cycles
            .saturating_sub(self.last_stall.scheduler_cycles);
        let stall_frac = |cur: u64, prev: u64| {
            if d_sched == 0 {
                0.0
            } else {
                cur.saturating_sub(prev) as f64 / d_sched as f64
            }
        };
        self.series.samples.push(MetricsSample {
            cycle: cycle.0,
            ipc: d_instr as f64 / elapsed as f64,
            l1_hit_rate: if d_acc == 0 {
                0.0
            } else {
                d_hits as f64 / d_acc as f64
            },
            mshr_occupancy: fraction(totals.mshr_occupancy, totals.mshr_capacity),
            miss_queue_occupancy: fraction(totals.miss_queue_occupancy, totals.miss_queue_capacity),
            noc_utilization: totals.noc_utilization,
            active_warps: totals.active_warps,
            throttled_sms: totals.throttled_sms,
            chain_depth: totals.max_chain_depth,
            stall_issued: stall_frac(totals.stall.issued, self.last_stall.issued),
            stall_no_warp: stall_frac(totals.stall.no_warp, self.last_stall.no_warp),
            stall_barrier: stall_frac(totals.stall.barrier, self.last_stall.barrier),
            stall_scoreboard: stall_frac(totals.stall.scoreboard, self.last_stall.scoreboard),
            stall_mem_data: stall_frac(totals.stall.mem_data, self.last_stall.mem_data),
            stall_mem_mshr: stall_frac(
                totals.stall.mem_struct_mshr,
                self.last_stall.mem_struct_mshr,
            ),
            stall_mem_missq: stall_frac(
                totals.stall.mem_struct_missq,
                self.last_stall.mem_struct_missq,
            ),
            stall_mem_noc: stall_frac(totals.stall.mem_struct_noc, self.last_stall.mem_struct_noc),
        });
        self.last_cycle = cycle.0;
        self.last_instructions = totals.instructions;
        self.last_l1_hits = totals.l1_hits;
        self.last_l1_accesses = totals.l1_accesses;
        self.last_stall = totals.stall;
    }

    /// Marks the series as belonging to a truncated run (any
    /// non-`Completed` stop reason), by its stable label.
    pub fn mark_stop(&mut self, label: impl Into<String>) {
        self.series.stop = Some(label.into());
    }

    /// Consumes the collector and returns the series.
    pub fn finish(self) -> MetricsSeries {
        self.series
    }

    /// Serializes the collected samples and differencing cursors for a
    /// checkpoint. The sampling period itself is config-derived and not
    /// captured; the restored collector must be built with the same
    /// window (guaranteed by the checkpoint's config fingerprint).
    pub fn save_state(&self) -> Value {
        let samples = self
            .series
            .samples
            .iter()
            .map(|s| {
                Value::Arr(vec![
                    Value::u64(s.cycle),
                    Value::f64(s.ipc),
                    Value::f64(s.l1_hit_rate),
                    Value::f64(s.mshr_occupancy),
                    Value::f64(s.miss_queue_occupancy),
                    Value::f64(s.noc_utilization),
                    Value::u64(s.active_warps as u64),
                    Value::u64(s.throttled_sms as u64),
                    Value::u64(u64::from(s.chain_depth)),
                    Value::f64(s.stall_issued),
                    Value::f64(s.stall_no_warp),
                    Value::f64(s.stall_barrier),
                    Value::f64(s.stall_scoreboard),
                    Value::f64(s.stall_mem_data),
                    Value::f64(s.stall_mem_mshr),
                    Value::f64(s.stall_mem_missq),
                    Value::f64(s.stall_mem_noc),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("samples".into(), Value::Arr(samples)),
            (
                "stop".into(),
                match &self.series.stop {
                    Some(s) => Value::str(s.clone()),
                    None => Value::Null,
                },
            ),
            ("last_cycle".into(), Value::u64(self.last_cycle)),
            (
                "last_instructions".into(),
                Value::u64(self.last_instructions),
            ),
            ("last_l1_hits".into(), Value::u64(self.last_l1_hits)),
            ("last_l1_accesses".into(), Value::u64(self.last_l1_accesses)),
            ("last_stall".into(), self.last_stall.save_state()),
        ])
    }

    /// Restores from [`save_state`](WindowedMetrics::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or malformed field;
    /// nothing is applied until the whole sample array decodes.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let mut samples = Vec::new();
        for (i, entry) in snapshot::arr_field(v, "samples")?.iter().enumerate() {
            let row = entry
                .as_arr()
                .filter(|r| r.len() == 17)
                .ok_or_else(|| SnapshotError::malformed(format!("metrics sample {i}")))?;
            let u = |j: usize| {
                row[j]
                    .as_u64()
                    .ok_or_else(|| SnapshotError::malformed(format!("metrics sample {i} col {j}")))
            };
            let f = |j: usize| {
                row[j]
                    .as_f64()
                    .ok_or_else(|| SnapshotError::malformed(format!("metrics sample {i} col {j}")))
            };
            samples.push(MetricsSample {
                cycle: u(0)?,
                ipc: f(1)?,
                l1_hit_rate: f(2)?,
                mshr_occupancy: f(3)?,
                miss_queue_occupancy: f(4)?,
                noc_utilization: f(5)?,
                active_warps: u(6)? as usize,
                throttled_sms: u(7)? as usize,
                chain_depth: u(8)? as u32,
                stall_issued: f(9)?,
                stall_no_warp: f(10)?,
                stall_barrier: f(11)?,
                stall_scoreboard: f(12)?,
                stall_mem_data: f(13)?,
                stall_mem_mshr: f(14)?,
                stall_mem_missq: f(15)?,
                stall_mem_noc: f(16)?,
            });
        }
        let stop = match snapshot::field(v, "stop")? {
            Value::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or_else(|| SnapshotError::malformed("metrics stop label"))?
                    .to_string(),
            ),
        };
        self.series.samples = samples;
        self.series.stop = stop;
        self.last_cycle = snapshot::u64_field(v, "last_cycle")?;
        self.last_instructions = snapshot::u64_field(v, "last_instructions")?;
        self.last_l1_hits = snapshot::u64_field(v, "last_l1_hits")?;
        self.last_l1_accesses = snapshot::u64_field(v, "last_l1_accesses")?;
        self.last_stall
            .restore_state(snapshot::field(v, "last_stall")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(instr: u64, hits: u64, acc: u64) -> WindowTotals {
        WindowTotals {
            instructions: instr,
            l1_hits: hits,
            l1_accesses: acc,
            mshr_occupancy: 4,
            mshr_capacity: 16,
            miss_queue_occupancy: 1,
            miss_queue_capacity: 4,
            noc_utilization: 0.5,
            active_warps: 8,
            throttled_sms: 1,
            max_chain_depth: 2,
            stall: StallBreakdown::default(),
        }
    }

    #[test]
    fn deltas_not_totals() {
        let mut m = WindowedMetrics::new(100);
        m.record(Cycle(100), &totals(200, 50, 100));
        m.record(Cycle(200), &totals(260, 80, 200));
        let s = m.finish();
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].ipc, 2.0);
        assert_eq!(s.samples[0].l1_hit_rate, 0.5);
        // Second window: 60 instructions / 100 cycles, 30 hits / 100.
        assert_eq!(s.samples[1].ipc, 0.6);
        assert_eq!(s.samples[1].l1_hit_rate, 0.3);
        assert_eq!(s.samples[1].mshr_occupancy, 0.25);
        assert_eq!(s.samples[1].miss_queue_occupancy, 0.25);
    }

    #[test]
    fn empty_window_is_zero_not_nan() {
        let mut m = WindowedMetrics::new(10);
        m.record(Cycle(10), &totals(0, 0, 0));
        let s = m.finish();
        assert_eq!(s.samples[0].ipc, 0.0);
        assert_eq!(s.samples[0].l1_hit_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = WindowedMetrics::new(0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut m = WindowedMetrics::new(10);
        m.record(Cycle(10), &totals(10, 5, 10));
        let csv = m.finish().to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("cycle,ipc,l1_hit_rate"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("10,1.000000,0.500000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn stall_fractions_are_window_deltas() {
        let mut m = WindowedMetrics::new(10);
        let mut t = totals(10, 5, 10);
        t.stall = StallBreakdown {
            issued: 6,
            mem_data: 4,
            scheduler_cycles: 10,
            ..StallBreakdown::default()
        };
        m.record(Cycle(10), &t);
        // Second window adds 10 scheduler-cycles: 2 issued, 8 MSHR.
        let mut t2 = totals(20, 10, 20);
        t2.stall = StallBreakdown {
            issued: 8,
            mem_data: 4,
            mem_struct_mshr: 8,
            scheduler_cycles: 20,
            ..StallBreakdown::default()
        };
        m.record(Cycle(20), &t2);
        let s = m.finish();
        assert_eq!(s.samples[0].stall_issued, 0.6);
        assert_eq!(s.samples[0].stall_mem_data, 0.4);
        assert_eq!(s.samples[1].stall_issued, 0.2);
        assert_eq!(s.samples[1].stall_mem_data, 0.0);
        assert_eq!(s.samples[1].stall_mem_mshr, 0.8);
        // The CSV carries all eight fraction columns.
        let csv = s.to_csv();
        assert!(csv.lines().next().unwrap().ends_with("stall_mem_noc"));
    }

    #[test]
    fn ascii_timeline_marks_throttle() {
        let mut m = WindowedMetrics::new(10);
        m.record(Cycle(10), &totals(10, 5, 10));
        m.record(
            Cycle(20),
            &WindowTotals {
                throttled_sms: 0,
                ..totals(20, 10, 20)
            },
        );
        let art = m.finish().ascii_timeline();
        assert!(art.contains("throttle |#.|"), "got:\n{art}");
        assert!(art.contains("noc util |"));
        assert!(art.contains("hit rate |"));
    }

    #[test]
    fn timeline_of_empty_series_is_harmless() {
        let s = MetricsSeries {
            window: 10,
            samples: Vec::new(),
            stop: None,
        };
        let art = s.ascii_timeline();
        assert!(art.contains("0 windows"));
    }

    #[test]
    fn truncation_marker_reaches_csv_and_timeline() {
        let mut m = WindowedMetrics::new(10);
        m.record(Cycle(10), &totals(10, 5, 10));
        m.mark_stop("budget_exceeded");
        let series = m.finish();
        assert_eq!(series.stop.as_deref(), Some("budget_exceeded"));
        assert!(series.to_csv().ends_with("# stop=budget_exceeded\n"));
        assert!(series
            .ascii_timeline()
            .contains("truncated: budget_exceeded"));
        // Converged series carry no marker.
        let mut m = WindowedMetrics::new(10);
        m.record(Cycle(10), &totals(10, 5, 10));
        let series = m.finish();
        assert!(!series.to_csv().contains('#'));
        assert!(!series.ascii_timeline().contains("truncated"));
    }
}

//! Bounded single-producer telemetry ring with multi-subscriber
//! drop accounting.
//!
//! A [`Ring`] carries records from the simulation thread to any number
//! of subscribers without ever blocking the producer: when a slow (or
//! absent) consumer lets the buffer fill, the oldest records are
//! overwritten and the loss is *counted*, never silent. Every record
//! ever produced gets a monotonically increasing sequence number, and a
//! [`Subscription`] reports, on every [`drain`](Subscription::drain),
//! exactly how many records it missed — so a consumer can always state
//! "I saw records `a..b` and lost exactly `n` before them".
//!
//! Two properties matter more than throughput here:
//!
//! - **No observer effect.** With zero subscribers the producer path is
//!   a sequence-counter increment under an uncontended mutex; the
//!   record itself is never constructed (see [`Ring::push`]'s lazy
//!   closure). Simulation outcomes are bit-identical with and without a
//!   ring attached — enforced by the no-observer-effect tests in
//!   `tests/observability.rs`.
//! - **Deterministic drop accounting.** Drops depend only on the
//!   interleaving of `push` and `drain` calls, and the dropped count a
//!   subscriber observes is exact by construction: records occupy
//!   sequence numbers, retained records form the contiguous suffix, so
//!   the gap between a cursor and the oldest retained record *is* the
//!   loss.
//!
//! The concrete record type used by the GPU is [`TelemetryRecord`]
//! (trace events and per-window metric rows multiplexed on one ring,
//! see [`TelemetryRing`]), attached via
//! [`Gpu::attach_telemetry`](crate::Gpu::attach_telemetry).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use super::windowed::MetricsSample;
use super::{TraceEvent, TraceSink};

/// Interior state shared by the producer and all subscriptions.
#[derive(Debug)]
struct RingState<T> {
    /// Maximum number of retained records.
    cap: usize,
    /// Retained records; the back holds sequence `head - 1`, the front
    /// holds `head - buf.len()`.
    buf: VecDeque<T>,
    /// Sequence number of the *next* record to be produced; equals the
    /// total number of records ever pushed.
    head: u64,
    /// Live subscription count — the producer skips record
    /// construction and storage entirely when this is zero.
    subscribers: usize,
    /// Set by the producer when the stream is complete; a fully
    /// drained subscription on a closed ring reports `done`.
    closed: bool,
}

/// A bounded, sequence-numbered broadcast ring (see module docs).
///
/// Cheaply cloneable handle; all clones share one buffer.
#[derive(Debug)]
pub struct Ring<T>(Arc<Mutex<RingState<T>>>);

impl<T> Clone for Ring<T> {
    fn clone(&self) -> Self {
        Ring(Arc::clone(&self.0))
    }
}

/// One subscriber's cursor into a [`Ring`].
///
/// Dropping the subscription unregisters it, restoring the producer's
/// zero-subscriber fast path when it was the last one.
#[derive(Debug)]
pub struct Subscription<T> {
    state: Arc<Mutex<RingState<T>>>,
    /// Next sequence number this subscriber wants.
    cursor: u64,
    /// Total records this subscriber has lost so far.
    dropped: u64,
}

/// The result of one [`Subscription::drain`]: a contiguous run of
/// records plus exact loss accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Drained<T> {
    /// Sequence number of `records[0]` (meaningless when empty).
    pub first_seq: u64,
    /// The drained records, in production order.
    pub records: Vec<T>,
    /// Records lost since the previous drain (overwritten before this
    /// subscriber got to them).
    pub dropped: u64,
    /// True when the ring has been closed by the producer *and* this
    /// subscription has consumed everything it will ever see.
    pub done: bool,
}

impl<T: Clone> Ring<T> {
    /// Creates a ring retaining at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be non-zero");
        Ring(Arc::new(Mutex::new(RingState {
            cap,
            buf: VecDeque::new(),
            head: 0,
            subscribers: 0,
            closed: false,
        })))
    }

    fn lock(&self) -> MutexGuard<'_, RingState<T>> {
        // The only way to poison this lock is a panicking subscriber
        // mid-drain; the producer must keep counting regardless.
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Produces one record. The closure runs — and the record is
    /// stored — only when at least one subscription is live; with zero
    /// subscribers only the sequence counter advances, so the record's
    /// construction cost is never paid.
    pub fn push(&self, make: impl FnOnce() -> T) {
        let mut s = self.lock();
        if s.subscribers > 0 {
            if s.buf.len() == s.cap {
                s.buf.pop_front();
            }
            let record = make();
            s.buf.push_back(record);
        }
        s.head += 1;
    }

    /// Marks the stream complete. Subsequent pushes still count (and
    /// are delivered), but a fully-drained subscription now reports
    /// [`Drained::done`].
    pub fn close(&self) {
        self.lock().closed = true;
    }

    /// Total records ever produced (delivered or not).
    pub fn produced(&self) -> u64 {
        self.lock().head
    }

    /// Number of records currently retained in the buffer.
    pub fn buffered(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether [`close`](Ring::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Subscribes starting at the *current* position: the first drain
    /// sees only records produced after this call, and nothing earlier
    /// counts as dropped. This is the mid-run "tail" semantics.
    pub fn subscribe(&self) -> Subscription<T> {
        let mut s = self.lock();
        s.subscribers += 1;
        Subscription {
            state: Arc::clone(&self.0),
            cursor: s.head,
            dropped: 0,
        }
    }

    /// Subscribes with the cursor placed at sequence `seq` (clamped to
    /// the current head). Records from `seq` that have already been
    /// overwritten — or were produced while no subscriber was live —
    /// are counted as dropped on the first drain, keeping the
    /// accounting exact from the chosen origin. `subscribe_from(0)`
    /// accounts for the entire stream since the ring was created.
    pub fn subscribe_from(&self, seq: u64) -> Subscription<T> {
        let mut s = self.lock();
        s.subscribers += 1;
        Subscription {
            state: Arc::clone(&self.0),
            cursor: seq.min(s.head),
            dropped: 0,
        }
    }
}

impl<T: Clone> Subscription<T> {
    fn lock(&self) -> MutexGuard<'_, RingState<T>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Takes every record available to this subscriber, advancing the
    /// cursor past them, and reports exactly how many records were
    /// lost since the previous drain.
    pub fn drain(&mut self) -> Drained<T> {
        let s = self.lock();
        let oldest = s.head - s.buf.len() as u64;
        let dropped = oldest.saturating_sub(self.cursor);
        let start = self.cursor.max(oldest);
        let first_seq = start;
        let records: Vec<T> = s
            .buf
            .iter()
            .skip((start - oldest) as usize)
            .cloned()
            .collect();
        let done = s.closed && start + records.len() as u64 == s.head;
        drop(s);
        self.cursor = first_seq + records.len() as u64;
        self.dropped += dropped;
        Drained {
            first_seq,
            records,
            dropped,
            done,
        }
    }

    /// Total records this subscription has lost since it was created.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Sequence number of the next record this subscription will see.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

impl<T> Drop for Subscription<T> {
    fn drop(&mut self) {
        let mut s = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        s.subscribers -= 1;
        if s.subscribers == 0 {
            // Nobody left to deliver to: release the retained records
            // but keep the counters, so a later subscriber's
            // `subscribe_from(0)` accounting stays exact.
            s.buf.clear();
        }
    }
}

/// One record on the live telemetry stream: either a cycle-stamped
/// trace event or a closed per-window metrics row.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryRecord {
    /// A [`TraceEvent`] as a [`TraceSink`] would receive it.
    Event(TraceEvent),
    /// A [`MetricsSample`] at the closing edge of a metrics window.
    Window(MetricsSample),
}

impl TelemetryRecord {
    /// Cycle the record is stamped with.
    pub fn cycle(&self) -> u64 {
        match self {
            TelemetryRecord::Event(e) => e.cycle.0,
            TelemetryRecord::Window(s) => s.cycle,
        }
    }
}

/// The ring type carried by [`Gpu::attach_telemetry`](crate::Gpu::attach_telemetry).
pub type TelemetryRing = Ring<TelemetryRecord>;

/// A [`TraceSink`] adapter that forwards every trace event into a
/// [`TelemetryRing`] — this is how full event streaming (as opposed to
/// window rows only) reaches live subscribers.
#[derive(Debug)]
pub struct RingSink {
    ring: TelemetryRing,
}

impl RingSink {
    /// Wraps a ring handle.
    pub fn new(ring: TelemetryRing) -> Self {
        RingSink { ring }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.ring.push(|| TelemetryRecord::Event(event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(d: &Drained<u64>) -> Vec<u64> {
        (d.first_seq..d.first_seq + d.records.len() as u64).collect()
    }

    #[test]
    fn overflow_counts_drops_exactly() {
        let ring: Ring<u64> = Ring::new(4);
        let mut sub = ring.subscribe();
        for i in 0..10 {
            ring.push(|| i);
        }
        let d = sub.drain();
        // Capacity 4, ten pushed: the first six are gone, counted.
        assert_eq!(d.dropped, 6);
        assert_eq!(d.first_seq, 6);
        assert_eq!(d.records, vec![6, 7, 8, 9]);
        assert_eq!(sub.total_dropped(), 6);
        assert_eq!(d.records.len() as u64 + d.dropped, ring.produced());
    }

    #[test]
    fn wraparound_preserves_production_order() {
        let ring: Ring<u64> = Ring::new(3);
        let mut sub = ring.subscribe();
        for i in 0..5 {
            ring.push(|| i * 10);
        }
        let d = sub.drain();
        assert_eq!(d.records, vec![20, 30, 40]);
        assert_eq!(seqs(&d), vec![2, 3, 4]);
        // Keep wrapping: the deque must stay in order across many laps.
        for i in 5..23 {
            ring.push(|| i * 10);
        }
        let d = sub.drain();
        assert_eq!(d.records, vec![200, 210, 220]);
        assert_eq!(d.dropped, 15);
    }

    #[test]
    fn zero_subscriber_fast_path_stores_nothing_but_counts() {
        let ring: Ring<String> = Ring::new(8);
        let mut built = 0u32;
        for _ in 0..100 {
            ring.push(|| {
                built += 1;
                "expensive".to_string()
            });
        }
        assert_eq!(built, 0, "records must not be constructed");
        assert_eq!(ring.buffered(), 0);
        assert_eq!(ring.produced(), 100);
        // A later subscriber accounting from the origin sees the
        // unobserved stretch as (exactly) dropped.
        let mut sub = ring.subscribe_from(0);
        let d = sub.drain();
        assert_eq!(d.dropped, 100);
        assert!(d.records.is_empty());
    }

    #[test]
    fn subscribe_starts_at_now_subscribe_from_accounts_backlog() {
        let ring: Ring<u64> = Ring::new(4);
        {
            let _hold = ring.subscribe(); // keep records flowing
            for i in 0..6 {
                ring.push(|| i);
            }
            let mut now = ring.subscribe();
            let d = now.drain();
            assert_eq!(d.dropped, 0, "nothing before subscribe() counts");
            assert!(d.records.is_empty());
            ring.push(|| 6);
            let d = now.drain();
            assert_eq!(d.records, vec![6]);
        }
        let mut origin = ring.subscribe_from(0);
        let d = origin.drain();
        assert_eq!(d.dropped + d.records.len() as u64, ring.produced());
    }

    #[test]
    fn close_marks_done_only_when_fully_drained() {
        let ring: Ring<u64> = Ring::new(4);
        let mut sub = ring.subscribe();
        ring.push(|| 1);
        ring.close();
        assert!(ring.is_closed());
        ring.push(|| 2); // still counted and delivered after close
        let d = sub.drain();
        assert_eq!(d.records, vec![1, 2]);
        assert!(d.done);
        let d = sub.drain();
        assert!(d.records.is_empty());
        assert!(d.done);
    }

    #[test]
    fn last_unsubscribe_releases_buffer_and_keeps_accounting() {
        let ring: Ring<u64> = Ring::new(8);
        let sub = ring.subscribe();
        for i in 0..5 {
            ring.push(|| i);
        }
        assert_eq!(ring.buffered(), 5);
        drop(sub);
        assert_eq!(ring.buffered(), 0);
        assert_eq!(ring.produced(), 5);
        let mut late = ring.subscribe_from(0);
        assert_eq!(late.drain().dropped, 5);
    }

    #[test]
    fn ring_sink_forwards_events() {
        use crate::obs::SimEvent;
        use crate::types::Cycle;
        let ring = TelemetryRing::new(8);
        let mut sub = ring.subscribe();
        let mut sink = RingSink::new(ring.clone());
        sink.record(&TraceEvent {
            cycle: Cycle(7),
            data: SimEvent::Brownout { active: true },
        });
        let d = sub.drain();
        assert_eq!(d.records.len(), 1);
        assert_eq!(d.records[0].cycle(), 7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: Ring<u64> = Ring::new(0);
    }
}

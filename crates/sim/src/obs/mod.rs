//! Cycle-resolved observability: typed trace events, windowed
//! time-series metrics, and latency histograms.
//!
//! The simulator's aggregate [`SimStats`](crate::SimStats) answer "how
//! much"; this module answers "when". Components buffer cycle-stamped
//! [`TraceEvent`]s only while a [`TraceSink`] is attached (see
//! [`Gpu::attach_sink`](crate::Gpu::attach_sink)) — the disabled path
//! is a single `Option` branch per emission site, so tracing is
//! zero-cost when off. Three layers:
//!
//! - **Events** ([`SimEvent`]): every state transition worth seeing on
//!   a timeline — warp issue/stall/unstall, L1 outcomes, MSHR
//!   allocate/merge/fill, NoC enqueue/dequeue, throttle halt/resume,
//!   the full prefetch lifecycle, Snake chain walks, injected faults,
//!   and a terminal event describing how the run ended.
//! - **Windowed metrics** ([`windowed`]): per-N-cycle samples of IPC,
//!   hit rate, occupancies, NoC utilization, throttle state and chain
//!   depth, collected into [`SimOutcome`](crate::SimOutcome).
//! - **Lifecycle histograms** ([`hist`]): issue→fill, fill→first-use
//!   and lifetime-of-unused distributions with p50/p90/p99.
//!
//! Exporters: [`chrome::chrome_trace`] renders events as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`),
//! [`windowed::MetricsSeries::to_csv`] dumps the time series, and
//! [`windowed::MetricsSeries::ascii_timeline`] draws a terminal
//! timeline of throttle state and hit rate.

pub mod chrome;
pub mod hist;
pub mod ring;
pub mod windowed;

pub use chrome::{chrome_trace, chrome_trace_to};
pub use hist::{LatencyHistogram, PrefetchLifecycle, HISTOGRAM_BUCKETS};
pub use ring::{Drained, Ring, RingSink, Subscription, TelemetryRecord, TelemetryRing};
pub use windowed::{MetricsSample, MetricsSeries, WindowTotals, WindowedMetrics};

use crate::stats::AccessOutcome;
use crate::types::{Address, Cycle, LineAddr, Pc, SmId, WarpId};

/// Direction of travel on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocDir {
    /// L1 → L2 (requests and stores).
    Up,
    /// L2 → L1 (fill responses).
    Down,
}

impl NocDir {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            NocDir::Up => "up",
            NocDir::Down => "down",
        }
    }
}

/// Why a prefetch candidate emitted by the mechanism was not issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchDropReason {
    /// The line was already present or already in flight.
    Redundant,
    /// The L1 refused it: MSHR/miss-queue full or no evictable way.
    Rejected,
}

impl PrefetchDropReason {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchDropReason::Redundant => "redundant",
            PrefetchDropReason::Rejected => "rejected",
        }
    }
}

/// Why a Snake chain walk stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStop {
    /// No tail-table entry to continue the chain.
    NoEntry,
    /// The throttle-controlled depth limit was reached.
    DepthLimit,
    /// The throttle suppressed the walk entirely.
    Throttled,
}

impl WalkStop {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            WalkStop::NoEntry => "no_entry",
            WalkStop::DepthLimit => "depth_limit",
            WalkStop::Throttled => "throttled",
        }
    }
}

/// Kind of injected memory-response fault (mirrors the fault model in
/// [`crate::fault`]; brownouts are reported separately as
/// [`SimEvent::Brownout`] transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Response silently dropped.
    Drop,
    /// Response delivered twice.
    Duplicate,
    /// Response delayed by extra cycles.
    Delay,
}

impl FaultKind {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
        }
    }
}

/// How the simulated run ended (the last event of every trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalKind {
    /// All CTAs retired and the memory system drained.
    Completed,
    /// The configured `max_cycles` safety net ran out.
    CycleLimit,
    /// The supervisor-imposed `cycle_budget` ran out: a planned
    /// truncation, not a runaway; the detail names the budget.
    BudgetExceeded,
    /// The watchdog tripped; the detail carries the deadlock census.
    Deadlock,
    /// The invariant auditor found violations; the detail lists them.
    AuditFail,
}

impl TerminalKind {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            TerminalKind::Completed => "completed",
            TerminalKind::CycleLimit => "cycle_limit",
            TerminalKind::BudgetExceeded => "budget_exceeded",
            TerminalKind::Deadlock => "deadlock",
            TerminalKind::AuditFail => "audit_fail",
        }
    }
}

/// One typed simulator event. Every variant carries enough payload to
/// be useful on a timeline without a join against other streams.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A warp issued an instruction.
    WarpIssue {
        /// SM the warp runs on.
        sm: SmId,
        /// SM-local warp id (trace index).
        warp: WarpId,
    },
    /// A warp blocked waiting on outstanding memory responses.
    WarpStall {
        /// SM the warp runs on.
        sm: SmId,
        /// SM-local warp id (trace index).
        warp: WarpId,
    },
    /// A previously stalled warp became issuable again.
    WarpUnstall {
        /// SM the warp runs on.
        sm: SmId,
        /// SM-local warp id (trace index).
        warp: WarpId,
    },
    /// A demand access was classified by the L1.
    L1Access {
        /// SM owning the L1.
        sm: SmId,
        /// Warp that executed the load.
        warp: WarpId,
        /// Accessed line.
        line: LineAddr,
        /// Hit / miss / reservation-fail classification.
        outcome: AccessOutcome,
    },
    /// A new MSHR entry was allocated for a miss.
    MshrAllocate {
        /// SM owning the MSHR file.
        sm: SmId,
        /// Missing line.
        line: LineAddr,
        /// Whether the allocation is for a prefetch (vs a demand miss).
        prefetch: bool,
    },
    /// A demand miss merged into an existing MSHR entry.
    MshrMerge {
        /// SM owning the MSHR file.
        sm: SmId,
        /// Line already in flight.
        line: LineAddr,
        /// Warp that merged.
        warp: WarpId,
    },
    /// A fill response completed an MSHR entry.
    MshrFill {
        /// SM owning the MSHR file.
        sm: SmId,
        /// Filled line.
        line: LineAddr,
        /// Warps that were waiting on the entry.
        waiters: u32,
    },
    /// A packet was accepted by the interconnect.
    NocEnqueue {
        /// Travel direction.
        dir: NocDir,
        /// SM endpoint of the packet.
        sm: SmId,
        /// Line the packet concerns.
        line: LineAddr,
        /// Bytes charged against the bandwidth budget.
        bytes: u64,
    },
    /// A packet left the interconnect after its latency.
    NocDequeue {
        /// Travel direction.
        dir: NocDir,
        /// SM endpoint of the packet.
        sm: SmId,
        /// Line the packet concerns.
        line: LineAddr,
    },
    /// The prefetch throttle engaged on an SM (bandwidth ≥ halt
    /// threshold, or a space overrun).
    ThrottleHalt {
        /// SM whose prefetcher halted.
        sm: SmId,
        /// NoC utilization at the transition.
        bw_utilization: f64,
    },
    /// The prefetch throttle released on an SM.
    ThrottleResume {
        /// SM whose prefetcher resumed.
        sm: SmId,
        /// NoC utilization at the transition.
        bw_utilization: f64,
    },
    /// A prefetch was accepted by the L1 and sent to memory.
    PrefetchIssued {
        /// Issuing SM.
        sm: SmId,
        /// Prefetched line.
        line: LineAddr,
    },
    /// A prefetch candidate was discarded.
    PrefetchDropped {
        /// Issuing SM.
        sm: SmId,
        /// Candidate line.
        line: LineAddr,
        /// Why it was discarded.
        reason: PrefetchDropReason,
    },
    /// A prefetch fill arrived in the L1.
    PrefetchFilled {
        /// Owning SM.
        sm: SmId,
        /// Filled line.
        line: LineAddr,
        /// Cycles from issue to fill.
        latency: u64,
    },
    /// A demand access touched a prefetched line for the first time.
    PrefetchFirstUse {
        /// Owning SM.
        sm: SmId,
        /// Used line.
        line: LineAddr,
        /// Cycles from fill to first use (timeliness).
        latency: u64,
    },
    /// A prefetched line was evicted without ever being used.
    PrefetchEvictedUnused {
        /// Owning SM.
        sm: SmId,
        /// Evicted line.
        line: LineAddr,
        /// Cycles the dead line occupied SRAM.
        lifetime: u64,
    },
    /// A Snake chain walk started from a trigger access.
    ChainWalkStart {
        /// SM running the walk.
        sm: SmId,
        /// Triggering warp.
        warp: WarpId,
        /// Load PC indexing the head table.
        pc: Pc,
    },
    /// One step of a chain walk emitted a target.
    ChainWalkStep {
        /// SM running the walk.
        sm: SmId,
        /// 1-based step depth.
        depth: u32,
        /// Target address of the step.
        addr: Address,
    },
    /// A chain walk stopped.
    ChainWalkStop {
        /// SM running the walk.
        sm: SmId,
        /// Steps completed before stopping.
        steps: u32,
        /// Why the walk stopped.
        reason: WalkStop,
    },
    /// The fault injector perturbed a memory response.
    FaultInjected {
        /// Fault kind.
        kind: FaultKind,
        /// SM the response was headed to.
        sm: SmId,
        /// Line of the response.
        line: LineAddr,
    },
    /// A NoC brownout began (`active: true`) or ended (`active:
    /// false`).
    Brownout {
        /// Whether degraded bandwidth is now in effect.
        active: bool,
    },
    /// A checkpoint artifact was written durably to disk (emitted by
    /// [`Gpu::run_checkpointed`](crate::Gpu::run_checkpointed) right
    /// after the atomic rename lands).
    CheckpointSaved {
        /// Size of the serialized artifact in bytes.
        bytes: u64,
    },
    /// The device state was restored from a checkpoint (emitted by
    /// [`Gpu::restore`](crate::Gpu::restore) once the whole state has
    /// been applied). The stamped cycle is the restored cycle.
    Restored {
        /// Config/workload fingerprint of the applied checkpoint.
        fingerprint: u64,
    },
    /// The run ended. Always the last event of a trace.
    Terminal {
        /// How it ended.
        kind: TerminalKind,
        /// Human-readable detail (deadlock census, audit violations,
        /// or empty).
        detail: String,
    },
}

impl SimEvent {
    /// Stable event name used by the exporters (matches the variant).
    pub fn name(&self) -> &'static str {
        match self {
            SimEvent::WarpIssue { .. } => "WarpIssue",
            SimEvent::WarpStall { .. } => "WarpStall",
            SimEvent::WarpUnstall { .. } => "WarpUnstall",
            SimEvent::L1Access { .. } => "L1Access",
            SimEvent::MshrAllocate { .. } => "MshrAllocate",
            SimEvent::MshrMerge { .. } => "MshrMerge",
            SimEvent::MshrFill { .. } => "MshrFill",
            SimEvent::NocEnqueue { .. } => "NocEnqueue",
            SimEvent::NocDequeue { .. } => "NocDequeue",
            SimEvent::ThrottleHalt { .. } => "ThrottleHalt",
            SimEvent::ThrottleResume { .. } => "ThrottleResume",
            SimEvent::PrefetchIssued { .. } => "PrefetchIssued",
            SimEvent::PrefetchDropped { .. } => "PrefetchDropped",
            SimEvent::PrefetchFilled { .. } => "PrefetchFilled",
            SimEvent::PrefetchFirstUse { .. } => "PrefetchFirstUse",
            SimEvent::PrefetchEvictedUnused { .. } => "PrefetchEvictedUnused",
            SimEvent::ChainWalkStart { .. } => "ChainWalkStart",
            SimEvent::ChainWalkStep { .. } => "ChainWalkStep",
            SimEvent::ChainWalkStop { .. } => "ChainWalkStop",
            SimEvent::FaultInjected { .. } => "FaultInjected",
            SimEvent::Brownout { .. } => "Brownout",
            SimEvent::CheckpointSaved { .. } => "CheckpointSaved",
            SimEvent::Restored { .. } => "Restored",
            SimEvent::Terminal { .. } => "Terminal",
        }
    }

    /// SM the event is attributed to, if any (drives the Chrome trace
    /// `tid`; device-wide events go to a dedicated track).
    pub fn sm(&self) -> Option<SmId> {
        match self {
            SimEvent::WarpIssue { sm, .. }
            | SimEvent::WarpStall { sm, .. }
            | SimEvent::WarpUnstall { sm, .. }
            | SimEvent::L1Access { sm, .. }
            | SimEvent::MshrAllocate { sm, .. }
            | SimEvent::MshrMerge { sm, .. }
            | SimEvent::MshrFill { sm, .. }
            | SimEvent::NocEnqueue { sm, .. }
            | SimEvent::NocDequeue { sm, .. }
            | SimEvent::ThrottleHalt { sm, .. }
            | SimEvent::ThrottleResume { sm, .. }
            | SimEvent::PrefetchIssued { sm, .. }
            | SimEvent::PrefetchDropped { sm, .. }
            | SimEvent::PrefetchFilled { sm, .. }
            | SimEvent::PrefetchFirstUse { sm, .. }
            | SimEvent::PrefetchEvictedUnused { sm, .. }
            | SimEvent::ChainWalkStart { sm, .. }
            | SimEvent::ChainWalkStep { sm, .. }
            | SimEvent::ChainWalkStop { sm, .. }
            | SimEvent::FaultInjected { sm, .. } => Some(*sm),
            SimEvent::Brownout { .. }
            | SimEvent::CheckpointSaved { .. }
            | SimEvent::Restored { .. }
            | SimEvent::Terminal { .. } => None,
        }
    }
}

/// A cycle-stamped [`SimEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Cycle the event happened in.
    pub cycle: Cycle,
    /// What happened.
    pub data: SimEvent,
}

/// Consumer of the event stream.
///
/// The GPU drains component buffers into the sink once per cycle, in a
/// deterministic order (SMs by id, then NoC, then partition, then
/// device-level events), so two runs of the same seeded workload
/// produce byte-identical streams. Object-safe: the GPU stores a
/// `Box<dyn TraceSink>`.
pub trait TraceSink {
    /// Receives one event. Events arrive in nondecreasing cycle order
    /// per component, and components are drained in a fixed order
    /// within each cycle.
    fn record(&mut self, event: &TraceEvent);
}

/// The trivial sink: collects every event into a `Vec`.
///
/// # Examples
///
/// ```
/// use snake_sim::obs::{SimEvent, TraceEvent, TraceSink, VecSink};
/// use snake_sim::Cycle;
/// let mut sink = VecSink::default();
/// sink.record(&TraceEvent {
///     cycle: Cycle(3),
///     data: SimEvent::Brownout { active: true },
/// });
/// assert_eq!(sink.events.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct VecSink {
    /// Everything recorded so far, in arrival order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A sink behind `Arc<Mutex<_>>` so tests can keep a handle to the
/// collected events while the GPU owns the sink — needed to observe
/// the [`SimEvent::Terminal`] event flushed right before the audit
/// assertion panics.
#[derive(Debug, Clone, Default)]
pub struct SharedVecSink(std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>);

impl SharedVecSink {
    /// Creates an empty shared sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events collected so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.0.lock().expect("sink lock poisoned").clone()
    }
}

impl TraceSink for SharedVecSink {
    fn record(&mut self, event: &TraceEvent) {
        // A panicked recorder only ever means a poisoned test sink;
        // keep collecting so the terminal event survives the unwind.
        match self.0.lock() {
            Ok(mut v) => v.push(event.clone()),
            Err(poisoned) => poisoned.into_inner().push(event.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::default();
        for c in 0..3 {
            sink.record(&TraceEvent {
                cycle: Cycle(c),
                data: SimEvent::Brownout { active: c % 2 == 0 },
            });
        }
        assert_eq!(sink.events.len(), 3);
        assert_eq!(sink.events[2].cycle, Cycle(2));
    }

    #[test]
    fn event_names_match_variants() {
        let e = SimEvent::PrefetchIssued {
            sm: SmId(1),
            line: LineAddr(2),
        };
        assert_eq!(e.name(), "PrefetchIssued");
        assert_eq!(e.sm(), Some(SmId(1)));
        let t = SimEvent::Terminal {
            kind: TerminalKind::Completed,
            detail: String::new(),
        };
        assert_eq!(t.name(), "Terminal");
        assert_eq!(t.sm(), None);
    }

    #[test]
    fn labels_are_lowercase() {
        assert_eq!(NocDir::Up.label(), "up");
        assert_eq!(PrefetchDropReason::Rejected.label(), "rejected");
        assert_eq!(WalkStop::DepthLimit.label(), "depth_limit");
        assert_eq!(FaultKind::Delay.label(), "delay");
        assert_eq!(TerminalKind::AuditFail.label(), "audit_fail");
    }

    #[test]
    fn shared_sink_snapshot_sees_records() {
        let handle = SharedVecSink::new();
        let mut sink = handle.clone();
        sink.record(&TraceEvent {
            cycle: Cycle(1),
            data: SimEvent::Brownout { active: true },
        });
        assert_eq!(handle.snapshot().len(), 1);
    }

    #[test]
    fn sink_is_object_safe() {
        let mut b: Box<dyn TraceSink> = Box::<VecSink>::default();
        b.record(&TraceEvent {
            cycle: Cycle(0),
            data: SimEvent::Brownout { active: false },
        });
    }
}

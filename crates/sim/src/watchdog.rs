//! Forward-progress watchdog and structured deadlock reporting.
//!
//! The simulator's quiescence check (`all SMs done && memory system
//! drained`) assumes every outstanding miss eventually produces a
//! fill. A lost response — an injected fault, or simply a simulator
//! bug — breaks that assumption and turns `Gpu::run` into an infinite
//! loop (or a multi-minute crawl to `max_cycles`). The [`Watchdog`]
//! counts consecutive cycles in which *nothing* moved: no instruction
//! issued, no fill delivered, no packet entered or left the
//! interconnect, no event inside the memory partition. Past the
//! threshold the run stops with
//! [`StopReason::Deadlock`](crate::StopReason::Deadlock) carrying a
//! [`DeadlockReport`]: who is blocked, on what, and where every
//! in-flight request was parked.

use crate::json::Value;
use crate::snapshot::{self, SnapshotError};
use crate::types::{CtaId, Cycle, SmId};

pub use crate::mem::partition::PartitionCensus;

/// Tracks forward progress across cycles.
#[derive(Debug, Clone)]
pub struct Watchdog {
    threshold: u64,
    last_progress: Cycle,
}

impl Watchdog {
    /// Creates a watchdog that trips after `threshold` consecutive
    /// cycles without progress.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "a zero threshold would trip immediately");
        Watchdog {
            threshold,
            last_progress: Cycle::ZERO,
        }
    }

    /// Records one cycle's outcome. Returns `true` when the stall has
    /// reached the threshold and the device should stop.
    pub fn observe(&mut self, progressed: bool, now: Cycle) -> bool {
        if progressed {
            self.last_progress = now;
            return false;
        }
        now.since(self.last_progress) >= self.threshold
    }

    /// Cycles since the last observed progress.
    pub fn stalled_for(&self, now: Cycle) -> u64 {
        now.since(self.last_progress)
    }

    /// Serializes the progress counter for a checkpoint (the
    /// threshold is config-derived and not captured).
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![(
            "last_progress".into(),
            Value::u64(self.last_progress.0),
        )])
    }

    /// Restores the progress counter from [`save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a missing or mistyped field.
    ///
    /// [`save_state`]: Watchdog::save_state
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.last_progress = Cycle(snapshot::u64_field(v, "last_progress")?);
        Ok(())
    }
}

/// Why one resident warp cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpBlock {
    /// Issuable — not blocked (present in reports for completeness
    /// when *other* warps wedge the SM).
    Ready,
    /// Absorbing compute/hit latency until the given cycle.
    Busy(Cycle),
    /// Waiting for outstanding memory responses.
    Waiting,
}

/// One resident warp's state at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpCensus {
    /// CTA the warp belongs to.
    pub cta: CtaId,
    /// Index of the warp's trace in the kernel.
    pub trace_idx: usize,
    /// Next instruction index (how far it got).
    pub next: usize,
    /// Why it is blocked.
    pub block: WarpBlock,
    /// Memory responses it is still owed.
    pub outstanding: u32,
    /// Transactions rejected by the L1 and awaiting retry.
    pub pending_txns: usize,
}

/// One SM's state at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmCensus {
    /// The SM.
    pub sm: SmId,
    /// Outstanding MSHR entries.
    pub mshr_entries: usize,
    /// MSHR capacity (occupancy context).
    pub mshr_capacity: usize,
    /// Cache lines reserved for in-flight misses.
    pub reserved_lines: u32,
    /// Requests stuck in the miss queue.
    pub miss_queue: usize,
    /// CTAs never launched.
    pub queued_ctas: usize,
    /// Resident warps.
    pub warps: Vec<WarpCensus>,
}

/// Interconnect occupancy at deadlock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocCensus {
    /// Requests in flight L1→L2.
    pub in_flight_up: usize,
    /// Responses in flight L2→L1.
    pub in_flight_down: usize,
}

/// Everything the watchdog could see when it tripped.
///
/// Carried inside [`StopReason::Deadlock`](crate::StopReason::Deadlock)
/// (boxed: it is much larger than the other variants). The `Display`
/// impl renders a human-readable dump for logs and panics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// Cycle the watchdog stopped the device.
    pub cycle: u64,
    /// Consecutive cycles without any observed progress.
    pub stalled_for: u64,
    /// Per-SM state: blocked warps, MSHR occupancy, reserved lines.
    pub sms: Vec<SmCensus>,
    /// Packets in flight on the interconnect.
    pub noc: NocCensus,
    /// Memory-partition queue occupancy.
    pub partition: PartitionCensus,
}

impl DeadlockReport {
    /// Warps blocked on memory across all SMs.
    pub fn waiting_warps(&self) -> usize {
        self.sms
            .iter()
            .flat_map(|s| &s.warps)
            .filter(|w| w.block == WarpBlock::Waiting || w.pending_txns > 0)
            .count()
    }

    /// Outstanding MSHR entries across all SMs.
    pub fn total_mshr_entries(&self) -> usize {
        self.sms.iter().map(|s| s.mshr_entries).sum()
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock at cycle {} after {} cycles without progress",
            self.cycle, self.stalled_for
        )?;
        writeln!(
            f,
            "  noc: {} up / {} down in flight",
            self.noc.in_flight_up, self.noc.in_flight_down
        )?;
        let p = &self.partition;
        writeln!(
            f,
            "  partition: incoming {} | hit pipe {} | dram queue {} | dram pipe {} \
             | merged {} | outbox {} | fault-delayed {}",
            p.incoming,
            p.hit_pipe,
            p.dram_queue,
            p.dram_pipe,
            p.merged_readers,
            p.outbox,
            p.fault_delayed
        )?;
        for sm in &self.sms {
            writeln!(
                f,
                "  sm {}: mshr {}/{} | reserved lines {} | miss queue {} | queued CTAs {}",
                sm.sm.0,
                sm.mshr_entries,
                sm.mshr_capacity,
                sm.reserved_lines,
                sm.miss_queue,
                sm.queued_ctas
            )?;
            for w in &sm.warps {
                writeln!(
                    f,
                    "    warp trace {} ({}): {:?}, instr {}, {} outstanding, {} pending",
                    w.trace_idx, w.cta, w.block, w.next, w.outstanding, w.pending_txns
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_trips_only_after_threshold_quiet_cycles() {
        let mut w = Watchdog::new(3);
        assert!(!w.observe(true, Cycle(0)));
        assert!(!w.observe(false, Cycle(1)));
        assert!(!w.observe(false, Cycle(2)));
        assert!(w.observe(false, Cycle(3)), "3 quiet cycles = threshold");
    }

    #[test]
    fn progress_resets_the_count() {
        let mut w = Watchdog::new(3);
        assert!(!w.observe(false, Cycle(1)));
        assert!(!w.observe(false, Cycle(2)));
        assert!(!w.observe(true, Cycle(3)));
        assert!(!w.observe(false, Cycle(4)));
        assert!(!w.observe(false, Cycle(5)));
        assert_eq!(w.stalled_for(Cycle(5)), 2);
        assert!(w.observe(false, Cycle(6)));
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_rejected() {
        let _ = Watchdog::new(0);
    }

    #[test]
    fn report_rollups_and_display() {
        let report = DeadlockReport {
            cycle: 1234,
            stalled_for: 500,
            sms: vec![SmCensus {
                sm: SmId(0),
                mshr_entries: 2,
                mshr_capacity: 128,
                reserved_lines: 2,
                miss_queue: 0,
                queued_ctas: 0,
                warps: vec![
                    WarpCensus {
                        cta: CtaId(0),
                        trace_idx: 0,
                        next: 3,
                        block: WarpBlock::Waiting,
                        outstanding: 1,
                        pending_txns: 0,
                    },
                    WarpCensus {
                        cta: CtaId(0),
                        trace_idx: 1,
                        next: 0,
                        block: WarpBlock::Ready,
                        outstanding: 0,
                        pending_txns: 2,
                    },
                ],
            }],
            noc: NocCensus::default(),
            partition: PartitionCensus::default(),
        };
        assert_eq!(report.waiting_warps(), 2);
        assert_eq!(report.total_mshr_entries(), 2);
        let text = report.to_string();
        assert!(text.contains("deadlock at cycle 1234"));
        assert!(text.contains("mshr 2/128"));
        assert!(text.contains("Waiting"));
    }
}

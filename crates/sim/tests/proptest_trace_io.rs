//! Property-based tests for the text trace parser: `from_text` must
//! return a structured [`ParseTraceError`] — never panic — on
//! arbitrary bytes, truncated traces, and corrupted traces, and must
//! round-trip everything `to_text` can produce.

use proptest::prelude::*;
use snake_sim::trace_io::{from_text, to_text};
use snake_sim::{AddrList, Address, CtaId, Instr, KernelTrace, Pc, WarpTrace};

#[derive(Debug, Clone)]
enum GenInstr {
    Load { pc: u16, addrs: Vec<u32> },
    Store { pc: u16, addr: u32 },
    Compute { cycles: u16 },
}

fn gen_instr() -> impl Strategy<Value = GenInstr> {
    prop_oneof![
        3 => (any::<u16>(), prop::collection::vec(any::<u32>(), 1..4))
            .prop_map(|(pc, addrs)| GenInstr::Load { pc, addrs }),
        1 => (any::<u16>(), any::<u32>()).prop_map(|(pc, addr)| GenInstr::Store { pc, addr }),
        1 => (0u16..5000).prop_map(|cycles| GenInstr::Compute { cycles }),
    ]
}

fn kernel() -> impl Strategy<Value = KernelTrace> {
    prop::collection::vec((0u32..8, prop::collection::vec(gen_instr(), 0..12)), 1..6).prop_map(
        |warps| {
            let traces = warps
                .into_iter()
                .map(|(cta, instrs)| {
                    let instrs = instrs
                        .into_iter()
                        .map(|g| match g {
                            GenInstr::Load { pc, addrs } => Instr::Load {
                                pc: Pc(u32::from(pc)),
                                addrs: AddrList::from_vec(
                                    addrs.into_iter().map(|a| Address(u64::from(a))).collect(),
                                ),
                            },
                            GenInstr::Store { pc, addr } => {
                                Instr::store(u32::from(pc), u64::from(addr))
                            }
                            GenInstr::Compute { cycles } => Instr::compute(u32::from(cycles)),
                        })
                        .collect();
                    WarpTrace::new(CtaId(cta), instrs)
                })
                .collect();
            KernelTrace::new("fuzz", traces)
        },
    )
}

/// Tokens chosen to land on every parser path: valid directives,
/// numbers in both radices, and junk.
fn token() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "kernel",
        "warp",
        "L",
        "S",
        "C",
        "#",
        "0",
        "1",
        "42",
        "0x80",
        "0xZZ",
        "99999999999999999999",
        "-3",
        "foo",
        ",",
        "0x1000,0x80",
        ",,,",
        "18446744073709551615",
        "\t",
        "kernel#x",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        // Ok or Err are both fine; reaching here at all is the property.
        let _ = from_text(&text);
    }

    #[test]
    fn token_soup_never_panics(
        lines in prop::collection::vec(prop::collection::vec(token(), 0..5), 0..20)
    ) {
        let text = lines
            .iter()
            .map(|l| l.join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        if let Ok(k) = from_text(&text) {
            prop_assert!(!k.warps().is_empty(), "a parsed trace has at least one warp");
        }
    }

    #[test]
    fn truncated_traces_never_panic(k in kernel(), cut in any::<usize>()) {
        let text = to_text(&k);
        prop_assert!(text.is_ascii(), "format is ASCII, any byte offset is a char boundary");
        let cut = cut % (text.len() + 1);
        if let Ok(parsed) = from_text(&text[..cut]) {
            prop_assert!(!parsed.warps().is_empty());
        }
    }

    #[test]
    fn corrupted_traces_never_panic(k in kernel(), idx in any::<usize>(), byte in any::<u8>()) {
        let mut bytes = to_text(&k).into_bytes();
        let idx = idx % bytes.len();
        bytes[idx] = byte;
        let text = String::from_utf8_lossy(&bytes);
        let _ = from_text(&text);
    }

    #[test]
    fn round_trip_is_lossless(k in kernel()) {
        let parsed = from_text(&to_text(&k));
        prop_assert_eq!(parsed, Ok(k));
    }

    #[test]
    fn parse_errors_name_a_plausible_line(
        lines in prop::collection::vec(prop::collection::vec(token(), 0..5), 0..20)
    ) {
        let text = lines
            .iter()
            .map(|l| l.join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = from_text(&text) {
            prop_assert!(e.line <= lines.len().max(1), "line {} of {}", e.line, lines.len());
            prop_assert!(!e.message.is_empty());
        }
    }
}

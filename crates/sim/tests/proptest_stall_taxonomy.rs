//! Property-based exactness of the issue-slot stall taxonomy: for
//! arbitrary instruction mixes, fault plans, and checkpoint cut
//! points, the eight stall buckets must partition scheduler-cycles
//! exactly — at every observation point, after merging across SMs,
//! and bit-identically across a checkpoint/restore round-trip.

use proptest::prelude::*;
use snake_sim::snapshot::Checkpoint;
use snake_sim::{
    json, Gpu, GpuConfig, Instr, KernelTrace, NullPrefetcher, Recovery, StallBreakdown, WarpTrace,
};
use snake_sim::{CtaId, FaultPlan};

#[derive(Debug, Clone)]
struct Scenario {
    warps: usize,
    instrs: usize,
    stride: u64,
    /// Per-instruction selector stream: load / store / compute.
    mix: u64,
    kill: u64,
    faults: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (1usize..6, 2usize..24, 1u64..8),
        (any::<u64>(), 1u64..400, any::<bool>()),
    )
        .prop_map(|((warps, instrs, stride), (mix, kill, faults))| Scenario {
            warps,
            instrs,
            stride: stride * 64,
            mix,
            kill,
            faults,
        })
}

fn build(s: &Scenario) -> (GpuConfig, KernelTrace) {
    let mut cfg = GpuConfig::scaled(1);
    cfg.metrics_window = Some(64);
    if s.faults {
        cfg.fault = FaultPlan {
            seed: 0xD15EA5E,
            drop_response: 0.02,
            duplicate_response: 0.02,
            delay_response: 0.1,
            delay_cycles: 40,
            brownout: None,
            recovery: Some(Recovery {
                timeout: 200,
                max_retries: 4,
            }),
        };
    }
    let traces = (0..s.warps)
        .map(|w| {
            let instrs = (0..s.instrs)
                .map(|i| {
                    let addr = (w * s.instrs + i) as u64 * s.stride;
                    // Cheap deterministic per-slot selector derived
                    // from the scenario's mix seed.
                    match (s.mix >> ((w * s.instrs + i) % 32)) % 3 {
                        0 => Instr::load(i as u32, addr),
                        1 => Instr::store(i as u32, addr),
                        _ => Instr::compute(1 + (s.mix % 4) as u32),
                    }
                })
                .collect();
            WarpTrace::new(CtaId((w / 4) as u32), instrs)
        })
        .collect();
    (cfg, KernelTrace::new("proptest-stall", traces))
}

fn gpu(cfg: &GpuConfig, kernel: &KernelTrace) -> Gpu {
    Gpu::new(cfg.clone(), kernel.clone(), |_| Box::new(NullPrefetcher)).unwrap()
}

fn assert_exact(stall: &StallBreakdown, what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        stall.is_exact(),
        "{what}: buckets sum to {} but scheduler cycles are {}",
        stall.total(),
        stall.scheduler_cycles,
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The taxonomy partitions scheduler-cycles exactly: for any
    /// workload/fault mix, at the end of a run, mid-run at an
    /// arbitrary cut point, and after a checkpoint/restore of that
    /// cut, buckets always sum to scheduler cycles — and the restored
    /// breakdown is bit-identical to the suspended one.
    #[test]
    fn stall_buckets_partition_scheduler_cycles(s in scenario()) {
        let (cfg, kernel) = build(&s);

        // Uninterrupted reference run.
        let reference = gpu(&cfg, &kernel).run();
        assert_exact(&reference.stats.stall, "uninterrupted run")?;
        prop_assert!(
            reference.stats.stall.scheduler_cycles > 0,
            "run accounted no scheduler cycles"
        );

        let mut victim = gpu(&cfg, &kernel);
        match victim.run_interruptible(|c| c.0 >= s.kill) {
            Some(out) => {
                prop_assert_eq!(out.stats.stall, reference.stats.stall);
            }
            None => {
                // Mid-run, the partial accounting is already exact.
                let at_cut = victim.collect_stats().stall;
                assert_exact(&at_cut, "suspended mid-run")?;

                // The breakdown survives the text round-trip
                // bit-identically.
                let ckpt = victim.checkpoint();
                let text = ckpt.to_json().to_string();
                let reparsed = json::parse(&text).expect("checkpoint is valid json");
                let ckpt2 = Checkpoint::from_json(&reparsed).expect("checkpoint decodes");
                let mut resumed = gpu(&cfg, &kernel);
                resumed.restore(&ckpt2).expect("restore succeeds");
                prop_assert_eq!(
                    resumed.collect_stats().stall,
                    at_cut,
                    "restored breakdown diverged (killed at cycle {})",
                    s.kill
                );

                // And the resumed run lands on the reference exactly.
                let resumed_out = resumed.run();
                assert_exact(&resumed_out.stats.stall, "resumed run")?;
                prop_assert_eq!(resumed_out.stats.stall, reference.stats.stall);
            }
        }
    }
}

//! Property-based delivery contract for the telemetry ring: for
//! arbitrary event streams, ring capacities, and drain interleavings,
//! what a subscriber drains must be a *prefix-with-gaps* of the full
//! [`TraceSink`] stream — every delivered record bit-identical to the
//! reference stream's record at its sequence number, sequences
//! strictly increasing, and `delivered + dropped` exactly equal to the
//! number of records ever produced. Loss is allowed; silent or
//! miscounted loss is not.

use proptest::prelude::*;
use snake_sim::{
    Cycle, Ring, RingSink, SimEvent, SmId, TelemetryRecord, TraceEvent, TraceSink, VecSink, WarpId,
};

#[derive(Debug, Clone)]
struct Scenario {
    /// Ring capacity (deliberately small so overflow is common).
    cap: usize,
    /// One entry per produced event: `true` = drain right after it.
    ops: Vec<bool>,
    /// Index at which a second, late subscriber attaches from origin.
    late_at: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..24,
        prop::collection::vec(any::<bool>(), 1..120),
        0usize..100,
    )
        .prop_map(|(cap, ops, late_pct)| {
            // Scale the percentage into a valid index so the strategy
            // stays independent of the generated stream length.
            let late_at = late_pct * ops.len() / 100;
            Scenario { cap, ops, late_at }
        })
}

/// Synthesizes a distinguishable event for stream position `i`.
fn event(i: usize) -> TraceEvent {
    let data = if i.is_multiple_of(3) {
        SimEvent::Brownout {
            active: i.is_multiple_of(2),
        }
    } else {
        SimEvent::WarpIssue {
            sm: SmId((i % 7) as u32),
            warp: WarpId((i % 5) as u32),
        }
    };
    TraceEvent {
        cycle: Cycle(i as u64),
        data,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feed one synthesized stream through a [`VecSink`] (the lossless
    /// reference) and a [`RingSink`] with random capacity, draining a
    /// live subscription at random points. The drained sequence must be
    /// a prefix-with-gaps of the reference stream with exact loss
    /// accounting, and a late `subscribe_from(0)` must account for the
    /// whole stream from the origin.
    #[test]
    fn drained_stream_is_prefix_with_gaps_of_full_stream(s in scenario()) {
        let ring: Ring<TelemetryRecord> = Ring::new(s.cap);
        let mut reference = VecSink::default();
        let mut ring_sink = RingSink::new(ring.clone());
        let mut live = ring.subscribe();
        let mut late: Option<snake_sim::Subscription<TelemetryRecord>> = None;

        let mut cursor = 0u64; // next seq the live subscriber expects
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for (i, drain_here) in s.ops.iter().enumerate() {
            if i == s.late_at {
                late = Some(ring.subscribe_from(0));
            }
            let e = event(i);
            reference.record(&e);
            ring_sink.record(&e);
            if *drain_here {
                let d = live.drain();
                // Gaps never run backwards, and the batch starts exactly
                // where the loss ends.
                prop_assert_eq!(d.first_seq, cursor + d.dropped);
                // A bounded ring can never hand over more than `cap`.
                prop_assert!(d.records.len() <= s.cap);
                prop_assert!(!d.done, "stream not closed yet");
                cursor = d.first_seq + d.records.len() as u64;
                delivered += d.records.len() as u64;
                dropped += d.dropped;
            }
        }
        ring.close();
        let d = live.drain();
        prop_assert_eq!(d.first_seq, cursor + d.dropped);
        prop_assert!(d.done, "final drain on a closed ring must be done");
        delivered += d.records.len() as u64;
        dropped += d.dropped;

        // Exact accounting: every produced record was either delivered
        // or counted as dropped — nothing vanishes.
        prop_assert_eq!(ring.produced(), s.ops.len() as u64);
        prop_assert_eq!(delivered + dropped, ring.produced());
        prop_assert_eq!(live.total_dropped(), dropped);
        prop_assert_eq!(live.cursor(), ring.produced());

        // Record identity: replay the drains record-by-record against
        // the reference stream. (Re-run the schedule on a fresh ring so
        // the per-batch contents are re-observable.)
        let full = reference.events;
        let replay: Ring<TelemetryRecord> = Ring::new(s.cap);
        let mut replay_sink = RingSink::new(replay.clone());
        let mut replay_sub = replay.subscribe();
        for (i, drain_here) in s.ops.iter().enumerate() {
            replay_sink.record(&event(i));
            if *drain_here {
                check_batch(&replay_sub.drain(), &full)?;
            }
        }
        replay.close();
        let d = replay_sub.drain();
        check_batch(&d, &full)?;

        // The late subscriber accounts for the entire stream from seq 0:
        // backlog it missed is dropped, the retained suffix is delivered.
        let mut late = late.expect("late_at < ops.len() guarantees attachment");
        let mut late_delivered = 0u64;
        let mut late_dropped = 0u64;
        loop {
            let d = late.drain();
            late_delivered += d.records.len() as u64;
            late_dropped += d.dropped;
            if d.done {
                break;
            }
        }
        prop_assert_eq!(late_delivered + late_dropped, ring.produced());
    }
}

/// Every record in a drained batch must equal the reference stream's
/// event at its sequence number.
fn check_batch(
    d: &snake_sim::Drained<TelemetryRecord>,
    full: &[TraceEvent],
) -> Result<(), TestCaseError> {
    for (k, rec) in d.records.iter().enumerate() {
        let seq = d.first_seq + k as u64;
        let expect = &full[seq as usize];
        match rec {
            TelemetryRecord::Event(e) => {
                prop_assert_eq!(e, expect, "record at seq {} diverged", seq)
            }
            TelemetryRecord::Window(_) => {
                return Err(TestCaseError::fail(format!(
                    "unexpected window record at seq {seq}"
                )))
            }
        }
    }
    Ok(())
}

//! End-to-end tests of the host performance observatory: profiling is
//! off by default, populates every exercised phase when on, and never
//! perturbs simulated behavior (no observer effect on architectural
//! state).

use snake_sim::{
    run_kernel, CtaId, GpuConfig, Instr, KernelTrace, NullPrefetcher, Phase, SimStats, WarpTrace,
};

fn streaming_kernel(warps: u32, loads: usize) -> KernelTrace {
    let warps: Vec<WarpTrace> = (0..warps)
        .map(|w| {
            let instrs = (0..loads)
                .map(|i| Instr::load(i as u32, (w as u64) * 65536 + (i as u64) * 128))
                .collect();
            WarpTrace::new(CtaId(w), instrs)
        })
        .collect();
    KernelTrace::new("hp", warps)
}

fn run(cfg: GpuConfig) -> snake_sim::SimOutcome {
    run_kernel(cfg, streaming_kernel(4, 32), |_| Box::new(NullPrefetcher)).unwrap()
}

#[test]
fn profiling_off_by_default_yields_no_host_profile() {
    let out = run(GpuConfig::scaled(1));
    assert!(out.host.is_none(), "host profile must be opt-in");
}

#[test]
fn profiling_on_populates_exercised_phases() {
    let mut cfg = GpuConfig::scaled(1);
    cfg.host_profile = true;
    let out = run(cfg);
    let host = out.host.expect("host_profile=true must deliver a profile");
    assert!(host.wall_nanos > 0, "wall clock must be measured");
    assert!(host.cycles > 0, "cycle count must be captured");
    // A streaming kernel exercises the SM front-end, the L1, the MSHRs,
    // the prefetch hook, the NoC, and the memory partition every run.
    for phase in [
        Phase::SmIssue,
        Phase::L1Lookup,
        Phase::Mshr,
        Phase::Prefetch,
        Phase::Noc,
        Phase::MemPartition,
    ] {
        let stat = host.get(phase);
        assert!(stat.calls > 0, "phase {phase} must record calls");
    }
    // With no trace sink attached the observability phase stays silent
    // apart from the per-cycle metrics hook (which only fires when a
    // metrics window is configured — scaled(1) leaves it off).
    assert!(
        host.phase_nanos_total() <= host.wall_nanos,
        "phases are disjoint so their sum cannot exceed wall time"
    );
    assert!(host.cycles_per_sec() > 0.0);
}

/// The architectural results must be bit-identical with and without
/// profiling: the observatory reads clocks, never simulated state.
#[test]
fn profiling_has_no_observer_effect_on_simulated_state() {
    let plain = run(GpuConfig::scaled(1));
    let mut cfg = GpuConfig::scaled(1);
    cfg.host_profile = true;
    let profiled = run(cfg);
    let a: &SimStats = &plain.stats;
    let b: &SimStats = &profiled.stats;
    assert_eq!(a.cycles, b.cycles, "cycle count must not change");
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l1.hits, b.l1.hits);
    assert_eq!(a.l1.misses, b.l1.misses);
    assert_eq!(a.l2_hits, b.l2_hits);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.noc_bytes_down, b.noc_bytes_down);
    assert_eq!(plain.stop, profiled.stop);
}

/// The `perf_inject_stall_ns` hook burns host time inside the
/// mem-partition phase without touching simulated behavior — the
/// regression gate's integration tests rely on both halves.
#[test]
fn inject_stall_inflates_mem_partition_phase_only() {
    let mut base_cfg = GpuConfig::scaled(1);
    base_cfg.host_profile = true;
    let base = run(base_cfg);

    let mut slow_cfg = GpuConfig::scaled(1);
    slow_cfg.host_profile = true;
    slow_cfg.perf_inject_stall_ns = 20_000;
    let slow = run(slow_cfg);

    // Same simulated results...
    assert_eq!(base.stats.cycles, slow.stats.cycles);
    assert_eq!(base.stats.l1.misses, slow.stats.l1.misses);

    // ...but far more host time charged to the partition phase. Each
    // tick burns >=20us, so even one tick dwarfs the real work.
    let base_mem = base.host.unwrap().get(Phase::MemPartition).nanos;
    let slow_mem = slow.host.unwrap().get(Phase::MemPartition).nanos;
    assert!(
        slow_mem > base_mem.saturating_mul(2),
        "injected stall must inflate the mem_partition phase \
         (base {base_mem} ns, injected {slow_mem} ns)"
    );
}

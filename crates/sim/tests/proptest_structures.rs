//! Property-based tests for the simulator's core data structures:
//! tag array occupancy invariants, MSHR merge bounds, and interconnect
//! conservation/ordering.

use proptest::prelude::*;
use snake_sim::cache::mshr::{MergeResult, MissOrigin, MshrFile};
use snake_sim::cache::tag_array::{LineState, Side, TagArray};
use snake_sim::mem::interconnect::{Interconnect, UpPacket};
use snake_sim::{Cycle, LineAddr, SmId, WarpId};

#[derive(Debug, Clone)]
enum TagOp {
    /// Reserve-then-fill a line (if space allows).
    Install { addr: u64, prefetch: bool },
    /// Touch a line if present.
    Touch { addr: u64 },
    /// Evict the LRU line of the set if any is evictable.
    Evict { addr: u64 },
    /// Transfer a prefetch-side line to the demand side if present.
    Transfer { addr: u64 },
}

fn tag_op() -> impl Strategy<Value = TagOp> {
    prop_oneof![
        (0u64..64, any::<bool>()).prop_map(|(addr, prefetch)| TagOp::Install { addr, prefetch }),
        (0u64..64).prop_map(|addr| TagOp::Touch { addr }),
        (0u64..64).prop_map(|addr| TagOp::Evict { addr }),
        (0u64..64).prop_map(|addr| TagOp::Transfer { addr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tag_array_occupancy_invariants(ops in prop::collection::vec(tag_op(), 1..200)) {
        let mut t = TagArray::new(16, 4);
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            let now = Cycle(clock);
            match op {
                TagOp::Install { addr, prefetch } => {
                    let a = LineAddr(addr);
                    if t.probe(a).is_none() {
                        if let Some(w) = t.find_victim(a, |_| true) {
                            if t.line(w).state == LineState::Valid {
                                t.evict(w);
                            }
                            let side = if prefetch { Side::Prefetch } else { Side::Demand };
                            t.reserve(w, a, side, now);
                            t.fill(w, now);
                        }
                    }
                }
                TagOp::Touch { addr } => {
                    if let Some(w) = t.probe(LineAddr(addr)) {
                        t.touch(w, now);
                    }
                }
                TagOp::Evict { addr } => {
                    let a = LineAddr(addr);
                    if let Some(w) = t.probe(a) {
                        if t.line(w).state == LineState::Valid {
                            t.evict(w);
                        }
                    }
                }
                TagOp::Transfer { addr } => {
                    if let Some(w) = t.probe(LineAddr(addr)) {
                        let l = *t.line(w);
                        if l.state == LineState::Valid && l.side == Side::Prefetch {
                            t.transfer_to_demand(w, now);
                        }
                    }
                }
            }
            // Invariants after every operation.
            let occupied = t.capacity() - t.free_lines();
            prop_assert!(occupied <= t.capacity());
            prop_assert_eq!(t.demand_lines() + t.prefetch_lines() + t.reserved_lines(), occupied);
            prop_assert_eq!(t.iter_valid().count() as u32, t.demand_lines() + t.prefetch_lines());
            prop_assert_eq!(
                t.iter_valid().filter(|l| l.side == Side::Prefetch).count() as u32,
                t.prefetch_lines()
            );
        }
    }

    #[test]
    fn tag_array_probe_finds_installed_lines(addrs in prop::collection::vec(0u64..32, 1..16)) {
        let mut t = TagArray::new(32, 8);
        let mut installed = Vec::new();
        for (i, addr) in addrs.iter().enumerate() {
            let a = LineAddr(*addr);
            if t.probe(a).is_some() {
                continue;
            }
            if let Some(w) = t.find_victim(a, |_| true) {
                if t.line(w).state == LineState::Valid {
                    let evicted = t.evict(w);
                    installed.retain(|x| *x != evicted.tag);
                }
                t.reserve(w, a, Side::Demand, Cycle(i as u64));
                t.fill(w, Cycle(i as u64));
                installed.push(a);
            }
        }
        for a in installed {
            prop_assert!(t.probe(a).is_some(), "installed line {a} must be found");
        }
    }

    #[test]
    fn mshr_never_exceeds_capacity_or_merge_bound(
        lines in prop::collection::vec(0u64..8, 1..100),
        entries in 1u32..8,
        merge in 1u32..8,
    ) {
        let mut m = MshrFile::new(entries, merge);
        let mut outstanding: Vec<u64> = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let a = LineAddr(*line);
            if m.get(a).is_some() {
                match m.merge_demand(a, WarpId(i as u32)) {
                    MergeResult::Merged { .. } => {
                        prop_assert!(m.get(a).unwrap().requests <= merge);
                    }
                    MergeResult::Full => {
                        prop_assert_eq!(m.get(a).unwrap().requests, merge);
                    }
                }
            } else if m.has_free_entry() {
                m.allocate(a, MissOrigin::Demand, Some(WarpId(i as u32)), Cycle(i as u64));
                outstanding.push(*line);
            }
            prop_assert!(m.len() <= entries as usize);
        }
        // Completing everything empties the file.
        outstanding.sort_unstable();
        outstanding.dedup();
        for line in outstanding {
            let e = m.complete(LineAddr(line));
            prop_assert!(e.requests >= 1);
            prop_assert!(e.waiters.len() as u32 <= merge);
        }
        prop_assert!(m.is_empty());
    }

    #[test]
    fn interconnect_conserves_and_orders_packets(
        sizes in prop::collection::vec(1u64..200, 1..64),
        budget in 16u32..256,
        latency in 1u32..16,
    ) {
        let mut n = Interconnect::new(budget, latency, 64);
        let mut sent = Vec::new();
        let mut received = Vec::new();
        let mut cycle = 0u64;
        let mut queue: Vec<(u64, u64)> = sizes.iter().enumerate()
            .map(|(i, s)| (i as u64, *s)).collect();
        queue.reverse();
        let mut bytes_sent = 0u64;
        while received.len() < sizes.len() {
            n.begin_cycle(Cycle(cycle));
            while let Some(&(id, bytes)) = queue.last() {
                let pkt = UpPacket { sm: SmId(0), line: LineAddr(id), is_store: false };
                if n.try_send_up(pkt, bytes, Cycle(cycle)) {
                    queue.pop();
                    sent.push(id);
                    bytes_sent += bytes;
                } else {
                    break;
                }
            }
            while let Some(p) = n.pop_up(Cycle(cycle)) {
                received.push(p.line.0);
            }
            cycle += 1;
            prop_assert!(cycle < 1_000_000, "must drain");
        }
        prop_assert_eq!(&received, &sent, "FIFO order, no loss");
        prop_assert_eq!(n.total_bytes_up(), bytes_sent);
        prop_assert!(n.is_idle());
        // Token-bucket borrowing allows short-run overshoot, so
        // lifetime utilization is only meaningful on long runs; it must
        // simply be finite and non-negative here.
        prop_assert!(n.lifetime_utilization() >= 0.0);
    }
}

//! Property-based kill-anywhere checkpointing at the whole-device
//! level: for arbitrary kernels, fault plans, and kill cycles, a
//! checkpoint taken mid-run must round-trip bit-stably through the
//! json text encoding, restore onto a fresh device, and finish with a
//! byte-identical outcome — and a torn (truncated) artifact must be
//! rejected with a typed error, never partially applied.

use proptest::prelude::*;
use snake_sim::snapshot::{self, Checkpoint, SnapshotError};
use snake_sim::{json, Gpu, GpuConfig, Instr, KernelTrace, NullPrefetcher, Recovery, WarpTrace};
use snake_sim::{CtaId, FaultPlan};

#[derive(Debug, Clone)]
struct Scenario {
    warps: usize,
    loads: usize,
    stride: u64,
    kill: u64,
    metrics: bool,
    faults: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (1usize..5, 1usize..20, 1u64..8),
        (1u64..400, any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((warps, loads, stride), (kill, metrics, faults))| Scenario {
                warps,
                loads,
                stride: stride * 64,
                kill,
                metrics,
                faults,
            },
        )
}

fn build(s: &Scenario) -> (GpuConfig, KernelTrace) {
    let mut cfg = GpuConfig::scaled(1);
    cfg.metrics_window = s.metrics.then_some(64);
    if s.faults {
        cfg.fault = FaultPlan {
            seed: 0x5EED,
            drop_response: 0.02,
            duplicate_response: 0.02,
            delay_response: 0.1,
            delay_cycles: 40,
            brownout: None,
            recovery: Some(Recovery {
                timeout: 200,
                max_retries: 4,
            }),
        };
    }
    let traces = (0..s.warps)
        .map(|w| {
            let instrs = (0..s.loads)
                .map(|i| Instr::load(i as u32, (w * s.loads + i) as u64 * s.stride))
                .collect();
            WarpTrace::new(CtaId((w / 4) as u32), instrs)
        })
        .collect();
    (cfg, KernelTrace::new("proptest-ckpt", traces))
}

fn gpu(cfg: &GpuConfig, kernel: &KernelTrace) -> Gpu {
    Gpu::new(cfg.clone(), kernel.clone(), |_| Box::new(NullPrefetcher)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill at an arbitrary cycle, round-trip the checkpoint through
    /// text, restore onto a fresh device: the resumed outcome must be
    /// byte-identical (Debug form) to the uninterrupted run's.
    #[test]
    fn kill_anywhere_resume_is_byte_identical(s in scenario()) {
        let (cfg, kernel) = build(&s);
        let reference = format!("{:?}", gpu(&cfg, &kernel).run());

        let mut victim = gpu(&cfg, &kernel);
        match victim.run_interruptible(|c| c.0 >= s.kill) {
            Some(out) => {
                // Finished before the kill cycle: nothing to restore.
                prop_assert_eq!(format!("{out:?}"), reference);
            }
            None => {
                let ckpt = victim.checkpoint();
                let text = ckpt.to_json().to_string();
                let reparsed = json::parse(&text).expect("checkpoint is valid json");
                let ckpt2 = Checkpoint::from_json(&reparsed).expect("checkpoint decodes");
                prop_assert_eq!(
                    ckpt2.to_json().to_string(),
                    text,
                    "encode/decode/encode must be bit-stable"
                );

                let mut resumed = gpu(&cfg, &kernel);
                resumed.restore(&ckpt2).expect("restore succeeds");
                prop_assert_eq!(
                    snapshot::first_divergence(&resumed.checkpoint().state, &ckpt.state),
                    None,
                    "restored state must re-encode identically"
                );

                prop_assert_eq!(
                    format!("{:?}", resumed.run()),
                    reference.clone(),
                    "restored run diverged (killed at cycle {})",
                    s.kill
                );
                // The suspended original also finishes identically.
                prop_assert_eq!(format!("{:?}", victim.run()), reference);
            }
        }
    }

    /// A checkpoint artifact truncated at any byte is rejected with a
    /// typed error on load — it can never be partially applied.
    #[test]
    fn torn_checkpoint_tail_is_rejected(cut_seed in any::<u64>()) {
        let (cfg, kernel) = build(&Scenario {
            warps: 2,
            loads: 8,
            stride: 64,
            kill: 40,
            metrics: true,
            faults: false,
        });
        let mut victim = gpu(&cfg, &kernel);
        prop_assert!(victim.run_interruptible(|c| c.0 >= 40).is_none());
        let dir = std::env::temp_dir().join(format!("snake-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let whole = dir.join("whole.ckpt");
        victim.checkpoint().write_atomic(&whole).unwrap();
        let text = std::fs::read_to_string(&whole).unwrap();
        let body = text.trim_end().len();
        let cut = 1 + (cut_seed as usize) % (body - 1);

        let torn = dir.join("torn.ckpt");
        std::fs::write(&torn, &text[..cut]).unwrap();
        let err = Checkpoint::load(&torn).expect_err("torn artifact must not load");
        prop_assert!(
            matches!(err, SnapshotError::Malformed { .. } | SnapshotError::SchemaMismatch { .. }),
            "cut at byte {} of {}: unexpected error {:?}",
            cut,
            body,
            err
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A restore that fails its fingerprint check leaves the device
/// untouched: it runs on to exactly the outcome a never-touched
/// device produces.
#[test]
fn refused_restore_leaves_the_device_unchanged() {
    let (cfg, kernel) = build(&Scenario {
        warps: 2,
        loads: 8,
        stride: 64,
        kill: 30,
        metrics: false,
        faults: false,
    });
    let mut victim = gpu(&cfg, &kernel);
    assert!(victim.run_interruptible(|c| c.0 >= 30).is_none());
    let ckpt = victim.checkpoint();

    let other = KernelTrace::new("different", kernel.warps().to_vec());
    let reference = format!("{:?}", gpu(&cfg, &other).run());
    let mut target = gpu(&cfg, &other);
    let err = target.restore(&ckpt).expect_err("fingerprint must differ");
    assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
    assert_eq!(
        format!("{:?}", target.run()),
        reference,
        "a refused restore must not perturb the device"
    );
}

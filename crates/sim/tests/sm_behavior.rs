//! Behavioral tests of the SM/GPU layer: CTA waves, scheduler
//! partitioning, stall taxonomy, divergence handling, and the
//! decoupled-L1 policy interactions that the unit tests inside the
//! crate cannot see end to end.

use snake_sim::{
    run_kernel, AccessEvent, AddrList, Address, CtaId, Gpu, GpuConfig, Instr, KernelTrace,
    NullPrefetcher, PrefetchContext, PrefetchPlacement, PrefetchRequest, Prefetcher, WarpTrace,
};

fn cfg() -> GpuConfig {
    GpuConfig::scaled(1)
}

fn streaming_warp(cta: u32, base: u64, loads: usize) -> WarpTrace {
    let instrs = (0..loads)
        .map(|i| Instr::load(i as u32, base + (i as u64) * 128))
        .collect();
    WarpTrace::new(CtaId(cta), instrs)
}

#[test]
fn cta_waves_rotate_through_slots() {
    // 8 CTAs x 8 warps on a 16-slot SM: 4 waves must run sequentially
    // and all instructions must retire.
    let warps: Vec<WarpTrace> = (0..8)
        .flat_map(|c| (0..8).map(move |w| streaming_warp(c, (c * 8 + w) as u64 * 65536, 6)))
        .collect();
    let k = KernelTrace::new("waves", warps);
    let out = run_kernel(cfg(), k, |_| Box::new(NullPrefetcher)).unwrap();
    assert_eq!(out.stats.instructions, 8 * 8 * 6);
}

#[test]
fn oversized_cta_is_rejected() {
    // One CTA with more warps than an SM can hold must be refused
    // loudly rather than silently deadlock.
    let warps: Vec<WarpTrace> = (0..17).map(|w| streaming_warp(0, w * 65536, 1)).collect();
    let k = KernelTrace::new("oversized", warps);
    let result = std::panic::catch_unwind(|| {
        let _ = Gpu::new(cfg(), k, |_| Box::new(NullPrefetcher));
    });
    assert!(result.is_err(), "CTA larger than the SM must panic");
}

#[test]
fn divergent_loads_fetch_every_transaction() {
    let instrs = vec![Instr::Load {
        pc: 0u32.into(),
        addrs: AddrList::from_vec(vec![Address(0), Address(4096), Address(8192)]),
    }];
    let k = KernelTrace::new("div", vec![WarpTrace::new(CtaId(0), instrs)]);
    let out = run_kernel(cfg(), k, |_| Box::new(NullPrefetcher)).unwrap();
    assert_eq!(out.stats.demand_loads, 3, "three transactions");
    assert_eq!(out.stats.l1.misses, 3);
}

/// Prefetcher that records whether it was ever trained on an event.
struct SpyPrefetcher {
    events: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Prefetcher for SpyPrefetcher {
    fn name(&self) -> &str {
        "spy"
    }
    fn on_demand_access(
        &mut self,
        _event: &AccessEvent,
        _ctx: &PrefetchContext,
        _out: &mut Vec<PrefetchRequest>,
    ) {
        self.events
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[test]
fn divergent_loads_do_not_train_the_prefetcher() {
    let instrs = vec![
        Instr::Load {
            pc: 0u32.into(),
            addrs: AddrList::from_vec(vec![Address(0), Address(4096)]),
        },
        Instr::load(1u32, 128u64),
    ];
    let k = KernelTrace::new("train", vec![WarpTrace::new(CtaId(0), instrs)]);
    let events = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let e2 = events.clone();
    let out = run_kernel(cfg(), k, move |_| {
        Box::new(SpyPrefetcher { events: e2.clone() })
    })
    .unwrap();
    assert_eq!(out.stats.demand_loads, 3);
    assert_eq!(
        events.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "only the coalesced load trains (§3.4)"
    );
}

/// Prefetcher that immediately prefetches a fixed future line.
struct OneShot {
    target: u64,
    done: bool,
}

impl Prefetcher for OneShot {
    fn name(&self) -> &str {
        "one-shot"
    }
    fn placement(&self) -> PrefetchPlacement {
        PrefetchPlacement::Decoupled
    }
    fn on_demand_access(
        &mut self,
        _event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if !self.done {
            self.done = true;
            out.push(PrefetchRequest::new(Address(self.target)));
        }
    }
}

#[test]
fn prefetched_line_turns_a_future_miss_into_a_hit() {
    // Load A triggers a prefetch of B; plenty of compute later, load B
    // must hit on the prefetched (then transferred) line.
    let instrs = vec![
        Instr::load(0u32, 0u64),
        Instr::compute(600), // long enough for the prefetch to land
        Instr::load(1u32, 1 << 20),
    ];
    let k = KernelTrace::new("oneshot", vec![WarpTrace::new(CtaId(0), instrs)]);
    let out = run_kernel(cfg(), k, |_| {
        Box::new(OneShot {
            target: 1 << 20,
            done: false,
        })
    })
    .unwrap();
    assert_eq!(out.stats.prefetch.issued, 1);
    assert_eq!(out.stats.prefetch.useful, 1);
    assert_eq!(out.stats.l1.hits_on_prefetch, 1, "B was covered");
    assert_eq!(out.stats.coverage(), 0.5);
    assert_eq!(out.stats.timely_coverage(), 0.5);
}

#[test]
fn late_prefetch_counts_as_covered_but_not_timely() {
    // No compute gap: the demand for B arrives while the prefetch is
    // still in flight and merges with it.
    let instrs = vec![
        Instr::load(0u32, 0u64),
        Instr::compute(1),
        Instr::load(1u32, 1 << 20),
    ];
    let k = KernelTrace::new("late", vec![WarpTrace::new(CtaId(0), instrs)]);
    let out = run_kernel(cfg(), k, |_| {
        Box::new(OneShot {
            target: 1 << 20,
            done: false,
        })
    })
    .unwrap();
    assert_eq!(out.stats.prefetch.late, 1);
    assert_eq!(out.stats.l1.merges_with_prefetch, 1);
    assert_eq!(out.stats.coverage(), 0.5, "covered");
    assert_eq!(out.stats.timely_coverage(), 0.0, "but not timely");
}

#[test]
fn stall_taxonomy_distinguishes_compute_from_memory() {
    // A single warp alternating long compute and loads: stalls happen
    // both ways, but not every stall is a memory stall.
    let mut instrs = Vec::new();
    for i in 0..8u64 {
        instrs.push(Instr::load(i as u32, i * 4096));
        instrs.push(Instr::compute(50));
    }
    let k = KernelTrace::new("mix", vec![WarpTrace::new(CtaId(0), instrs)]);
    let out = run_kernel(cfg(), k, |_| Box::new(NullPrefetcher)).unwrap();
    let s = &out.stats;
    assert!(s.all_stall_cycles > 0);
    assert!(s.all_stall_mem_cycles > 0);
    assert!(
        s.all_stall_mem_cycles < s.all_stall_cycles,
        "compute stalls must show up: {} vs {}",
        s.all_stall_mem_cycles,
        s.all_stall_cycles
    );
}

#[test]
fn two_sms_split_the_work() {
    let warps: Vec<WarpTrace> = (0..4)
        .flat_map(|c| (0..4).map(move |w| streaming_warp(c, (c * 4 + w) as u64 * 65536, 8)))
        .collect();
    let k = KernelTrace::new("split", warps);
    let one = run_kernel(GpuConfig::scaled(1), k.clone(), |_| {
        Box::new(NullPrefetcher)
    })
    .unwrap()
    .stats
    .cycles;
    let two = run_kernel(GpuConfig::scaled(2), k, |_| Box::new(NullPrefetcher))
        .unwrap()
        .stats
        .cycles;
    assert!(
        (two as f64) < (one as f64) * 0.9,
        "2 SMs must be meaningfully faster: {one} vs {two}"
    );
}

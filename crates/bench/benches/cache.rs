//! Criterion micro-benchmarks for the unified L1's access paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snake_sim::cache::unified_l1::{L1Mode, UnifiedL1};
use snake_sim::{Cycle, GpuConfig, LineAddr, WarpId};

fn l1(mode: L1Mode) -> UnifiedL1 {
    let mut cfg = GpuConfig::scaled(1);
    cfg.miss_queue_depth = 1024;
    cfg.mshr_entries = 4096;
    UnifiedL1::new(&cfg, mode)
}

fn bench_demand_hit(c: &mut Criterion) {
    c.bench_function("l1_demand_hit", |b| {
        let mut cache = l1(L1Mode::Plain);
        // Install a small resident set.
        for i in 0..16u64 {
            cache.access_demand(LineAddr(i), WarpId(0), Cycle(0));
            cache.pop_outgoing();
            cache.fill(LineAddr(i), Cycle(1));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.access_demand(LineAddr(i % 16), WarpId(0), Cycle(i)))
        });
    });
}

fn bench_miss_fill_cycle(c: &mut Criterion) {
    c.bench_function("l1_miss_fill_roundtrip", |b| {
        let mut cache = l1(L1Mode::Plain);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr(i);
            let out = cache.access_demand(line, WarpId(0), Cycle(i));
            cache.pop_outgoing();
            cache.fill(line, Cycle(i));
            black_box(out)
        });
    });
}

fn bench_prefetch_issue(c: &mut Criterion) {
    c.bench_function("l1_prefetch_request_decoupled", |b| {
        let mut cache = l1(L1Mode::Decoupled);
        cache.set_trained(true);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = cache.request_prefetch(LineAddr(i), Cycle(i));
            cache.pop_outgoing();
            cache.fill(LineAddr(i), Cycle(i));
            black_box(r)
        });
    });
}

criterion_group!(
    cache,
    bench_demand_hit,
    bench_miss_fill_cycle,
    bench_prefetch_issue
);
criterion_main!(cache);

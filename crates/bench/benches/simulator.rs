//! End-to-end simulator throughput: full LPS runs under the baseline
//! and under Snake. Criterion reports time per simulated kernel; the
//! interesting derived figure is simulated cycles per wall-clock
//! second (reported via the measured run lengths).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snake_core::PrefetcherKind;
use snake_sim::{run_kernel, GpuConfig, NullPrefetcher};
use snake_workloads::{Benchmark, WorkloadSize};

fn small() -> WorkloadSize {
    WorkloadSize {
        warps_per_cta: 4,
        ctas: 4,
        iters: 24,
        seed: 1,
    }
}

fn bench_baseline_sim(c: &mut Criterion) {
    c.bench_function("simulate_lps_baseline", |b| {
        let size = small();
        b.iter(|| {
            let out = run_kernel(GpuConfig::scaled(1), Benchmark::Lps.build(&size), |_| {
                Box::new(NullPrefetcher)
            })
            .expect("valid");
            black_box(out.stats.cycles)
        });
    });
}

fn bench_snake_sim(c: &mut Criterion) {
    c.bench_function("simulate_lps_snake", |b| {
        let size = small();
        let cfg = GpuConfig::scaled(1);
        let warps = cfg.max_warps_per_sm;
        b.iter(|| {
            let out = run_kernel(cfg.clone(), Benchmark::Lps.build(&size), |_| {
                PrefetcherKind::Snake.build(warps)
            })
            .expect("valid");
            black_box(out.stats.cycles)
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("generate_all_traces", |b| {
        let size = small();
        b.iter(|| {
            let total: usize = Benchmark::all()
                .iter()
                .map(|bm| bm.build(&size).total_instrs())
                .sum();
            black_box(total)
        });
    });
}

fn bench_chain_analysis(c: &mut Criterion) {
    c.bench_function("predictability_analysis_lps", |b| {
        let kernel = Benchmark::Lps.build(&small());
        b.iter(|| black_box(snake_core::analysis::predictability(&kernel)));
    });
}

criterion_group!(
    simulator,
    bench_baseline_sim,
    bench_snake_sim,
    bench_trace_generation,
    bench_chain_analysis
);
criterion_main!(simulator);

//! Criterion micro-benchmarks for Snake's Head/Tail tables — the
//! structures on the L1 access critical path (the paper reports a
//! 2-cycle CAM lookup; here we verify the software model is fast
//! enough to simulate at scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snake_core::snake::head_table::HeadTable;
use snake_core::snake::tail_table::{TailTable, TailTableConfig};
use snake_sim::{Address, Pc, WarpId};

fn bench_head_update(c: &mut Criterion) {
    c.bench_function("head_table_update", |b| {
        let mut head = HeadTable::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let w = WarpId((i % 64) as u32);
            black_box(head.update(w, Pc((i % 7) as u32), Address(i * 128)))
        });
    });
}

fn bench_tail_observe(c: &mut Criterion) {
    c.bench_function("tail_table_observe", |b| {
        let mut head = HeadTable::new(64);
        let mut tail = TailTable::new(TailTableConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let w = WarpId((i % 8) as u32);
            if let Some(t) = head.update(w, Pc((i % 4) as u32 * 10), Address(i * 128)) {
                tail.observe(black_box(&t));
            }
        });
    });
}

fn bench_tail_generate(c: &mut Criterion) {
    c.bench_function("tail_table_generate_depth8", |b| {
        // Pre-train a 4-link chain cycle on 3 warps.
        let mut head = HeadTable::new(8);
        let mut tail = TailTable::new(TailTableConfig::default());
        for w in 0..3u32 {
            let base = 1_000_000 * u64::from(w);
            for i in 0..8u64 {
                for (pc, off) in [(10u32, 0u64), (20, 400), (30, 1000), (40, 1800)] {
                    if let Some(t) = head.update(WarpId(w), Pc(pc), Address(base + i * 4096 + off))
                    {
                        tail.observe(&t);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            out.clear();
            tail.generate(
                WarpId((i % 3) as u32),
                Pc(10),
                Address(i * 4096),
                8,
                2,
                true,
                &mut out,
            );
            black_box(out.len())
        });
    });
}

criterion_group!(
    tables,
    bench_head_update,
    bench_tail_observe,
    bench_tail_generate
);
criterion_main!(tables);

//! End-to-end tests for the process-isolated job executor: report
//! byte-identity across executors, crash classification through the
//! real `repro --exec-job` worker, graceful degradation when the
//! worker binary is missing, and lease-kill → checkpoint-resume.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use snake_bench::runner::JobRun;
use snake_bench::supervise::{
    self, campaign, CrashKind, ExecContext, ExecError, JobExecutor, SandboxLimits, SweepConfig,
};
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_workloads::Benchmark;

/// The real worker binary, compiled by cargo for this test run.
fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_repro"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snake-executor-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Acceptance: the same campaign through the in-thread executor and
/// the subprocess sandbox must render byte-identically — the report
/// wire format is lossless.
#[test]
fn sandboxed_sweep_renders_byte_identical_to_in_thread() {
    let h = Harness::quick();
    let jobs = campaign(
        &[Benchmark::Lps, Benchmark::Cp],
        &[PrefetcherKind::Baseline, PrefetcherKind::Snake],
    );

    let run = |executor: JobExecutor| {
        let cfg = SweepConfig {
            workers: 2,
            executor: std::sync::Arc::new(executor),
            ..SweepConfig::default()
        };
        supervise::run_campaign(&h, &jobs, &cfg, None, false).unwrap()
    };
    let reference = run(JobExecutor::in_thread());
    assert_eq!(reference.exit_code(), 0);
    let sandboxed = run(JobExecutor::sandbox_with_worker(
        SandboxLimits::default(),
        worker(),
    ));
    assert_eq!(sandboxed.exit_code(), 0, "sandboxed sweep finishes clean");
    assert_eq!(
        sandboxed.render(false),
        reference.render(false),
        "sandboxed reports must be byte-identical to in-thread reports"
    );
    assert_eq!(
        sandboxed.render(true),
        reference.render(true),
        "markdown too"
    );
}

/// A missing worker binary must not fail the job: the executor
/// degrades to in-thread execution, sets the sticky health flag, and
/// the report is still byte-identical to a native in-thread run.
#[test]
fn spawn_failure_degrades_to_in_thread_with_sticky_flag() {
    let h = Harness::quick();
    let job = &campaign(&[Benchmark::Lib], &[PrefetcherKind::Snake])[0];

    let broken = JobExecutor::sandbox_with_worker(
        SandboxLimits::default(),
        PathBuf::from("/nonexistent/snake-worker"),
    );
    assert!(!broken.degraded(), "healthy until a spawn fails");
    let run = broken
        .run(&h, job, &ExecContext::default(), &mut |_, _| {})
        .expect("degraded execution still completes the job");
    assert!(broken.degraded(), "the degradation flag is sticky");

    let native = JobExecutor::in_thread()
        .run(&h, job, &ExecContext::default(), &mut |_, _| {})
        .expect("in-thread reference");
    match (run, native) {
        (JobRun::Finished(a), JobRun::Finished(b)) => {
            assert_eq!(
                a.report.to_json().to_string(),
                b.report.to_json().to_string(),
                "degraded report must match the in-thread report byte-for-byte"
            );
        }
        other => panic!("both executions should finish, got {other:?}"),
    }
}

/// A worker that emits garbage instead of the NDJSON protocol is a
/// protocol error — never a silently mis-parsed report.
#[test]
fn garbage_worker_output_is_a_protocol_error() {
    let dir = scratch("garbage");
    let script = dir.join("garbage-worker");
    std::fs::write(
        &script,
        "#!/bin/sh\necho 'this is not the protocol'\nexit 0\n",
    )
    .expect("write script");
    let mut perms = std::fs::metadata(&script).expect("stat").permissions();
    std::os::unix::fs::PermissionsExt::set_mode(&mut perms, 0o755);
    std::fs::set_permissions(&script, perms).expect("chmod");

    let h = Harness::quick();
    let job = &campaign(&[Benchmark::Lps], &[PrefetcherKind::Baseline])[0];
    let exec = JobExecutor::sandbox_with_worker(SandboxLimits::default(), script);
    match exec.run(&h, job, &ExecContext::default(), &mut |_, _| {}) {
        Err(ExecError::Crash(c)) => assert_eq!(c.kind, CrashKind::ProtocolError, "{c:?}"),
        other => panic!("garbage output must be a protocol error, got {other:?}"),
    }
    assert!(!exec.degraded(), "a protocol error is not a spawn failure");
}

/// A worker that exits cleanly without ever sending a terminal line is
/// also a protocol error (a truncated stream must not look like
/// success).
#[test]
fn silent_worker_exit_is_a_protocol_error() {
    let dir = scratch("silent");
    let script = dir.join("silent-worker");
    std::fs::write(&script, "#!/bin/sh\nexit 0\n").expect("write script");
    let mut perms = std::fs::metadata(&script).expect("stat").permissions();
    std::os::unix::fs::PermissionsExt::set_mode(&mut perms, 0o755);
    std::fs::set_permissions(&script, perms).expect("chmod");

    let h = Harness::quick();
    let job = &campaign(&[Benchmark::Lps], &[PrefetcherKind::Baseline])[0];
    let exec = JobExecutor::sandbox_with_worker(SandboxLimits::default(), script);
    match exec.run(&h, job, &ExecContext::default(), &mut |_, _| {}) {
        Err(ExecError::Crash(c)) => assert_eq!(c.kind, CrashKind::ProtocolError, "{c:?}"),
        other => panic!("silent exit must be a protocol error, got {other:?}"),
    }
}

/// An expired wall-clock lease with no checkpoint to resume from is a
/// non-retryable timeout crash.
#[test]
fn lease_expiry_without_checkpoint_is_timed_out() {
    // Standard harness: slow enough that the child cannot finish
    // before the monitor's first poll.
    let h = Harness::standard();
    let job = &campaign(&[Benchmark::Lps], &[PrefetcherKind::Snake])[0];
    let exec = JobExecutor::sandbox_with_worker(
        SandboxLimits {
            lease: Some(Duration::from_millis(1)),
            ..SandboxLimits::default()
        },
        worker(),
    );
    match exec.run(&h, job, &ExecContext::default(), &mut |_, _| {}) {
        Err(ExecError::Crash(c)) => {
            assert_eq!(c.kind, CrashKind::TimedOut, "{c:?}");
            assert!(!c.kind.retryable(), "timeouts are deterministic: no retry");
        }
        other => panic!("a 1ms lease must time the job out, got {other:?}"),
    }
}

/// Acceptance: a lease-killed child with a durable checkpoint suspends
/// (like a deadline-suspended in-thread job), and resuming — through
/// the *other* executor — finishes byte-identically to an
/// uninterrupted run.
#[test]
fn lease_killed_job_resumes_from_checkpoint_byte_identically() {
    let dir = scratch("lease-resume");
    let ckpt = dir.join("job.ckpt");
    let mut h = Harness::standard();
    // A tight cadence so the child is guaranteed a durable checkpoint
    // within the lease.
    h.cfg.checkpoint_every = Some(200);
    let job = &campaign(&[Benchmark::Lps], &[PrefetcherKind::Snake])[0];

    let exec = JobExecutor::sandbox_with_worker(
        SandboxLimits {
            lease: Some(Duration::from_millis(400)),
            ..SandboxLimits::default()
        },
        worker(),
    );
    let mut checkpoints = 0u32;
    let ctx = ExecContext {
        checkpoint_to: Some(&ckpt),
        ..ExecContext::default()
    };
    let run = exec
        .run(&h, job, &ctx, &mut |_, _| checkpoints += 1)
        .expect("a checkpointed lease kill is a suspension, not a crash");
    let cycle = match run {
        JobRun::Suspended { cycle, .. } => cycle,
        other => panic!("expected suspension at the lease, got {other:?}"),
    };
    assert!(cycle > 0, "the checkpoint captured real progress");
    assert!(
        checkpoints > 0,
        "checkpoint notifications reached the parent"
    );
    assert!(ckpt.exists(), "the checkpoint artifact is durable");

    // Resume in-thread (crossing executors) and compare to a clean run.
    let resume_ctx = ExecContext {
        resume_from: Some(&ckpt),
        ..ExecContext::default()
    };
    let resumed = JobExecutor::in_thread()
        .run(&h, job, &resume_ctx, &mut |_, _| {})
        .expect("resume completes");
    let clean = JobExecutor::in_thread()
        .run(&h, job, &ExecContext::default(), &mut |_, _| {})
        .expect("clean reference run");
    match (resumed, clean) {
        (JobRun::Finished(a), JobRun::Finished(b)) => assert_eq!(
            a.report.to_json().to_string(),
            b.report.to_json().to_string(),
            "kill-resume must be byte-identical to an uninterrupted run"
        ),
        other => panic!("both runs should finish, got {other:?}"),
    }
}

/// Crash classification through the real binary: an injected
/// `std::process::abort()` in a sandboxed child quarantines that job
/// as `signal 6` while the sibling completes — and the whole sweep
/// exits with the quarantine code, not a crash.
#[test]
fn injected_abort_quarantines_with_decoded_signal_kind() {
    let output = Command::new(worker())
        .args([
            "--sweep",
            "--quick",
            "--isolate",
            "--benchmarks",
            "LPS,CP",
            "--mechanisms",
            "baseline",
            "--retries",
            "2",
        ])
        .env("SNAKE_EXEC_WORKER", worker())
        .env("SNAKE_EXEC_CRASH", "CP/baseline=abort")
        .output()
        .expect("run repro --sweep --isolate");
    assert_eq!(
        output.status.code(),
        Some(3),
        "a quarantined job must exit with the quarantine code\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("signal 6"),
        "the quarantine table must name the decoded crash kind:\n{stdout}"
    );
    assert!(
        stdout.contains("CP/baseline"),
        "the crashed job is named:\n{stdout}"
    );
    assert!(
        stdout.contains("LPS"),
        "the sibling's report row still renders:\n{stdout}"
    );
}

/// An address-space blowout under `--isolate-mem` is classified as an
/// OOM kill (the allocator's abort message is decoded), not a generic
/// signal.
#[test]
fn injected_oom_under_rlimit_is_classified_as_oom() {
    let output = Command::new(worker())
        .args([
            "--sweep",
            "--quick",
            "--isolate",
            "--isolate-mem",
            "512",
            "--benchmarks",
            "LPS,CP",
            "--mechanisms",
            "baseline",
            "--retries",
            "2",
        ])
        .env("SNAKE_EXEC_WORKER", worker())
        .env("SNAKE_EXEC_CRASH", "CP/baseline=oom")
        .output()
        .expect("run repro --sweep --isolate --isolate-mem");
    assert_eq!(
        output.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("oom"),
        "the blowout must be classified as oom:\n{stdout}"
    );
    assert!(stdout.contains("LPS"), "sibling unharmed:\n{stdout}");
}

//! End-to-end tests for the `snaked` telemetry daemon: an in-process
//! daemon on a temp socket, driven through exactly the client
//! functions `snakectl` ships. Covers the acceptance contract —
//! subscribe mid-run and receive cycle-stamped window rows with exact
//! drop accounting, zero-subscriber runs whose report bytes are
//! bit-identical to a daemon-free run, and cancellation surfacing as a
//! distinct exit code.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use snake_bench::serve::{self, DaemonHandle, DaemonOptions, Request, SubmitSpec, EXIT_CANCELLED};
use snake_bench::Harness;
use snake_core::json::Value;
use snake_core::PrefetcherKind;
use snake_workloads::Benchmark;

use serve::client;

/// Starts an in-process daemon on a test-unique temp socket.
fn daemon(name: &str) -> (PathBuf, DaemonHandle) {
    let socket =
        std::env::temp_dir().join(format!("snake-serve-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let handle = serve::serve(&DaemonOptions {
        socket: socket.clone(),
        state_log: None,
    })
    .expect("daemon starts");
    (socket, handle)
}

/// Submits a spec and returns the assigned job id.
fn submit(socket: &Path, spec: SubmitSpec) -> u64 {
    client::request(socket, &Request::Submit(spec))
        .expect("submit accepted")
        .get("id")
        .and_then(Value::as_u64)
        .expect("submit response carries the job id")
}

/// Shuts the daemon down and joins its threads.
fn shutdown(socket: &Path, handle: DaemonHandle) {
    client::request(socket, &Request::Shutdown).expect("shutdown accepted");
    handle.join();
}

/// Submit a two-job sweep with full event streaming and tail it while
/// it runs: the stream must carry at least one window row, cycles must
/// be non-decreasing within each job, and the `done` line's
/// delivered/dropped totals must match the stream exactly
/// ([`client::tail`] errors on any accounting mismatch).
#[test]
fn tail_mid_run_streams_cycle_stamped_windows_with_exact_accounting() {
    let (socket, handle) = daemon("tail");
    // Standard harness with a cycle budget: each job runs far longer
    // than the tail's subscription latency, so the tail reliably
    // attaches mid-run and observes live windows.
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: false,
            budget: Some(30_000),
            window: Some(200),
            events: true,
            priority: 0,
        },
    );

    let mut windows = 0u64;
    let mut events = 0u64;
    let mut last_cycle: HashMap<String, u64> = HashMap::new();
    let end = client::tail(&socket, id, |v| {
        let kind = v.get("type").and_then(Value::as_str).unwrap_or("");
        if kind != "window" && kind != "event" {
            return;
        }
        let job = v
            .get("job")
            .and_then(Value::as_str)
            .expect("record carries its job id")
            .to_string();
        let cycle = v
            .get("cycle")
            .and_then(Value::as_u64)
            .expect("record is cycle-stamped");
        let prev = last_cycle.entry(job).or_insert(0);
        assert!(
            cycle >= *prev,
            "cycle went backwards within a job: {cycle} after {prev}"
        );
        *prev = cycle;
        if kind == "window" {
            windows += 1;
        } else {
            events += 1;
        }
    })
    .expect("tail stream verifies end-to-end");

    assert!(windows >= 1, "tail saw no window rows");
    assert!(events >= 1, "tail saw no trace events despite events:true");
    assert_eq!(end.state, "done");
    assert_eq!(end.exit, 0);
    assert_eq!(end.delivered, windows + events);
    assert!(
        !last_cycle.is_empty(),
        "tail attached but observed no job at all"
    );

    shutdown(&socket, handle);
}

/// With no tail attached, the telemetry plane must be invisible: the
/// report the daemon publishes for a job is byte-for-byte identical to
/// the report a plain daemon-free [`Harness`] run produces — same
/// config, no ring, no daemon.
#[test]
fn zero_subscriber_daemon_report_bytes_match_daemon_free_run() {
    let (socket, handle) = daemon("quiet");
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: true,
            budget: None,
            window: None, // daemon defaults to 500
            events: false,
            priority: 0,
        },
    );

    // Poll status — never tail — so the job runs with zero subscribers.
    let deadline = Instant::now() + Duration::from_secs(120);
    let job = loop {
        let resp =
            client::request(&socket, &Request::Status { id: Some(id) }).expect("status answered");
        let job = resp.get("job").expect("status carries the job").clone();
        match job.get("state").and_then(Value::as_str) {
            Some("done") => break job,
            Some("cancelled") => panic!("job was cancelled unexpectedly"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "daemon never finished the job");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(job.get("exit").and_then(Value::as_u64), Some(0));
    let reports = match job.get("reports") {
        Some(Value::Arr(rows)) => rows.clone(),
        other => panic!("done status must carry reports, got {other:?}"),
    };
    assert_eq!(reports.len(), 1);
    let daemon_report = reports[0]
        .get("report")
        .expect("report row present")
        .to_string();
    let daemon_stop = reports[0]
        .get("stop")
        .and_then(Value::as_str)
        .expect("stop label present")
        .to_string();

    // The daemon-free reference: same harness the daemon resolves for
    // this spec (quick + metrics window 500), no ring anywhere.
    let mut harness = Harness::quick();
    harness.cfg.metrics_window = Some(500);
    let direct = harness
        .run_job(Benchmark::Lps, PrefetcherKind::Snake)
        .expect("direct run succeeds");
    assert_eq!(
        daemon_report,
        direct.report.to_json().to_string(),
        "telemetry plane perturbed the simulation (observer effect)"
    );
    assert_eq!(daemon_stop, direct.stop.label());

    shutdown(&socket, handle);
}

/// Cancelling a job makes its tail terminate with the distinct
/// cancelled exit code, never a fake success.
#[test]
fn cancelled_job_tails_as_cancelled_with_distinct_exit_code() {
    let (socket, handle) = daemon("cancel");
    // Occupy the single scheduler slot so the victim stays queued.
    let _busy = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS,CP".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: true,
            budget: Some(50_000),
            window: Some(500),
            events: false,
            priority: 0,
        },
    );
    let victim = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: true,
            budget: None,
            window: None,
            events: false,
            priority: 0,
        },
    );

    client::request(&socket, &Request::Cancel { id: victim }).expect("cancel accepted");
    let end = client::tail(&socket, victim, |_| {}).expect("tail of cancelled job verifies");
    assert_eq!(end.state, "cancelled");
    assert_eq!(end.exit, EXIT_CANCELLED);

    shutdown(&socket, handle);
}

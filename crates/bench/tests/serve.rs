//! End-to-end tests for the `snaked` telemetry daemon: an in-process
//! daemon on a temp socket, driven through exactly the client
//! functions `snakectl` ships. Covers the acceptance contract —
//! subscribe mid-run and receive cycle-stamped window rows with exact
//! drop accounting, zero-subscriber runs whose report bytes are
//! bit-identical to a daemon-free run, cancellation surfacing as a
//! distinct exit code — plus the multi-tenant hardening: typed quota
//! rejections that never affect other clients, deadline slices that
//! suspend-to-checkpoint and requeue without changing final bytes,
//! reconnectable tails, counted subscriber disconnects, a cancel that
//! wins every race with checkpointing, and a journal that degrades
//! loudly (never silently, never fatally) when its disk fails.
//!
//! Kill -9 crash/recovery is exercised separately in `serve_chaos.rs`
//! (it needs real processes to kill).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use snake_bench::serve::{self, DaemonHandle, DaemonOptions, Request, SubmitSpec, EXIT_CANCELLED};
use snake_bench::Harness;
use snake_core::json::Value;
use snake_core::PrefetcherKind;
use snake_workloads::Benchmark;

use serve::client;
use serve::journal;

/// A fresh per-test scratch directory (sockets, journals, checkpoints).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snake-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Default options on a test-unique socket inside `dir`.
fn options(dir: &Path) -> DaemonOptions {
    DaemonOptions {
        socket: dir.join("snaked.sock"),
        state_log: None,
        checkpoint_every: None,
        quota_queued: None,
        quota_running: None,
        workers: 1,
        isolate: false,
    }
}

/// Starts an in-process daemon on a test-unique temp socket.
fn daemon(name: &str) -> (PathBuf, DaemonHandle) {
    let opts = options(&scratch(name));
    let handle = serve::serve(&opts).expect("daemon starts");
    (opts.socket, handle)
}

/// Submits a spec and returns the assigned job id.
fn submit(socket: &Path, spec: SubmitSpec) -> u64 {
    client::request(socket, &Request::Submit(spec))
        .expect("submit accepted")
        .get("id")
        .and_then(Value::as_u64)
        .expect("submit response carries the job id")
}

/// Polls one job's status until it reaches `want`, returning the job
/// object. Panics on an unexpected terminal state or a stuck daemon.
fn wait_for(socket: &Path, id: u64, want: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp =
            client::request(socket, &Request::Status { id: Some(id) }).expect("status answered");
        let job = resp.get("job").expect("status carries the job").clone();
        let state = job.get("state").and_then(Value::as_str).unwrap_or("?");
        if state == want {
            return job;
        }
        assert!(
            !matches!(state, "done" | "cancelled"),
            "job {id} terminal as {state:?} while waiting for {want:?}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {want:?} (stuck at {state:?})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Shuts the daemon down and joins its threads.
fn shutdown(socket: &Path, handle: DaemonHandle) {
    client::request(socket, &Request::Shutdown).expect("shutdown accepted");
    handle.join();
}

/// Submit a two-job sweep with full event streaming and tail it while
/// it runs: the stream must carry at least one window row, cycles must
/// be non-decreasing within each job, and the `done` line's
/// delivered/dropped totals must match the stream exactly
/// ([`client::tail`] errors on any accounting mismatch).
#[test]
fn tail_mid_run_streams_cycle_stamped_windows_with_exact_accounting() {
    let (socket, handle) = daemon("tail");
    // Standard harness with a cycle budget: each job runs far longer
    // than the tail's subscription latency, so the tail reliably
    // attaches mid-run and observes live windows.
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: false,
            budget: Some(30_000),
            window: Some(200),
            events: true,
            ..SubmitSpec::default()
        },
    );

    let mut windows = 0u64;
    let mut events = 0u64;
    let mut last_cycle: HashMap<String, u64> = HashMap::new();
    let end = client::tail(&socket, id, |v| {
        let kind = v.get("type").and_then(Value::as_str).unwrap_or("");
        if kind != "window" && kind != "event" {
            return;
        }
        let job = v
            .get("job")
            .and_then(Value::as_str)
            .expect("record carries its job id")
            .to_string();
        let cycle = v
            .get("cycle")
            .and_then(Value::as_u64)
            .expect("record is cycle-stamped");
        let prev = last_cycle.entry(job).or_insert(0);
        assert!(
            cycle >= *prev,
            "cycle went backwards within a job: {cycle} after {prev}"
        );
        *prev = cycle;
        if kind == "window" {
            windows += 1;
        } else {
            events += 1;
        }
    })
    .expect("tail stream verifies end-to-end");

    assert!(windows >= 1, "tail saw no window rows");
    assert!(events >= 1, "tail saw no trace events despite events:true");
    assert_eq!(end.state, "done");
    assert_eq!(end.exit, 0);
    assert_eq!(end.delivered, windows + events);
    assert!(
        !last_cycle.is_empty(),
        "tail attached but observed no job at all"
    );

    shutdown(&socket, handle);
}

/// With no tail attached, the telemetry plane must be invisible: the
/// report the daemon publishes for a job is byte-for-byte identical to
/// the report a plain daemon-free [`Harness`] run produces — same
/// config, no ring, no daemon.
#[test]
fn zero_subscriber_daemon_report_bytes_match_daemon_free_run() {
    let (socket, handle) = daemon("quiet");
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: true,
            ..SubmitSpec::default() // daemon defaults the window to 500
        },
    );

    // Poll status — never tail — so the job runs with zero subscribers.
    let job = wait_for(&socket, id, "done");
    assert_eq!(job.get("exit").and_then(Value::as_u64), Some(0));
    let reports = match job.get("reports") {
        Some(Value::Arr(rows)) => rows.clone(),
        other => panic!("done status must carry reports, got {other:?}"),
    };
    assert_eq!(reports.len(), 1);
    let daemon_report = reports[0]
        .get("report")
        .expect("report row present")
        .to_string();
    let daemon_stop = reports[0]
        .get("stop")
        .and_then(Value::as_str)
        .expect("stop label present")
        .to_string();

    // The daemon-free reference: same harness the daemon resolves for
    // this spec (quick + metrics window 500), no ring anywhere.
    let mut harness = Harness::quick();
    harness.cfg.metrics_window = Some(500);
    let direct = harness
        .run_job(Benchmark::Lps, PrefetcherKind::Snake)
        .expect("direct run succeeds");
    assert_eq!(
        daemon_report,
        direct.report.to_json().to_string(),
        "telemetry plane perturbed the simulation (observer effect)"
    );
    assert_eq!(daemon_stop, direct.stop.label());

    shutdown(&socket, handle);
}

/// Cancelling a job makes its tail terminate with the distinct
/// cancelled exit code, never a fake success.
#[test]
fn cancelled_job_tails_as_cancelled_with_distinct_exit_code() {
    let (socket, handle) = daemon("cancel");
    // Occupy the single scheduler slot so the victim stays queued.
    let _busy = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS,CP".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: true,
            budget: Some(50_000),
            window: Some(500),
            ..SubmitSpec::default()
        },
    );
    let victim = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: true,
            ..SubmitSpec::default()
        },
    );

    client::request(&socket, &Request::Cancel { id: victim }).expect("cancel accepted");
    let end = client::tail(&socket, victim, |_| {}).expect("tail of cancelled job verifies");
    assert_eq!(end.state, "cancelled");
    assert_eq!(end.exit, EXIT_CANCELLED);

    shutdown(&socket, handle);
}

/// A client at its queued quota gets the *typed* `"quota"` rejection —
/// and other clients (and the anonymous bucket) are untouched.
#[test]
fn quota_rejection_is_typed_and_leaves_other_clients_alone() {
    let dir = scratch("quota");
    let opts = DaemonOptions {
        quota_queued: Some(1),
        ..options(&dir)
    };
    let socket = opts.socket.clone();
    let handle = serve::serve(&opts).expect("daemon starts");

    // A long-running job occupies the scheduler; Running jobs do not
    // count against the *queued* quota.
    let busy = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline".into()),
            quick: false,
            budget: Some(60_000),
            client: Some("alice".into()),
            ..SubmitSpec::default()
        },
    );
    wait_for(&socket, busy, "running");

    let queued = SubmitSpec {
        benchmarks: Some("LPS".into()),
        mechanisms: Some("snake".into()),
        quick: true,
        client: Some("alice".into()),
        ..SubmitSpec::default()
    };
    let _alice_queued = submit(&socket, queued.clone());
    // Second queued submit for alice: rejected, typed, no job id burned.
    let err = client::request(&socket, &Request::Submit(queued.clone()))
        .expect_err("over-quota submit must be rejected");
    assert!(
        err.has_code("quota"),
        "rejection must carry the typed quota code, got {err:?}"
    );
    assert!(
        err.to_string().contains("alice"),
        "rejection names the client: {err}"
    );
    // A different client and the anonymous bucket are unaffected.
    let bob = submit(
        &socket,
        SubmitSpec {
            client: Some("bob".into()),
            ..queued.clone()
        },
    );
    let anon = submit(
        &socket,
        SubmitSpec {
            client: None,
            ..queued
        },
    );
    assert!(bob > 0 && anon > 0);

    shutdown(&socket, handle);
}

/// With a running-jobs quota, the scheduler passes over a saturated
/// client's queued work — without starving anyone else — and picks it
/// back up the moment a slot frees.
#[test]
fn running_quota_holds_a_client_without_starving_others() {
    let dir = scratch("runquota");
    let opts = DaemonOptions {
        quota_running: Some(1),
        // Two workers: without concurrency a running quota of 1 can
        // never be the thing holding alice's second job back.
        workers: 2,
        ..options(&dir)
    };
    let socket = opts.socket.clone();
    let handle = serve::serve(&opts).expect("daemon starts");

    let long = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline".into()),
            quick: false,
            budget: Some(120_000),
            client: Some("alice".into()),
            ..SubmitSpec::default()
        },
    );
    wait_for(&socket, long, "running");
    let quick = SubmitSpec {
        benchmarks: Some("LPS".into()),
        mechanisms: Some("snake".into()),
        quick: true,
        ..SubmitSpec::default()
    };
    let alice2 = submit(
        &socket,
        SubmitSpec {
            client: Some("alice".into()),
            ..quick.clone()
        },
    );
    let bob = submit(
        &socket,
        SubmitSpec {
            client: Some("bob".into()),
            ..quick
        },
    );
    // Bob was submitted *after* alice2 at the same priority, yet runs
    // first: alice is at her running quota, and the scheduler must not
    // let her queued job block the line.
    let job = wait_for(&socket, bob, "done");
    assert_eq!(job.get("exit").and_then(Value::as_u64), Some(0));
    let alice2_state = client::request(&socket, &Request::Status { id: Some(alice2) })
        .expect("status answered")
        .get("job")
        .and_then(|j| j.get("state"))
        .and_then(Value::as_str)
        .map(str::to_string);
    assert_eq!(
        alice2_state.as_deref(),
        Some("queued"),
        "alice's second job must wait for her running slot"
    );
    // Freeing the slot un-blocks her immediately.
    client::request(&socket, &Request::Cancel { id: long }).expect("cancel accepted");
    wait_for(&socket, alice2, "done");

    shutdown(&socket, handle);
}

/// A per-job deadline suspends the running simulation to a checkpoint,
/// requeues the sweep, and later slices resume mid-simulation — and
/// the final report bytes are identical to a run that was never
/// preempted (checkpoint/restore is bit-exact).
#[test]
fn deadline_slices_suspend_requeue_and_finish_byte_identically() {
    let dir = scratch("deadline");
    let state = dir.join("state.jsonl");
    let opts = DaemonOptions {
        state_log: Some(state.clone()),
        checkpoint_every: Some(1000),
        ..options(&dir)
    };
    let socket = opts.socket.clone();
    let handle = serve::serve(&opts).expect("daemon starts");

    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: false,
            budget: Some(30_000),
            window: Some(200),
            // Far below the run's wall time (30k cycles plus fsync'd
            // checkpoints), so slices reliably expire; progress is
            // still guaranteed — each slice advances at least one
            // deadline-poll block before it can suspend.
            deadline_ms: Some(5),
            ..SubmitSpec::default()
        },
    );
    let job = wait_for(&socket, id, "done");
    assert_eq!(job.get("exit").and_then(Value::as_u64), Some(0));
    let reports = match job.get("reports") {
        Some(Value::Arr(rows)) => rows.clone(),
        other => panic!("done status must carry reports, got {other:?}"),
    };
    assert_eq!(reports.len(), 1);
    let daemon_report = reports[0].get("report").expect("report row").to_string();

    // The journal must show the deadline actually fired: at least one
    // requeue beyond the initial queueing, and a checkpoint record.
    let journal = std::fs::read_to_string(&state).expect("journal readable");
    assert!(
        journal.contains("\"event\":\"requeued\""),
        "no requeue journaled — the deadline never fired:\n{journal}"
    );
    assert!(
        journal.contains("\"event\":\"checkpoint\""),
        "no checkpoint journaled:\n{journal}"
    );

    // Byte-identity with an unpreempted daemon-free run of the same
    // resolved config (standard harness, budget, window, checkpointing
    // enabled but never suspended).
    let mut harness = Harness::standard();
    harness.cfg.cycle_budget = Some(snake_sim::Cycle(30_000));
    harness.cfg.metrics_window = Some(200);
    let direct = harness
        .run_job(Benchmark::Lps, PrefetcherKind::Snake)
        .expect("direct run succeeds");
    assert_eq!(
        daemon_report,
        direct.report.to_json().to_string(),
        "deadline preemption changed the simulation's bytes"
    );

    shutdown(&socket, handle);
}

/// `tail --from-seq`/`--ring` resume a cut-off subscription: a second
/// tail starting mid-stream sees exactly the suffix, with the same
/// verified sequence arithmetic.
#[test]
fn tail_from_seq_resumes_mid_stream_with_exact_accounting() {
    let (socket, handle) = daemon("fromseq");
    // Standard harness with a budget: the job runs long enough to cut
    // a tail mid-stream and reconnect while windows are still flowing.
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: false,
            budget: Some(30_000),
            window: Some(200),
            ..SubmitSpec::default()
        },
    );
    // First connection: a raw tail, cut off after a few records — the
    // "ssh dropped" scenario. Remember the last sequence we saw.
    let mut cut_at = None;
    {
        let stream = UnixStream::connect(&socket).expect("connect");
        {
            let mut w = &stream;
            writeln!(
                w,
                "{}",
                Request::Tail {
                    id,
                    ring: 0,
                    from: None
                }
                .to_json()
            )
            .expect("send tail request");
        }
        let mut reader = BufReader::new(&stream);
        let mut line = String::new();
        let mut records = 0;
        while records < 3 {
            line.clear();
            assert!(reader.read_line(&mut line).expect("stream line") > 0);
            let v = snake_core::json::parse(line.trim()).expect("stream json");
            if let Some(seq) = v.get("seq").and_then(Value::as_u64) {
                records += 1;
                cut_at = Some(seq);
            }
        }
        // Dropped here, mid-stream.
    }
    let from = cut_at.expect("saw records before the cut") + 1;

    // Reconnect where the first connection died. `tail_from` verifies
    // the stream's sequence arithmetic internally (gaps vs. the done
    // line), so a successful return *is* the exactness proof; on top
    // of that the resumed tail must actually deliver the live suffix.
    let resumed = client::tail_from(&socket, id, 0, Some(from), |_| {}).expect("resumed tail");
    assert_eq!(resumed.state, "done");
    assert_eq!(
        resumed.exit, 0,
        "job must complete while we tailed: {resumed:?}"
    );
    assert!(
        resumed.delivered >= 1,
        "a mid-run reconnect must catch live records: {resumed:?}"
    );

    // After completion every subscription is gone and the ring's
    // buffer is released; a from-origin reconnect now delivers nothing
    // but must still account for the *entire* stream as drops. That
    // total pins the resumed tail's coverage: prefix + suffix = all.
    let post = client::tail_from(&socket, id, 0, Some(0), |_| {}).expect("post-done tail");
    assert_eq!(post.state, "done");
    assert_eq!(
        post.delivered + post.dropped,
        from + resumed.delivered + resumed.dropped,
        "cut prefix plus resumed suffix must cover the whole stream"
    );
    // Resuming past the end of the first ring via --ring: skip it
    // entirely (this sweep has exactly one ring, so nothing arrives).
    let skipped = client::tail_from(&socket, id, 1, None, |_| {}).expect("ring-skip tail");
    assert_eq!(skipped.delivered, 0);

    shutdown(&socket, handle);
}

/// A tail subscriber that vanishes mid-stream never stalls the job —
/// the daemon drops the subscription, counts it in `health`, and the
/// simulation finishes normally.
#[test]
fn vanishing_tail_subscriber_is_counted_and_never_stalls_the_job() {
    let (socket, handle) = daemon("vanish");
    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: false,
            budget: Some(30_000),
            window: Some(200),
            events: true,
            ..SubmitSpec::default()
        },
    );
    // A raw tail connection, abandoned after the handshake: the daemon
    // keeps writing into a dead socket until the kernel reports it.
    {
        let stream = UnixStream::connect(&socket).expect("connect");
        {
            let mut w = &stream;
            writeln!(
                w,
                "{}",
                Request::Tail {
                    id,
                    ring: 0,
                    from: None
                }
                .to_json()
            )
            .expect("send tail request");
        }
        let mut reader = BufReader::new(&stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("ok line");
        // Dropped here: the subscriber vanishes mid-run.
    }

    let job = wait_for(&socket, id, "done");
    assert_eq!(job.get("exit").and_then(Value::as_u64), Some(0));
    // The disconnect surfaces in health (the write error may land a
    // moment after the socket closes).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let health = client::request(&socket, &Request::Health).expect("health answered");
        if health
            .get("tails_disconnected")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never counted the vanished subscriber: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    shutdown(&socket, handle);
}

/// Cancellation wins every race with checkpointing: cancelling a job
/// that checkpoints aggressively still exits with the cancelled code,
/// and no checkpoint artifact survives — on disk or in the journal's
/// live set (a restart must not resurrect a cancelled job).
#[test]
fn cancel_during_checkpointing_leaves_no_stray_artifact() {
    let dir = scratch("cancelrace");
    let state = dir.join("state.jsonl");
    let opts = DaemonOptions {
        state_log: Some(state.clone()),
        checkpoint_every: Some(200), // aggressive: many writes in flight
        ..options(&dir)
    };
    let socket = opts.socket.clone();
    let handle = serve::serve(&opts).expect("daemon starts");

    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline".into()),
            quick: false,
            budget: Some(60_000),
            ..SubmitSpec::default()
        },
    );
    wait_for(&socket, id, "running");
    // Let it write at least one checkpoint before the cancel lands.
    std::thread::sleep(Duration::from_millis(100));
    client::request(&socket, &Request::Cancel { id }).expect("cancel accepted");
    let end = client::tail(&socket, id, |_| {}).expect("tail verifies");
    assert_eq!(end.state, "cancelled");
    assert_eq!(end.exit, EXIT_CANCELLED);

    // No checkpoint artifact may survive the cancel.
    let stray: Vec<String> = std::fs::read_dir(&dir)
        .expect("scratch dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ckpt"))
        .collect();
    assert!(
        stray.is_empty(),
        "cancelled job left checkpoints: {stray:?}"
    );
    // And a restart must not resurrect the cancelled job: replaying
    // the journal through the daemon's own recovery fold must find
    // checkpoints were written, but none left live.
    let journal_text = std::fs::read_to_string(&state).expect("journal readable");
    assert!(
        journal_text.contains("\"event\":\"checkpoint\""),
        "budget 60k at cadence 200 never checkpointed:\n{journal_text}"
    );
    let recovered = journal::recover(&journal::load(&state).expect("journal loads"));
    for job in &recovered.jobs {
        assert!(
            job.live_checkpoints.is_empty(),
            "job {} kept live checkpoints after cancel: {:?}",
            job.id,
            job.live_checkpoints
        );
        assert!(job.terminal.is_some(), "job {} left non-terminal", job.id);
    }

    shutdown(&socket, handle);
}

/// When the journal's disk fails mid-flight the daemon degrades
/// gracefully: jobs keep running and completing, and the failure is
/// *counted* and surfaced in `status`/`health` — never silent, never
/// fatal. `/dev/full` accepts opens and fails every write with ENOSPC.
#[test]
fn journal_disk_failure_degrades_loudly_but_jobs_still_complete() {
    let dev_full = Path::new("/dev/full");
    if std::fs::metadata(dev_full).is_err() {
        eprintln!("skipping: /dev/full not available on this platform");
        return;
    }
    let dir = scratch("degraded");
    let opts = DaemonOptions {
        state_log: Some(dev_full.to_path_buf()),
        checkpoint_every: Some(1000),
        ..options(&dir)
    };
    let socket = opts.socket.clone();
    let handle = serve::serve(&opts).expect("daemon starts even on a failing journal disk");

    let id = submit(
        &socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("snake".into()),
            quick: true,
            ..SubmitSpec::default()
        },
    );
    let job = wait_for(&socket, id, "done");
    assert_eq!(
        job.get("exit").and_then(Value::as_u64),
        Some(0),
        "journal failure must not fail the job"
    );

    let health = client::request(&socket, &Request::Health).expect("health answered");
    assert_eq!(
        health.get("journal").and_then(Value::as_str),
        Some("degraded")
    );
    assert_eq!(
        health.get("journal_degraded").and_then(Value::as_bool),
        Some(true)
    );
    assert!(
        health
            .get("journal_errors")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "errors must be counted: {health}"
    );
    // The same counters ride on every status response.
    let status = client::request(&socket, &Request::Status { id: None }).expect("status");
    assert_eq!(
        status.get("journal_degraded").and_then(Value::as_bool),
        Some(true)
    );

    shutdown(&socket, handle);
}

//! Integration tests for the bench binaries' observability flags:
//! `repro --metrics-csv` and `pfdebug --trace-out` / `--timeline`.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("snake-bench-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn repro_metrics_csv_writes_the_time_series() {
    let out = tmp("metrics.csv");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--metrics-csv"])
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro exited with {status}");
    let csv = std::fs::read_to_string(&out).expect("csv written");
    std::fs::remove_file(&out).ok();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some(
            "cycle,ipc,l1_hit_rate,mshr_occupancy,miss_queue_occupancy,\
             noc_utilization,active_warps,throttled_sms,chain_depth,\
             stall_issued,stall_no_warp,stall_barrier,stall_scoreboard,\
             stall_mem_data,stall_mem_mshr,stall_mem_missq,stall_mem_noc"
        )
    );
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "no metric windows in: {csv}");
    for row in rows {
        assert_eq!(row.split(',').count(), 17, "malformed row: {row}");
        // The eight stall fractions partition the window's issue slots.
        let stalls: f64 = row
            .split(',')
            .skip(9)
            .map(|c| c.parse::<f64>().unwrap())
            .sum();
        assert!(
            (stalls - 1.0).abs() < 1e-4,
            "stall fractions sum to {stalls} in: {row}"
        );
    }
}

#[test]
fn pfdebug_trace_out_writes_chrome_json() {
    let out = tmp("trace.json");
    let output = Command::new(env!("CARGO_BIN_EXE_pfdebug"))
        .args(["--trace-out"])
        .arg(&out)
        .args(["--timeline", "--window", "500", "lps", "snake"])
        .output()
        .expect("spawn pfdebug");
    assert!(
        output.status.success(),
        "pfdebug exited with {}",
        output.status
    );
    let json = std::fs::read_to_string(&out).expect("trace written");
    std::fs::remove_file(&out).ok();
    assert!(json.starts_with("{\"traceEvents\":["), "not a chrome trace");
    assert!(json.contains("\"name\":\"Terminal\""), "no terminal event");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("timeline:"),
        "no ASCII timeline in: {stdout}"
    );
    assert!(
        stdout.contains("lifecycle"),
        "no lifecycle line in: {stdout}"
    );
}

#[test]
fn pfdebug_rejects_a_zero_window() {
    let output = Command::new(env!("CARGO_BIN_EXE_pfdebug"))
        .args(["--window", "0"])
        .output()
        .expect("spawn pfdebug");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("window"), "unhelpful error: {stderr}");
}

//! Property-based model of the sandbox child protocol: a killed or
//! wedged worker leaves an arbitrary *prefix* of its NDJSON stream —
//! for any terminal line and any truncation point, `parse_child_line`
//! must reject the torn line (the executor maps that to
//! `CrashKind::ProtocolError`) and must never reconstruct a report
//! that differs from what the child actually produced.

use proptest::prelude::*;
use snake_bench::supervise::executor::{parse_child_line, ChildLine};
use snake_core::MechanismReport;

/// A short lowercase message (the stub proptest has no regex
/// strategies, so build the string from sampled characters).
fn message() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select("abcdefghijklmnopqrstuvwxyz :".chars().collect::<Vec<_>>()),
        1..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// A report with arbitrary (finite) metric values — the payload whose
/// bit-exactness the wire must preserve.
fn report() -> impl Strategy<Value = MechanismReport> {
    let name = || prop::sample::select(vec!["snake".to_string(), "baseline".to_string()]);
    let frac = || 0.0f64..1.0;
    (
        (name(), name(), frac(), frac(), frac(), frac()),
        (frac(), frac(), frac(), 0.0f64..100.0, 0u64..1_000_000),
        (0u64..10_000, 0u64..10_000),
    )
        .prop_map(
            |(
                (mechanism, app, ipc, coverage, accuracy, precision),
                (l1, resfail, noc, energy, cycles),
                (p50, p90),
            )| {
                MechanismReport {
                    mechanism,
                    app,
                    ipc,
                    coverage,
                    accuracy,
                    precision,
                    l1_hit_rate: l1,
                    reservation_fail_rate: resfail,
                    noc_utilization: noc,
                    energy_j: energy,
                    cycles,
                    timeliness_p50: p50,
                    timeliness_p90: p90,
                    ..MechanismReport::default()
                }
            },
        )
}

/// The terminal lines a real worker emits, built with the same shapes
/// the wire uses.
fn terminal_line() -> impl Strategy<Value = String> {
    prop_oneof![
        report().prop_map(|r| format!(
            "{{\"t\":\"finished\",\"stop\":\"completed\",\"report\":{}}}",
            r.to_json()
        )),
        (report(), 1u64..1_000_000).prop_map(|(r, b)| format!(
            "{{\"t\":\"finished\",\"stop\":\"budget_exceeded\",\"budget\":{b},\"report\":{}}}",
            r.to_json()
        )),
        (1u64..1_000_000).prop_map(|cycle| format!(
            "{{\"t\":\"suspended\",\"cycle\":{cycle},\"checkpoint\":\"job.ckpt\"}}"
        )),
        Just("{\"t\":\"cancelled\"}".to_string()),
        message().prop_map(|m| format!("{{\"t\":\"failed\",\"message\":\"{m}\"}}")),
        message().prop_map(|m| format!("{{\"t\":\"error\",\"message\":\"{m}\"}}")),
    ]
}

proptest! {
    /// The full line round-trips; every proper prefix is rejected.
    /// A truncated stream can therefore never be mistaken for a
    /// successful (or differently-successful) run.
    #[test]
    fn truncated_terminal_lines_never_misparse(line in terminal_line(), cut in 0usize..4096) {
        // The untorn line is valid — the model matches the wire.
        let full = parse_child_line(&line).expect("untorn line parses");
        // If it carried a report, the parse is bit-exact.
        if let ChildLine::Finished { output } = &full {
            prop_assert!(line.contains(&output.report.to_json().to_string()));
        }
        // Every proper prefix (any kill point mid-write) is an error.
        let cut = cut % line.len();
        if cut > 0 {
            prop_assert!(
                parse_child_line(&line[..cut]).is_err(),
                "prefix of length {cut} parsed: {:?}",
                &line[..cut]
            );
        }
    }

    /// A torn line glued to the next line (the newline lost in the
    /// kill) is rejected too — two half-messages never merge into one
    /// plausible message.
    #[test]
    fn torn_line_plus_next_line_is_rejected(
        a in terminal_line(),
        b in terminal_line(),
        cut in 1usize..4096,
    ) {
        let cut = 1 + cut % (a.len() - 1);
        let glued = format!("{}{}", &a[..cut], b);
        prop_assert!(
            parse_child_line(&glued).is_err(),
            "glued torn lines parsed: {glued:?}"
        );
    }

    /// Foreign stdout noise (a stray print from the simulator, shell
    /// wrapper chatter) is rejected unless it happens to be the
    /// protocol itself.
    #[test]
    fn arbitrary_noise_is_rejected(
        bytes in prop::collection::vec(0x20u8..0x7b, 0..120),
    ) {
        let noise: String = bytes.into_iter().map(char::from).collect();
        // Anything that parses must at minimum be a JSON object with a
        // known "t" tag — plain words, table rows, and ulimit chatter
        // never are.
        if !noise.trim_start().starts_with('{') {
            prop_assert!(parse_child_line(&noise).is_err());
        }
    }
}

/// The windows and checkpoints before the tear still parse — a torn
/// stream invalidates only the torn line, not the telemetry already
/// delivered.
#[test]
fn lines_before_the_tear_stay_valid() {
    let stream = "{\"t\":\"checkpoint\",\"cycle\":2000,\"bytes\":512}\n\
                  {\"t\":\"checkpoint\",\"cycle\":4000,\"bytes\":514}\n\
                  {\"t\":\"finished\",\"stop\":\"comp";
    let mut lines = stream.lines();
    assert_eq!(
        parse_child_line(lines.next().unwrap()),
        Ok(ChildLine::Checkpoint {
            cycle: 2000,
            bytes: 512
        })
    );
    assert_eq!(
        parse_child_line(lines.next().unwrap()),
        Ok(ChildLine::Checkpoint {
            cycle: 4000,
            bytes: 514
        })
    );
    assert!(parse_child_line(lines.next().unwrap()).is_err());
}

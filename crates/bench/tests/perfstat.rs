//! Integration tests of the host performance observatory's CLI
//! surface: `repro --perf` emits a schema-versioned BENCH_*.json with
//! every tick phase, the self-compare gate passes, an injected stall
//! trips it with the dedicated exit code, and `--profile` renders the
//! per-phase table.

use std::path::PathBuf;
use std::process::Command;
use std::str::FromStr;

use snake_bench::perfstat::{PerfReport, EXIT_PERF_REGRESSION, SCHEMA_VERSION};
use snake_sim::Phase;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("snake-bench-perf-{}-{name}", std::process::id()));
    p
}

/// A small, fast perf invocation: quick harness, one job, three runs.
fn perf_cmd(out: &PathBuf, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args([
        "--perf",
        "--quick",
        "--benchmarks",
        "lps",
        "--mechanisms",
        "snake",
        "--runs",
        "3",
        "--perf-out",
    ])
    .arg(out)
    .args(extra);
    cmd
}

/// Gate threshold for these tests. Sibling test processes contend for
/// cores, so run-to-run noise here is far above a quiet machine's; the
/// injected stall inflates its phase by >10x, so even a generous bar
/// discriminates perfectly.
const TEST_THRESHOLD: &str = "0.75";

#[test]
fn perf_emits_schema_versioned_report_with_every_phase() {
    let out = tmp("emit.json");
    let status = perf_cmd(&out, &["--label", "emit"])
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro --perf exited with {status}");
    let text = std::fs::read_to_string(&out).expect("report written");
    std::fs::remove_file(&out).ok();

    let report = PerfReport::from_str(&text).expect("parseable report");
    assert_eq!(report.label, "emit");
    assert_eq!(report.runs, 3);
    assert!(text.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    let job = report.job("LPS/snake").expect("job present");
    assert_eq!(job.samples.len(), 3, "one sample per run");
    for sample in &job.samples {
        assert!(sample.wall_nanos > 0);
        assert!(sample.cycles > 0);
        // Every tick phase appears, and the ones a streaming kernel
        // exercises have nonzero call counts.
        for phase in [
            Phase::SmIssue,
            Phase::L1Lookup,
            Phase::Mshr,
            Phase::Prefetch,
            Phase::Noc,
            Phase::MemPartition,
        ] {
            assert!(sample.get(phase).calls > 0, "phase {phase} has no calls");
        }
        assert!(text.contains(Phase::Observability.label()));
    }

    // Bit-exact round trip through snake_core::json.
    let reparsed = PerfReport::from_str(&report.to_json().to_string()).unwrap();
    assert_eq!(reparsed, report);
    assert_eq!(reparsed.to_json().to_string(), report.to_json().to_string());
}

#[test]
fn perf_gate_passes_self_comparison_and_fails_injected_stall() {
    let base = tmp("gate-base.json");
    let cur = tmp("gate-cur.json");
    let slow = tmp("gate-slow.json");

    let status = perf_cmd(&base, &["--label", "base"])
        .status()
        .expect("spawn repro");
    assert!(status.success(), "baseline run exited with {status}");

    // Same binary, same config: the gate must pass.
    let base_arg = base.to_str().unwrap().to_string();
    let output = perf_cmd(
        &cur,
        &[
            "--label",
            "cur",
            "--compare",
            &base_arg,
            "--rel-threshold",
            TEST_THRESHOLD,
        ],
    )
    .output()
    .expect("spawn repro");
    assert!(
        output.status.success(),
        "self-compare must pass; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Perf comparison"), "no table in: {stdout}");

    // An injected 20 us stall per partition tick dwarfs the quick
    // harness's real per-tick work: the gate must flag it and exit
    // with the dedicated code.
    let output = perf_cmd(
        &slow,
        &[
            "--label",
            "slow",
            "--compare",
            &base_arg,
            "--rel-threshold",
            TEST_THRESHOLD,
            "--perf-inject-ns",
            "20000",
        ],
    )
    .output()
    .expect("spawn repro");
    assert_eq!(
        output.status.code(),
        Some(EXIT_PERF_REGRESSION),
        "injected stall must trip the gate; stdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("REGRESSED"),
        "no regression verdict in: {stdout}"
    );
    assert!(
        stdout.contains("mem_partition"),
        "regression not attributed to the injected phase: {stdout}"
    );

    for p in [&base, &cur, &slow] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn profile_flag_prints_per_phase_tables() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--profile",
            "--quick",
            "--benchmarks",
            "lps",
            "--mechanisms",
            "baseline,snake",
        ])
        .output()
        .expect("spawn repro");
    assert!(output.status.success(), "repro --profile failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Host profile — LPS/baseline"), "{stdout}");
    assert!(stdout.contains("Host profile — LPS/snake"), "{stdout}");
    assert!(stdout.contains("sm_issue"), "{stdout}");
    assert!(stdout.contains("(unaccounted)"), "{stdout}");
}

#[test]
fn pfdebug_profile_prints_the_table() {
    let output = Command::new(env!("CARGO_BIN_EXE_pfdebug"))
        .args(["--profile", "--budget", "20000", "lps", "snake"])
        .output()
        .expect("spawn pfdebug");
    assert!(output.status.success(), "pfdebug --profile failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Host profile — LPS/snake"), "{stdout}");
    assert!(stdout.contains("mem_partition"), "{stdout}");
}

#[test]
fn perf_rejects_mixing_modes() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--perf", "--sweep"])
        .output()
        .expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "usage error expected");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--perf", "fig16"])
        .output()
        .expect("spawn repro");
    assert_eq!(output.status.code(), Some(2), "usage error expected");
}

//! End-to-end tests for the sweep supervisor: interrupt/resume
//! byte-identity, panic/deadlock quarantine with unharmed siblings,
//! retry schedules, and manifest hygiene.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use snake_bench::runner::JobRun;
use snake_bench::supervise::{
    self, campaign, CrashKind, ExecError, JobOutcome, JobSpec, SweepConfig, SweepError,
    EXIT_INTERRUPTED, EXIT_QUARANTINE,
};
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::{Cycle, SimError};
use snake_workloads::Benchmark;

fn tmp_manifest(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "snake-supervise-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A fast, quiet supervision policy for tests.
fn test_cfg() -> SweepConfig {
    SweepConfig {
        max_attempts: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 2,
        workers: 2,
        ..SweepConfig::default()
    }
}

/// Satellite (c) / acceptance: a sweep interrupted mid-way and resumed
/// from its manifest renders byte-identically to an uninterrupted run.
#[test]
fn interrupted_then_resumed_sweep_is_byte_identical() {
    let h = Harness::quick();
    let jobs = campaign(
        &[Benchmark::Lps, Benchmark::Cp],
        &[PrefetcherKind::Baseline, PrefetcherKind::Snake],
    );
    let cfg = test_cfg();

    let full_path = tmp_manifest("full");
    let full = supervise::run_campaign(&h, &jobs, &cfg, Some(&full_path), false).unwrap();
    assert_eq!(full.exit_code(), 0, "clean sweep exits 0");
    assert_eq!(full.counts(), (4, 0, 0, 0));
    let reference = full.render(false);

    // "Kill" the sweep after two jobs: --stop-after is the
    // deterministic stand-in for an interrupt.
    let part_path = tmp_manifest("part");
    let interrupted_cfg = SweepConfig {
        stop_after: Some(2),
        ..test_cfg()
    };
    let part =
        supervise::run_campaign(&h, &jobs, &interrupted_cfg, Some(&part_path), false).unwrap();
    assert_eq!(part.exit_code(), EXIT_INTERRUPTED);
    assert!(part.interrupted);
    assert_eq!(part.counts(), (2, 0, 2, 0), "two done, two skipped");

    // Resume from the manifest: the finished jobs replay from their
    // records, the skipped ones run now.
    let resumed = supervise::run_campaign(&h, &jobs, &cfg, Some(&part_path), true).unwrap();
    assert_eq!(resumed.exit_code(), 0);
    assert_eq!(resumed.counts(), (4, 0, 0, 0));
    assert_eq!(
        resumed.render(false),
        reference,
        "resumed report must be byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.render(true), full.render(true), "markdown too");

    std::fs::remove_file(&full_path).unwrap();
    std::fs::remove_file(&part_path).unwrap();
}

/// Resume replays checkpointed jobs from the manifest; their
/// simulations must not run again.
#[test]
fn resume_skips_checkpointed_jobs() {
    let h = Harness::quick();
    let jobs = campaign(
        &[Benchmark::Lib],
        &[PrefetcherKind::Baseline, PrefetcherKind::Snake],
    );
    let path = tmp_manifest("skip");

    let ran: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let runner = |job: &JobSpec, _attempt: u32, _resume: Option<&std::path::Path>| {
        ran.lock().unwrap().push(job.id());
        h.run_job(job.bench, job.kind)
            .map(Box::new)
            .map(JobRun::Finished)
            .map_err(ExecError::from)
    };

    let cfg = SweepConfig {
        stop_after: Some(1),
        workers: 1,
        ..test_cfg()
    };
    let part = supervise::run_campaign_with(&h, &jobs, &cfg, Some(&path), false, runner).unwrap();
    assert_eq!(part.counts(), (1, 0, 1, 0));
    assert_eq!(ran.lock().unwrap().as_slice(), ["LIB/baseline"]);

    let resumed =
        supervise::run_campaign_with(&h, &jobs, &test_cfg(), Some(&path), true, runner).unwrap();
    assert_eq!(resumed.counts(), (2, 0, 0, 0));
    assert_eq!(
        ran.lock().unwrap().as_slice(),
        ["LIB/baseline", "LIB/snake"],
        "the checkpointed job must not re-run on resume"
    );

    std::fs::remove_file(&path).unwrap();
}

/// Satellite (d) / acceptance: one panicking, one deadlocking, and one
/// over-budget job in a sweep — every healthy row still renders, the
/// poisoned jobs are retried then quarantined, and the process exit
/// code is the distinct quarantine code.
#[test]
fn poisoned_jobs_are_quarantined_and_siblings_are_unharmed() {
    let healthy = Harness::quick();

    // All responses dropped and no recovery: the memory system starves
    // and the watchdog declares deadlock.
    let mut deadlocked = Harness::quick();
    deadlocked.cfg.fault.drop_response = 1.0;

    // A tiny planned budget: truncated, but still a valid report row.
    let mut budgeted = Harness::quick();
    budgeted.cfg.cycle_budget = Some(Cycle(64));

    let jobs = campaign(
        &[
            Benchmark::Cp,  // will panic
            Benchmark::Lps, // will deadlock
            Benchmark::Lib, // over budget
            Benchmark::Mum, // healthy
            Benchmark::Nw,  // healthy
        ],
        &[PrefetcherKind::Baseline],
    );
    let cfg = test_cfg();

    let result = supervise::run_campaign_with(&healthy, &jobs, &cfg, None, false, |job, _, _| {
        match job.bench {
            Benchmark::Cp => panic!("injected poison in {job}"),
            Benchmark::Lps => deadlocked.run_job(job.bench, job.kind),
            Benchmark::Lib => budgeted.run_job(job.bench, job.kind),
            _ => healthy.run_job(job.bench, job.kind),
        }
        .map(Box::new)
        .map(JobRun::Finished)
        .map_err(ExecError::from)
    })
    .unwrap();

    assert_eq!(result.exit_code(), EXIT_QUARANTINE);
    assert_eq!(result.counts(), (3, 2, 0, 0));

    let outcome = |bench: Benchmark| {
        result
            .outcomes
            .iter()
            .find(|(job, _)| job.bench == bench)
            .map(|(_, o)| o.clone())
            .unwrap()
    };
    match outcome(Benchmark::Cp) {
        JobOutcome::Crashed {
            message,
            attempts,
            crash,
            ..
        } => {
            assert!(message.starts_with("panic: injected poison"), "{message}");
            assert_eq!(attempts, cfg.max_attempts, "panics are retried first");
            assert_eq!(crash, Some(CrashKind::Panic), "panics carry their kind");
        }
        other => panic!("CP should be quarantined, got {other:?}"),
    }
    match outcome(Benchmark::Lps) {
        JobOutcome::Crashed {
            message,
            attempts,
            crash,
            ..
        } => {
            assert!(message.starts_with("deadlock:"), "{message}");
            assert_eq!(attempts, cfg.max_attempts, "deadlocks are retried first");
            assert_eq!(crash, None, "deadlocks are sim outcomes, not crashes");
        }
        other => panic!("LPS should be quarantined, got {other:?}"),
    }
    match outcome(Benchmark::Lib) {
        JobOutcome::Completed { stop, report, .. } => {
            assert_eq!(stop, "budget_exceeded");
            assert!(report.cycles <= 64, "truncated at the budget");
        }
        other => panic!("LIB should complete under budget truncation, got {other:?}"),
    }
    for bench in [Benchmark::Mum, Benchmark::Nw] {
        assert!(
            matches!(outcome(bench), JobOutcome::Completed { ref stop, .. } if stop == "completed"),
            "healthy sibling {bench} must be unaffected"
        );
    }

    // Healthy rows render; the quarantine section names the poisoned
    // jobs without leaking multi-line panic payloads.
    let rendered = result.render(false);
    for row in ["MUM", "nw", "LIB"] {
        assert!(
            rendered.contains(row),
            "missing healthy row {row}:\n{rendered}"
        );
    }
    let quarantine = result.quarantine_table().expect("quarantine section");
    let quarantined: Vec<&str> = quarantine.rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(quarantined, ["CP/baseline", "LPS/baseline"]);
}

/// A flaky job that fails its first attempts and then succeeds is
/// retried with the attempt count recorded — not quarantined.
#[test]
fn flaky_job_succeeds_after_retries() {
    let h = Harness::quick();
    let jobs = campaign(&[Benchmark::Hotspot], &[PrefetcherKind::Snake]);
    let cfg = SweepConfig {
        max_attempts: 3,
        ..test_cfg()
    };

    let calls = AtomicU32::new(0);
    let result = supervise::run_campaign_with(&h, &jobs, &cfg, None, false, |job, attempt, _| {
        calls.fetch_add(1, Ordering::SeqCst);
        assert_eq!(attempt, calls.load(Ordering::SeqCst), "attempts count up");
        if attempt < 3 {
            panic!("transient failure on attempt {attempt}");
        }
        h.run_job(job.bench, job.kind)
            .map(Box::new)
            .map(JobRun::Finished)
            .map_err(ExecError::from)
    })
    .unwrap();

    assert_eq!(result.exit_code(), 0);
    match &result.outcomes[0].1 {
        JobOutcome::Completed { attempts, stop, .. } => {
            assert_eq!(*attempts, 3);
            assert_eq!(stop, "completed");
        }
        other => panic!("expected completion on attempt 3, got {other:?}"),
    }
    assert_eq!(calls.load(Ordering::SeqCst), 3);
}

/// A typed configuration error is deterministic: no retries, straight
/// to quarantine.
#[test]
fn deterministic_sim_error_quarantines_without_retry() {
    let h = Harness::quick();
    let mut broken = Harness::quick();
    broken.cfg.mshr_entries = 0;
    let jobs = campaign(&[Benchmark::Srad], &[PrefetcherKind::Baseline]);

    let calls = AtomicU32::new(0);
    let result = supervise::run_campaign_with(&h, &jobs, &test_cfg(), None, false, |job, _, _| {
        calls.fetch_add(1, Ordering::SeqCst);
        broken
            .run_job(job.bench, job.kind)
            .map(Box::new)
            .map(JobRun::Finished)
            .map_err(ExecError::from)
    })
    .unwrap();

    assert_eq!(result.exit_code(), EXIT_QUARANTINE);
    match &result.outcomes[0].1 {
        JobOutcome::Crashed {
            message,
            attempts,
            crash,
            ..
        } => {
            assert!(message.contains("invalid configuration"), "{message}");
            assert_eq!(*attempts, 1, "deterministic errors are not retried");
            assert_eq!(*crash, None, "typed sim errors carry no crash kind");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

/// Tentpole acceptance: a job that reaches the deadline is *suspended*
/// — checkpointed mid-simulation and recorded in the manifest — not
/// killed; resume restores it from the checkpoint and the final report
/// is byte-identical to an uninterrupted sweep, with no quarantine.
#[test]
fn deadline_suspended_job_resumes_mid_simulation() {
    let h = Harness::quick();
    let jobs = campaign(
        &[Benchmark::Lps],
        &[PrefetcherKind::Snake, PrefetcherKind::Mta],
    );
    let cfg = test_cfg();

    let full_path = tmp_manifest("suspend-full");
    let full = supervise::run_campaign(&h, &jobs, &cfg, Some(&full_path), false).unwrap();
    assert_eq!(full.counts(), (2, 0, 0, 0));
    let reference = full.render(false);

    // Preempt every job that reaches cycle 300: `suspend_after` is the
    // deterministic stand-in for wall-deadline preemption.
    let part_path = tmp_manifest("suspend-part");
    let suspend_cfg = SweepConfig {
        suspend_after: Some(300),
        ..test_cfg()
    };
    let part = supervise::run_campaign(&h, &jobs, &suspend_cfg, Some(&part_path), false).unwrap();
    assert_eq!(part.exit_code(), EXIT_INTERRUPTED);
    let (_, quarantined, _, suspended) = part.counts();
    assert_eq!(quarantined, 0, "suspension is not a failure");
    assert!(suspended > 0, "jobs reaching the deadline are suspended");
    let mut checkpoints = Vec::new();
    for (_, o) in &part.outcomes {
        if let JobOutcome::Suspended {
            cycle, checkpoint, ..
        } = o
        {
            assert!(*cycle >= 300, "suspended at or after the trigger cycle");
            assert!(
                std::path::Path::new(checkpoint).exists(),
                "checkpoint artifact written: {checkpoint}"
            );
            checkpoints.push(checkpoint.clone());
        }
    }

    // Resume without the trigger: the suspended jobs restore from
    // their checkpoints and finish the remaining cycles.
    let resumed = supervise::run_campaign(&h, &jobs, &cfg, Some(&part_path), true).unwrap();
    assert_eq!(resumed.exit_code(), 0, "resume finishes cleanly");
    assert_eq!(resumed.counts(), (2, 0, 0, 0), "nothing quarantined");
    assert_eq!(
        resumed.render(false),
        reference,
        "restored jobs must finish byte-identically to uninterrupted runs"
    );

    std::fs::remove_file(&full_path).unwrap();
    std::fs::remove_file(&part_path).unwrap();
    for c in checkpoints {
        let _ = std::fs::remove_file(c);
    }
}

/// The manifest life cycle refuses the two dangerous cases: clobbering
/// an existing manifest without `--resume`, and resuming a manifest
/// recorded by a different harness or campaign.
#[test]
fn manifest_guards_reject_clobber_and_mismatch() {
    let h = Harness::quick();
    let jobs = campaign(&[Benchmark::Histo], &[PrefetcherKind::Baseline]);
    let path = tmp_manifest("guards");

    supervise::run_campaign(&h, &jobs, &test_cfg(), Some(&path), false).unwrap();

    // Fresh run onto an existing manifest: refused.
    let err = supervise::run_campaign(&h, &jobs, &test_cfg(), Some(&path), false).unwrap_err();
    assert!(matches!(err, SweepError::ManifestExists(_)), "{err}");

    // Resume with a different harness: fingerprint mismatch.
    let mut other = Harness::quick();
    other.cfg.cycle_budget = Some(Cycle(1000));
    let err = supervise::run_campaign(&other, &jobs, &test_cfg(), Some(&path), true).unwrap_err();
    assert!(
        matches!(err, SweepError::FingerprintMismatch { .. }),
        "{err}"
    );

    // Resume with a different campaign: also a mismatch.
    let more = campaign(
        &[Benchmark::Histo, Benchmark::Mrq],
        &[PrefetcherKind::Baseline],
    );
    let err = supervise::run_campaign(&h, &more, &test_cfg(), Some(&path), true).unwrap_err();
    assert!(
        matches!(err, SweepError::FingerprintMismatch { .. }),
        "{err}"
    );

    std::fs::remove_file(&path).unwrap();
}

/// An invalid harness fails the whole campaign up front with a typed
/// error instead of quarantining every job one by one.
#[test]
fn invalid_harness_fails_fast() {
    let mut h = Harness::quick();
    h.cfg.mshr_entries = 0;
    let jobs = campaign(&[Benchmark::Lps], &[PrefetcherKind::Baseline]);
    let err = supervise::run_campaign(&h, &jobs, &test_cfg(), None, false).unwrap_err();
    assert!(matches!(err, SweepError::Sim(SimError::Config(_))), "{err}");
}

/// Satellite: the hung-job watchdog. A job wedged past the sweep
/// deadline plus the grace period shows up as `overdue` in the shared
/// `Progress` while it hangs, and the gauge drops back to zero once
/// the sweep drains — the hang is observable even though an in-thread
/// job cannot be killed.
#[test]
fn watchdog_marks_wedged_jobs_overdue_then_clears() {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let h = Harness::quick();
    let jobs = campaign(&[Benchmark::Lps], &[PrefetcherKind::Baseline]);
    let progress = Arc::new(supervise::Progress::default());
    let cfg = SweepConfig {
        max_attempts: 1,
        workers: 1,
        wall_deadline: Some(Duration::from_millis(20)),
        watchdog_grace: Duration::from_millis(20),
        progress: Some(progress.clone()),
        ..SweepConfig::default()
    };

    // Observer: sample the gauge while the sweep blocks on the wedge.
    let seen_overdue = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observer = {
        let progress = progress.clone();
        let seen = seen_overdue.clone();
        std::thread::spawn(move || {
            let give_up = Instant::now() + Duration::from_secs(10);
            while Instant::now() < give_up {
                if progress.snapshot().overdue > 0 {
                    seen.store(true, Ordering::Relaxed);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // The runner ignores the cooperative deadline entirely — the
    // stand-in for a simulation wedged inside one cycle.
    let result = supervise::run_campaign_with(&h, &jobs, &cfg, None, false, |_, _, _| {
        std::thread::sleep(Duration::from_millis(400));
        Err(ExecError::Typed("wedged job finally died".into()))
    })
    .unwrap();
    observer.join().unwrap();

    assert!(
        seen_overdue.load(Ordering::Relaxed),
        "the watchdog never marked the wedged job overdue"
    );
    assert_eq!(
        progress.snapshot().overdue,
        0,
        "the gauge must clear once the sweep drains"
    );
    assert_eq!(result.exit_code(), EXIT_QUARANTINE);
}

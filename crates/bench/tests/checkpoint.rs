//! Kill-anywhere acceptance: killing a real benchmark at any cycle
//! and restoring from the checkpoint must reproduce the uninterrupted
//! run's `SimOutcome` byte-for-byte, across benchmarks and
//! mechanisms; and with checkpointing off the checkpointed entry
//! point must be exactly `Gpu::run`.

use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::snapshot::Checkpoint;
use snake_sim::{json, Gpu};
use snake_workloads::Benchmark;

fn gpu(h: &Harness, bench: Benchmark, kind: PrefetcherKind) -> Gpu {
    let kernel = bench.build(&h.size);
    let warps = h.cfg.max_warps_per_sm;
    Gpu::new(h.cfg.clone(), kernel, |_| kind.build(warps)).unwrap()
}

/// The acceptance sweep: 20 kill cycles spread over the whole run, on
/// two benchmarks under two mechanisms. Every (kill, restore, finish)
/// must be byte-identical (Debug form) to the uninterrupted outcome.
#[test]
fn kill_anywhere_restore_is_byte_identical() {
    let h = Harness::quick();
    for bench in [Benchmark::Lps, Benchmark::Lib] {
        for kind in [PrefetcherKind::Snake, PrefetcherKind::Mta] {
            let full = gpu(&h, bench, kind).run();
            let reference = format!("{full:?}");
            let cycles = full.stats.cycles;
            assert!(cycles > 40, "{bench}/{}: run too short", kind.name());

            let step = cycles / 21;
            for i in 1..=20u64 {
                let kill = (i * step).max(1);
                let mut victim = gpu(&h, bench, kind);
                let early = victim.run_interruptible(|c| c.0 >= kill);
                assert!(
                    early.is_none(),
                    "{bench}/{}: kill cycle {kill} past the end",
                    kind.name()
                );

                // Round-trip the checkpoint through its text encoding,
                // as a crash + reload would.
                let text = victim.checkpoint().to_json().to_string();
                let ckpt = Checkpoint::from_json(&json::parse(&text).unwrap()).unwrap();

                let mut resumed = gpu(&h, bench, kind);
                resumed.restore(&ckpt).unwrap();
                assert_eq!(
                    format!("{:?}", resumed.run()),
                    reference,
                    "{bench}/{}: restore at cycle {kill} diverged",
                    kind.name()
                );
            }
        }
    }
}

/// With `checkpoint_every` unset, `run_checkpointed` takes the plain
/// `run()` path: identical outcome, and no artifact is ever written.
#[test]
fn checkpointing_off_is_exactly_run() {
    let h = Harness::quick();
    assert!(h.cfg.checkpoint_every.is_none());
    let reference = format!("{:?}", gpu(&h, Benchmark::Cp, PrefetcherKind::Snake).run());
    let path = std::env::temp_dir().join(format!("snake-ckpt-off-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let out = gpu(&h, Benchmark::Cp, PrefetcherKind::Snake)
        .run_checkpointed(&path)
        .unwrap();
    assert_eq!(format!("{out:?}"), reference);
    assert!(
        !path.exists(),
        "no artifact may be written when checkpointing is off"
    );
}

/// With a checkpoint cadence set, the run still produces the same
/// outcome (checkpointing is observation, not perturbation) and the
/// final artifact restores to a device that finishes instantly with
/// identical stats.
#[test]
fn periodic_checkpointing_does_not_perturb_the_run() {
    let mut h = Harness::quick();
    let reference = format!("{:?}", gpu(&h, Benchmark::Lps, PrefetcherKind::Snake).run());

    h.cfg.checkpoint_every = Some(256);
    let dir = std::env::temp_dir().join(format!("snake-ckpt-cadence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("periodic.ckpt");
    let out = gpu(&h, Benchmark::Lps, PrefetcherKind::Snake)
        .run_checkpointed(&path)
        .unwrap();
    assert_eq!(
        format!("{out:?}"),
        reference,
        "periodic checkpointing must not change the simulation"
    );
    assert!(path.exists(), "cadence produced an artifact");

    // The artifact is a valid mid-run state under the *cadence*
    // config; restore it and finish.
    let ckpt = Checkpoint::load(&path).unwrap();
    let mut resumed = gpu(&h, Benchmark::Lps, PrefetcherKind::Snake);
    resumed.restore(&ckpt).unwrap();
    assert_eq!(format!("{:?}", resumed.run()), reference);
    std::fs::remove_dir_all(&dir).unwrap();
}

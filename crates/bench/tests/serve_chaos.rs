//! Crash/recovery tests for the journaled `snaked` daemon.
//!
//! Two layers:
//!
//! * in-process restarts (clean shutdown, then a second daemon over
//!   the same journal) prove the replay rules — terminal jobs keep
//!   their exact report bytes, orphaned submissions re-queue and run
//!   to completion, ids never collide;
//! * a real-process chaos loop `kill -9`s the daemon binary at
//!   randomized points and asserts the survivor invariants the paper
//!   plane needs: the final report bytes are identical to an
//!   uninterrupted run's, and the journal balances (every
//!   `submitted` line has exactly one `"terminal":true` line).
//!
//! `CHAOS_TRIALS` scales the kill loop (default 3 here; the
//! `scripts/chaos_snaked.sh` driver runs 10 against release builds).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use snake_bench::serve::{self, DaemonOptions, Request, SubmitSpec};
use snake_core::json::Value;

use serve::client;
use serve::journal::{Journal, JournalEvent};

/// A fresh per-test scratch directory (sockets, journals, checkpoints).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snake-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Submits a spec and returns the assigned job id.
fn submit(socket: &Path, spec: SubmitSpec) -> u64 {
    client::request(socket, &Request::Submit(spec))
        .expect("submit accepted")
        .get("id")
        .and_then(Value::as_u64)
        .expect("submit response carries the job id")
}

/// One job's current state string, from a live daemon.
fn job_state(socket: &Path, id: u64) -> String {
    client::request(socket, &Request::Status { id: Some(id) })
        .expect("status answered")
        .get("job")
        .and_then(|j| j.get("state"))
        .and_then(Value::as_str)
        .expect("status carries the state")
        .to_string()
}

/// Polls until the job is done (panicking if it lands anywhere else).
fn wait_done(socket: &Path, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let state = job_state(socket, id);
        if state == "done" {
            return;
        }
        assert_ne!(state, "cancelled", "job {id} cancelled instead of done");
        assert!(
            Instant::now() < deadline,
            "job {id} never finished (stuck at {state:?})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A finished job's report rows, as the exact bytes `snakectl reports`
/// prints — the chaos invariant compares these across runs.
fn report_bytes(socket: &Path, id: u64) -> String {
    client::request(socket, &Request::Status { id: Some(id) })
        .expect("status answered")
        .get("job")
        .and_then(|j| j.get("reports"))
        .cloned()
        .unwrap_or(Value::Arr(Vec::new()))
        .to_string()
}

/// In-process restart: a journaled daemon finishes a sweep, shuts down
/// cleanly, and a second daemon over the same journal must report the
/// job as done with bit-identical report bytes — and hand the next
/// submission a fresh id, not a recycled one.
#[test]
fn restart_preserves_terminal_reports_bit_exactly() {
    let dir = scratch("restart");
    let journal = dir.join("state.jsonl");
    let first = DaemonOptions {
        socket: dir.join("a.sock"),
        state_log: Some(journal.clone()),
        checkpoint_every: None,
        quota_queued: None,
        quota_running: None,
        workers: 1,
        isolate: false,
    };
    let handle = serve::serve(&first).expect("first daemon starts");
    let id = submit(
        &first.socket,
        SubmitSpec {
            benchmarks: Some("LPS".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: true,
            ..SubmitSpec::default()
        },
    );
    wait_done(&first.socket, id);
    let before = report_bytes(&first.socket, id);
    assert!(before.len() > 2, "finished job must carry report rows");
    client::request(&first.socket, &Request::Shutdown).expect("shutdown accepted");
    handle.join();

    let second = DaemonOptions {
        socket: dir.join("b.sock"),
        ..first
    };
    let handle = serve::serve(&second).expect("restart over the journal");
    assert_eq!(
        job_state(&second.socket, id),
        "done",
        "terminal state survives"
    );
    let after = report_bytes(&second.socket, id);
    assert_eq!(after, before, "recovered report bytes diverged");
    let next = submit(&second.socket, SubmitSpec::default());
    assert_eq!(next, id + 1, "recovered id counter must not recycle ids");
    client::request(&second.socket, &Request::Cancel { id: next }).expect("cancel accepted");
    client::request(&second.socket, &Request::Shutdown).expect("shutdown accepted");
    handle.join();
}

/// A journal holding a `submitted` line with no terminal line is an
/// orphan from a crash: on startup the daemon must re-queue it at its
/// original priority and run it to completion, balancing the journal.
#[test]
fn orphaned_submission_requeues_and_completes_on_startup() {
    let dir = scratch("orphan");
    let journal_path = dir.join("state.jsonl");
    let spec = SubmitSpec {
        benchmarks: Some("LPS".into()),
        mechanisms: Some("snake".into()),
        quick: true,
        priority: 3,
        ..SubmitSpec::default()
    };
    {
        // Hand-write the journal a crashed daemon would have left.
        let j = Journal::open_append(&journal_path).expect("journal opens");
        j.append(&JournalEvent::Submitted {
            id: 1,
            spec: spec.clone(),
        });
        j.append(&JournalEvent::Running { id: 1 });
        assert_eq!(j.errors(), 0);
    }
    let opts = DaemonOptions {
        socket: dir.join("snaked.sock"),
        state_log: Some(journal_path.clone()),
        checkpoint_every: None,
        quota_queued: None,
        quota_running: None,
        workers: 1,
        isolate: false,
    };
    let handle = serve::serve(&opts).expect("daemon replays the journal");
    wait_done(&opts.socket, 1);
    assert!(report_bytes(&opts.socket, 1).contains("snake"));
    assert_eq!(submit(&opts.socket, SubmitSpec::default()), 2);
    client::request(&opts.socket, &Request::Cancel { id: 2 }).expect("cancel accepted");
    client::request(&opts.socket, &Request::Shutdown).expect("shutdown accepted");
    handle.join();

    let text = std::fs::read_to_string(&journal_path).expect("journal readable");
    assert!(
        text.contains("\"event\":\"requeued\""),
        "recovery must journal the re-queue: {text}"
    );
    assert_eq!(
        text.matches("\"event\":\"submitted\"").count(),
        text.matches("\"terminal\":true").count(),
        "journal must balance: {text}"
    );
}

/// Spawns the real `snaked` binary with a journal and an aggressive
/// checkpoint cadence.
fn spawn_daemon(socket: &Path, journal: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_snaked"))
        .arg("--socket")
        .arg(socket)
        .arg("--state")
        .arg(journal)
        .arg("--checkpoint-every")
        .arg("500")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn snaked")
}

/// Waits until the daemon answers on its socket (replay included).
fn wait_ready(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if client::request(socket, &Request::Status { id: None }).is_ok() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never became ready on {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The chaos workload: long enough (seconds, between the cycle budget
/// and the fsync per checkpoint) that `kill -9` reliably lands
/// mid-simulation, deterministic so report bytes are comparable.
fn workload() -> SubmitSpec {
    SubmitSpec {
        benchmarks: Some("LPS".into()),
        mechanisms: Some("snake".into()),
        quick: false,
        budget: Some(200_000),
        window: Some(500),
        ..SubmitSpec::default()
    }
}

/// The acceptance gate: `kill -9` the daemon process at randomized
/// points, restart it over the same journal, repeat until the job
/// finishes — the final report bytes must equal an uninterrupted
/// run's, and the journal must balance. `CHAOS_TRIALS` (default 3)
/// scales the number of independent kill schedules.
#[test]
fn kill_nine_anywhere_yields_byte_identical_reports() {
    // Reference: the same workload through the same binary, unkilled.
    let reference = {
        let dir = scratch("chaos-ref");
        let socket = dir.join("snaked.sock");
        let journal = dir.join("state.jsonl");
        let mut child = spawn_daemon(&socket, &journal);
        wait_ready(&socket);
        let id = submit(&socket, workload());
        wait_done(&socket, id);
        let bytes = report_bytes(&socket, id);
        client::request(&socket, &Request::Shutdown).expect("shutdown accepted");
        child.wait().expect("daemon exits");
        bytes
    };
    assert!(reference.len() > 2, "reference run must produce reports");

    let trials: u64 = std::env::var("CHAOS_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let mut total_kills = 0u32;
    for trial in 0..trials {
        let dir = scratch(&format!("chaos-{trial}"));
        let socket = dir.join("snaked.sock");
        let journal = dir.join("state.jsonl");
        let mut child = spawn_daemon(&socket, &journal);
        wait_ready(&socket);
        let id = submit(&socket, workload());

        // Deterministic per-trial LCG so every trial kills at a
        // different schedule but failures replay exactly.
        let mut rng = 0x5_DEEC_E66Du64 ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut kills = 0u32;
        loop {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let delay = 30 + (rng >> 33) % 200;
            std::thread::sleep(Duration::from_millis(delay));
            if job_state(&socket, id) == "done" {
                break;
            }
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("killed daemon reaped");
            kills += 1;
            assert!(
                kills < 200,
                "trial {trial}: job {id} made no progress after {kills} kills"
            );
            child = spawn_daemon(&socket, &journal);
            wait_ready(&socket);
        }

        let bytes = report_bytes(&socket, id);
        assert_eq!(
            bytes, reference,
            "trial {trial}: report bytes diverged after {kills} kills"
        );
        let text = std::fs::read_to_string(&journal).expect("journal readable");
        assert_eq!(
            text.matches("\"event\":\"submitted\"").count(),
            1,
            "trial {trial}: submit must be journaled exactly once"
        );
        assert_eq!(
            text.matches("\"terminal\":true").count(),
            1,
            "trial {trial}: exactly one terminal line must balance it"
        );
        client::request(&socket, &Request::Shutdown).expect("shutdown accepted");
        child.wait().expect("daemon exits");
        eprintln!("chaos trial {trial}: survived {kills} kills, reports identical");
        total_kills += kills;
    }
    assert!(
        total_kills >= 1,
        "the chaos loop never killed the daemon — workload too short for this machine"
    );
}

/// Isolation chaos: a sandboxed child dying by SIGSEGV or SIGKILL must
/// quarantine its own job with the decoded signal kind while the
/// daemon survives, finishes the sibling job normally, and reports a
/// healthy (non-degraded) sandbox executor.
#[test]
fn child_signal_deaths_quarantine_without_harming_the_daemon() {
    for (mode, want_kind) in [("segv", "signal 11"), ("kill9", "signal 9")] {
        let dir = scratch(&format!("isolate-{mode}"));
        let socket = dir.join("snaked.sock");
        let journal = dir.join("state.jsonl");
        let mut child = Command::new(env!("CARGO_BIN_EXE_snaked"))
            .arg("--socket")
            .arg(&socket)
            .arg("--state")
            .arg(&journal)
            .arg("--isolate")
            .env("SNAKE_EXEC_WORKER", env!("CARGO_BIN_EXE_repro"))
            .env("SNAKE_EXEC_CRASH", format!("CP/snake={mode}"))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn snaked");
        wait_ready(&socket);
        let id = submit(
            &socket,
            SubmitSpec {
                benchmarks: Some("LPS,CP".into()),
                mechanisms: Some("snake".into()),
                quick: true,
                ..SubmitSpec::default()
            },
        );
        wait_done(&socket, id);

        let status = client::request(&socket, &Request::Status { id: Some(id) })
            .expect("status answered after the child died");
        let job = status.get("job").expect("job object");
        assert_eq!(
            job.get("exit").and_then(Value::as_u64),
            Some(3),
            "{mode}: a quarantined job yields the sweep quarantine exit"
        );
        let quarantined = job
            .get("quarantined")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| panic!("{mode}: done status must carry the quarantined array"));
        assert_eq!(quarantined.len(), 1, "{mode}: exactly the crashed job");
        let note = &quarantined[0];
        assert_eq!(note.get("job").and_then(Value::as_str), Some("CP/snake"));
        assert_eq!(
            note.get("crash").and_then(Value::as_str),
            Some(want_kind),
            "{mode}: crash kind must decode from the child's wait status"
        );

        let reports = report_bytes(&socket, id);
        assert!(
            reports.contains("LPS/snake"),
            "{mode}: the sibling job must finish normally: {reports}"
        );
        let health = client::request(&socket, &Request::Health).expect("health answered");
        assert_eq!(
            health.get("exec_degraded").and_then(Value::as_bool),
            Some(false),
            "{mode}: child crashes are contained, not an executor degradation"
        );
        client::request(&socket, &Request::Shutdown).expect("shutdown accepted");
        child.wait().expect("daemon exits");
    }
}

//! The consolidated exit-code contract. Every binary shares one
//! namespace (README § exit codes); this test pins the constants to
//! distinct values, to the usage/worker conventions, and to the
//! README table itself — renumbering a constant without updating the
//! docs (or vice versa) fails here, not in a user's script.

use snake_bench::cli::EXIT_CHECKPOINT_MISMATCH;
use snake_bench::perfstat::EXIT_PERF_REGRESSION;
use snake_bench::serve::{EXIT_CANCELLED, EXIT_QUOTA};
use snake_bench::supervise::{EXIT_INTERRUPTED, EXIT_QUARANTINE};

const README: &str = include_str!("../../../README.md");

/// Every typed exit constant, named as the README table names it.
const CODES: &[(i32, &str)] = &[
    (EXIT_QUARANTINE, "quarantined"),
    (EXIT_INTERRUPTED, "interrupted"),
    (EXIT_PERF_REGRESSION, "regression"),
    (EXIT_CHECKPOINT_MISMATCH, "mismatch"),
    (EXIT_CANCELLED, "cancelled"),
    (EXIT_QUOTA, "quota"),
];

#[test]
fn exit_codes_are_distinct_and_leave_the_reserved_range_alone() {
    let mut seen = std::collections::HashSet::new();
    for (code, name) in CODES {
        assert!(seen.insert(*code), "{name} reuses exit code {code}");
        assert!(
            *code > 2,
            "{name} = {code} collides with success (0) or usage errors (2)"
        );
        assert!(*code < 64, "{name} = {code} strays into shell/OS territory");
    }
}

#[test]
fn readme_table_documents_every_typed_exit_code() {
    // Pull the `| code | meaning |` table rows out of the README.
    let rows: Vec<(i32, String)> = README
        .lines()
        .filter_map(|l| {
            let mut cells = l.trim().strip_prefix('|')?.splitn(3, '|');
            let code: i32 = cells.next()?.trim().parse().ok()?;
            Some((code, cells.next()?.trim().to_string()))
        })
        .collect();
    assert!(
        rows.iter().any(|(c, _)| *c == 0),
        "the README table must document success"
    );
    for (code, name) in CODES {
        let row = rows
            .iter()
            .find(|(c, _)| c == code)
            .unwrap_or_else(|| panic!("exit code {code} ({name}) missing from the README table"));
        assert!(
            row.1.to_lowercase().contains(name),
            "README row for exit {code} should mention {name:?}: {:?}",
            row.1
        );
    }
    // And nothing undocumented: every table row above 2 maps back to a
    // constant (0 and 2 are the POSIX-conventional codes).
    for (code, meaning) in &rows {
        if *code <= 2 {
            continue;
        }
        assert!(
            CODES.iter().any(|(c, _)| c == code),
            "README documents exit {code} ({meaning:?}) but no constant defines it"
        );
    }
}

#[test]
fn worker_usage_exit_matches_the_usage_convention() {
    // The hidden `repro --exec-job` worker returns 2 (the shared usage
    // code) for an unusable spec and 0 otherwise — crashes travel as
    // wait statuses, never as ambiguous exit codes in this table.
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--exec-job")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"this is not a job spec\n")
        .expect("write garbage spec");
    let status = child.wait().expect("worker exits");
    assert_eq!(
        status.code(),
        Some(2),
        "an unusable spec is a usage error, same namespace as the CLIs"
    );
}

//! Property-based crash model for the daemon's state journal: a crash
//! leaves an arbitrary *byte prefix* of the append stream on disk.
//! For any event sequence and any truncation point, `load` must
//! return exactly the events whose lines survived complete, reopening
//! must heal the torn tail so the next append starts on a clean line,
//! and the pure `recover` fold must never panic or recycle job ids —
//! whatever interleaving the journal replays.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use snake_bench::serve::journal::{self, Journal, JournalEvent};
use snake_bench::serve::SubmitSpec;
use snake_bench::supervise::JobRecord;

/// A unique temp path per generated case (cases run sequentially, but
/// a failing case must not collide with a later run's files).
fn case_path() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "snake-proptest-journal-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Arbitrary journal events, spanning every variant the daemon writes.
fn event() -> impl Strategy<Value = JournalEvent> {
    let job = || prop::sample::select(vec!["LPS/snake".to_string(), "GEMM/stride".to_string()]);
    prop_oneof![
        (1u64..5).prop_map(|id| JournalEvent::Submitted {
            id,
            spec: SubmitSpec {
                quick: true,
                priority: id,
                ..SubmitSpec::default()
            },
        }),
        (1u64..5).prop_map(|id| JournalEvent::Running { id }),
        (1u64..5).prop_map(|id| JournalEvent::Requeued { id }),
        (1u64..5, job(), 0u64..50_000).prop_map(|(id, job, cycle)| JournalEvent::Checkpoint {
            id,
            cycle,
            path: format!("state.jsonl.j{id}.ckpt"),
            job,
        }),
        (1u64..5, job()).prop_map(|(id, job)| JournalEvent::CheckpointCleared { id, job }),
        (1u64..5, job(), 1u64..4, 0u64..90_000).prop_map(|(id, job, attempts, cycle)| {
            JournalEvent::Job {
                id,
                record: JobRecord::Suspended {
                    checkpoint: format!("{job}.ckpt").replace('/', "-"),
                    attempts: attempts as u32,
                    cycle,
                    job,
                },
            }
        }),
        (1u64..5, 0u64..9, any::<bool>()).prop_map(|(id, exit, done)| JournalEvent::Terminal {
            id,
            state: if done {
                "done".into()
            } else {
                "cancelled".into()
            },
            exit: exit as i32,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write events through the real append path, cut the file at an
    /// arbitrary byte, and load: exactly the complete-line prefix
    /// survives. Reopening heals the tear, and an append after the
    /// heal lands as a clean line — never glued onto partial bytes.
    #[test]
    fn any_byte_prefix_loads_heals_and_appends_cleanly(
        case in (prop::collection::vec(event(), 1..10), 0usize..101)
    ) {
        let (events, cut_pct) = case;
        let path = case_path();
        {
            let j = Journal::open_append(&path).expect("journal opens");
            for ev in &events {
                j.append(ev);
            }
            prop_assert_eq!(j.errors(), 0, "appends to a real file succeed");
        }
        let bytes = std::fs::read(&path).expect("journal readable");
        let cut = bytes.len() * cut_pct / 100;
        // A line survives the crash iff its trailing newline made it
        // to disk before the cut.
        let survivors = bytes[..cut].iter().filter(|b| **b == b'\n').count();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("journal writable")
            .set_len(cut as u64)
            .expect("truncate to the crash point");

        let loaded = journal::load(&path).expect("torn tail never fails the load");
        prop_assert_eq!(&loaded, &events[..survivors]);

        // Reopen (heals the tear) and append one more event: the new
        // line must parse, right after the surviving prefix.
        let extra = JournalEvent::Running { id: 99 };
        Journal::open_append(&path).expect("reopen heals").append(&extra);
        let mut expected = events[..survivors].to_vec();
        expected.push(extra);
        prop_assert_eq!(journal::load(&path).expect("healed journal loads"), expected);

        // And the heal is real: the file itself now ends every line
        // with a newline (no partial bytes kept).
        let healed = std::fs::read(&path).expect("journal readable");
        prop_assert_eq!(healed.last(), Some(&b'\n'));
        std::fs::remove_file(&path).expect("cleanup");
    }

    /// The pure replay fold: arbitrary interleavings never panic, ids
    /// never recycle (`next_id` exceeds every submitted id), and every
    /// recovered job traces back to a `submitted` line.
    #[test]
    fn recover_is_total_and_never_recycles_ids(
        events in prop::collection::vec(event(), 0..40)
    ) {
        let r = journal::recover(&events);
        let submitted: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Submitted { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        for job in &r.jobs {
            prop_assert!(submitted.contains(&job.id), "job {} was never submitted", job.id);
            prop_assert!(r.next_id > job.id, "next_id must exceed recovered id {}", job.id);
        }
        prop_assert_eq!(
            r.next_id,
            submitted.iter().max().map_or(1, |m| m + 1),
            "next_id is max submitted id + 1"
        );
        // Ids come back sorted (BTreeMap order) and unique.
        let ids: Vec<u64> = r.jobs.iter().map(|j| j.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(ids, sorted);
    }

    /// A mid-file tear (bytes lost *before* later intact lines — disk
    /// corruption, not a crash) must refuse to load: the daemon would
    /// rather fail to start than replay a journal with a hole in it.
    #[test]
    fn midfile_damage_is_rejected_not_patched(
        case in (prop::collection::vec(event(), 2..10), 0usize..100)
    ) {
        let (events, victim_pct) = case;
        let path = case_path();
        {
            let j = Journal::open_append(&path).expect("journal opens");
            for ev in &events {
                j.append(ev);
            }
        }
        // Overwrite one non-final line's opening brace: that line can
        // no longer parse, but lines after it are intact.
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let victim = victim_pct * (events.len() - 1) / 100;
        let start: usize = text
            .lines()
            .take(victim)
            .map(|l| l.len() + 1)
            .sum();
        let mut bytes = text.into_bytes();
        bytes[start] = b'X';
        let mut f = std::fs::File::create(&path).expect("journal writable");
        f.write_all(&bytes).expect("rewrite");
        drop(f);

        let err = journal::load(&path).expect_err("corruption must be fatal");
        prop_assert!(
            matches!(err, journal::JournalError::Malformed { line, .. } if line == victim + 1),
            "wrong diagnosis: {}", err
        );
        std::fs::remove_file(&path).expect("cleanup");
    }
}

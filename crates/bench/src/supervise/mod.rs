//! The sweep supervisor: experiment campaigns as supervised jobs.
//!
//! A campaign is a list of `(benchmark, mechanism)` jobs. Each job
//! runs on a worker thread behind `catch_unwind`, so one poisoned
//! simulation cannot take down the sweep: a panicking or deadlocking
//! job is retried with capped exponential backoff and a deterministic
//! per-attempt fault seed, and quarantined after the attempt budget —
//! while every healthy sibling still produces its row.
//!
//! Progress checkpoints into a crash-consistent JSONL [`manifest`]
//! (versioned header written via tmp-file + atomic rename; one record
//! appended and flushed per finished job), so an interrupted sweep can
//! be resumed with `repro --resume <manifest>`: completed jobs are
//! replayed from their recorded reports and the final rendered output
//! is byte-identical to an uninterrupted run.
//!
//! Jobs caught *mid-simulation* by the sweep deadline (or the
//! deterministic `suspend_after` trigger) are not killed and retried
//! from zero: their complete simulator state is checkpointed next to
//! the manifest ([`job_checkpoint_path`]) and a `suspended` record is
//! appended; `--resume` restores the state and finishes the remaining
//! cycles, with the same byte-identical guarantee.
//!
//! Exit codes: `0` all jobs completed, [`EXIT_QUARANTINE`] when any
//! job was quarantined, [`EXIT_INTERRUPTED`] when the sweep stopped
//! early (deadline or `--stop-after`) with jobs still pending.

pub mod executor;
pub mod manifest;
pub mod progress;
mod supervisor;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snake_core::PrefetcherKind;
use snake_sim::SimError;
use snake_workloads::Benchmark;

use crate::runner::{Harness, JobRun};
use manifest::{LoadedManifest, ManifestError, ManifestHeader, ManifestWriter};

pub use executor::{CrashKind, CrashReport, ExecContext, ExecError, JobExecutor, SandboxLimits};
pub use manifest::JobRecord;
pub use progress::{Progress, ProgressSnapshot};
pub use supervisor::{run_supervised, JobOutcome, SweepResult};

/// Exit code when the sweep finished but quarantined at least one job
/// (healthy rows were still produced and rendered).
pub const EXIT_QUARANTINE: i32 = 3;

/// Exit code when the sweep stopped before running every job (wall
/// deadline or `--stop-after`); resume from the manifest to finish.
pub const EXIT_INTERRUPTED: i32 = 4;

/// One supervised unit of work: a benchmark under a mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// The application to run.
    pub bench: Benchmark,
    /// The prefetching mechanism to run it under.
    pub kind: PrefetcherKind,
}

impl JobSpec {
    /// The manifest identity of this job, `"<abbr>/<mechanism>"`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.bench.abbr(), self.kind.name())
    }
}

impl std::fmt::Display for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.bench.abbr(), self.kind.name())
    }
}

/// The full cross product of benchmarks × mechanisms, in campaign
/// order (benchmark-major, matching the paper's table layout).
pub fn campaign(benches: &[Benchmark], kinds: &[PrefetcherKind]) -> Vec<JobSpec> {
    benches
        .iter()
        .flat_map(|&bench| kinds.iter().map(move |&kind| JobSpec { bench, kind }))
        .collect()
}

/// Supervision policy for one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Attempts per job before quarantine (≥1).
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `n` waits
    /// `min(cap, base << (n-1))` milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Worker threads pulling jobs from the queue.
    pub workers: usize,
    /// Wall-clock budget for the whole sweep; jobs not yet claimed
    /// when it expires are skipped and the sweep reports interrupted.
    pub wall_deadline: Option<Duration>,
    /// Stop claiming new jobs after this many have been started this
    /// run (checkpointed jobs excluded) — a deterministic stand-in for
    /// killing the process mid-sweep.
    pub stop_after: Option<usize>,
    /// Suspend (checkpoint mid-simulation and requeue) every running
    /// job once its simulation reaches this cycle — the deterministic
    /// stand-in for deadline preemption, mirroring `stop_after`.
    /// Requires a manifest; applies to this invocation only, so a
    /// resume without the flag restores and finishes the job.
    pub suspend_after: Option<u64>,
    /// Base value for the deterministic per-attempt retry seed
    /// schedule (see [`retry_seed`]).
    pub retry_seed_base: u64,
    /// Live progress counters the supervisor updates as jobs finish —
    /// shared with `repro --progress` and the daemon's `tail` stream.
    /// `None` (the default) skips all bookkeeping.
    pub progress: Option<Arc<Progress>>,
    /// How jobs execute: the historical in-thread path (default) or a
    /// subprocess sandbox with rlimits and a kill lease. Shared across
    /// the sweep so one spawn failure degrades the whole campaign with
    /// one sticky flag (see [`JobExecutor::degraded`]).
    pub executor: Arc<JobExecutor>,
    /// How long past the wall deadline a still-running job may keep
    /// the sweep before the watchdog marks it overdue in `Progress`
    /// (the cooperative in-thread deadline check only fires every 1024
    /// cycles — a job wedged *inside* one cycle never reaches it).
    pub watchdog_grace: Duration,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            wall_deadline: None,
            stop_after: None,
            suspend_after: None,
            retry_seed_base: 0x534E414B45, // "SNAKE"
            progress: None,
            executor: Arc::new(JobExecutor::in_thread()),
            watchdog_grace: Duration::from_millis(1000),
        }
    }
}

/// The deterministic fault seed for retry `attempt` of `job_id`.
///
/// Attempt 1 always uses the harness's own seed (so a job that never
/// fails is bit-identical to an unsupervised run); later attempts
/// perturb the fault-injection RNG reproducibly, independent of
/// thread scheduling or wall-clock time.
pub fn retry_seed(base: u64, job_id: &str, attempt: u32) -> u64 {
    manifest::fnv1a64(job_id.as_bytes())
        ^ base
        ^ u64::from(attempt).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Fingerprint binding a manifest to one (harness, campaign) pair, so
/// `--resume` refuses to splice reports from a different experiment.
pub fn fingerprint(h: &Harness, jobs: &[JobSpec]) -> String {
    let mut text = format!("snake-sweep-v1|{:?}|{:?}|", h.cfg, h.size);
    for job in jobs {
        text.push_str(&job.id());
        text.push('|');
    }
    format!("{:016x}", manifest::fnv1a64(text.as_bytes()))
}

/// A fatal error setting up or checkpointing a sweep (job-level
/// failures are *not* errors — they become quarantine records).
#[derive(Debug)]
pub enum SweepError {
    /// The harness configuration is invalid.
    Sim(SimError),
    /// Reading or writing the manifest failed.
    Manifest(ManifestError),
    /// A manifest already exists at the path and `resume` was not
    /// requested; refusing to clobber checkpointed work.
    ManifestExists(String),
    /// The manifest on disk belongs to a different harness or
    /// campaign.
    FingerprintMismatch {
        /// Fingerprint of the requested sweep.
        expected: String,
        /// Fingerprint recorded in the manifest.
        found: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Sim(e) => write!(f, "{e}"),
            SweepError::Manifest(e) => write!(f, "{e}"),
            SweepError::ManifestExists(path) => write!(
                f,
                "manifest {path} already exists; pass --resume to continue it \
                 or remove it to start over"
            ),
            SweepError::FingerprintMismatch { expected, found } => write!(
                f,
                "manifest belongs to a different sweep \
                 (expected fingerprint {expected}, found {found}); \
                 the harness, flags, and job list must match the original run"
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Sim(e) => Some(e),
            SweepError::Manifest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> Self {
        SweepError::Sim(e)
    }
}

impl From<ManifestError> for SweepError {
    fn from(e: ManifestError) -> Self {
        SweepError::Manifest(e)
    }
}

/// The sibling file a suspended job's mid-simulation checkpoint goes
/// to: `<manifest file name>.<job id with '/' → '-'>.ckpt`, in the
/// manifest's directory — so sweep state and simulation state travel
/// together.
pub fn job_checkpoint_path(manifest: &Path, job_id: &str) -> PathBuf {
    let stem = manifest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sweep".into());
    manifest.with_file_name(format!("{stem}.{}.ckpt", job_id.replace('/', "-")))
}

/// Runs a campaign under supervision with an injectable per-job
/// runner, wiring up the manifest life cycle:
///
/// * `manifest_path = None` — no checkpointing (tests, throwaway runs);
/// * fresh path — a versioned header is written atomically, then one
///   record per finished job;
/// * `resume = true` — previously recorded jobs are replayed from the
///   manifest (their simulations are *not* re-run), jobs suspended
///   mid-simulation are requeued with their checkpoint path, and new
///   records are appended to the same file.
///
/// # Errors
///
/// Returns [`SweepError`] for an invalid harness, an unusable
/// manifest, or a fingerprint mismatch on resume.
pub fn run_campaign_with<F>(
    h: &Harness,
    jobs: &[JobSpec],
    cfg: &SweepConfig,
    manifest_path: Option<&Path>,
    resume: bool,
    runner: F,
) -> Result<SweepResult, SweepError>
where
    F: Fn(&JobSpec, u32, Option<&Path>) -> Result<JobRun, ExecError> + Sync,
{
    h.validate()?;
    let fp = fingerprint(h, jobs);
    let mut checkpointed: HashMap<String, JobRecord> = HashMap::new();
    let mut writer: Option<ManifestWriter> = None;
    if let Some(path) = manifest_path {
        if resume {
            let LoadedManifest { header, records } = manifest::load(path)?;
            if header.fingerprint != fp {
                return Err(SweepError::FingerprintMismatch {
                    expected: fp,
                    found: header.fingerprint,
                });
            }
            for rec in records {
                // Last record wins if a job somehow appears twice.
                checkpointed.insert(rec.job().to_string(), rec);
            }
            writer = Some(ManifestWriter::append_to(path)?);
        } else {
            if path.exists() {
                return Err(SweepError::ManifestExists(path.display().to_string()));
            }
            let header = ManifestHeader {
                fingerprint: fp,
                jobs: jobs.len() as u64,
            };
            writer = Some(ManifestWriter::create(path, &header)?);
        }
    }
    Ok(run_supervised(jobs, cfg, &checkpointed, writer, runner))
}

/// [`run_campaign_with`] using the configured [`JobExecutor`]:
/// attempt 1 runs the harness untouched; retries perturb only the
/// fault-injection seed via the deterministic [`retry_seed`] schedule.
///
/// With a manifest, running jobs are *suspended* rather than lost when
/// the sweep deadline expires (or `suspend_after` fires): their full
/// simulator state is checkpointed next to the manifest and the
/// `--resume` run restores it mid-simulation, finishing the remaining
/// cycles bit-identically. Without a manifest there is nowhere durable
/// to put the state, so jobs run to completion as before. Under the
/// sandbox executor a deadline kills the child instead, which suspends
/// from its newest periodic checkpoint (or quarantines as a timeout
/// when it never wrote one).
///
/// # Errors
///
/// Returns [`SweepError`] for an invalid harness, an unusable
/// manifest, or a fingerprint mismatch on resume.
pub fn run_campaign(
    h: &Harness,
    jobs: &[JobSpec],
    cfg: &SweepConfig,
    manifest_path: Option<&Path>,
    resume: bool,
) -> Result<SweepResult, SweepError> {
    let base = cfg.retry_seed_base;
    let deadline = cfg.wall_deadline.map(|d| Instant::now() + d);
    let suspend_cycle = cfg.suspend_after;
    run_campaign_with(
        h,
        jobs,
        cfg,
        manifest_path,
        resume,
        |job, attempt, resume_from| {
            let checkpoint_to = manifest_path.map(|m| job_checkpoint_path(m, &job.id()));
            let ctx = ExecContext {
                resume_from: if attempt == 1 { resume_from } else { None },
                checkpoint_to: checkpoint_to.as_deref(),
                suspend_after: suspend_cycle,
                deadline,
                ..ExecContext::default()
            };
            if attempt == 1 {
                cfg.executor.run(h, job, &ctx, &mut |_, _| {})
            } else {
                let mut retry = h.clone();
                retry.cfg.fault.seed = retry_seed(base, &job.id(), attempt);
                cfg.executor.run(&retry, job, &ctx, &mut |_, _| {})
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_benchmark_major_and_ids_are_stable() {
        let jobs = campaign(
            &[Benchmark::Lps, Benchmark::Cp],
            &[PrefetcherKind::Baseline, PrefetcherKind::Snake],
        );
        let ids: Vec<String> = jobs.iter().map(JobSpec::id).collect();
        assert_eq!(
            ids,
            ["LPS/baseline", "LPS/snake", "CP/baseline", "CP/snake"]
        );
    }

    #[test]
    fn retry_seeds_differ_by_job_and_attempt_but_are_deterministic() {
        let a2 = retry_seed(7, "LPS/snake", 2);
        let a3 = retry_seed(7, "LPS/snake", 3);
        let b2 = retry_seed(7, "CP/snake", 2);
        assert_ne!(a2, a3);
        assert_ne!(a2, b2);
        assert_eq!(a2, retry_seed(7, "LPS/snake", 2));
    }

    #[test]
    fn fingerprint_tracks_harness_and_campaign() {
        let h = Harness::quick();
        let jobs = campaign(&[Benchmark::Lps], &[PrefetcherKind::Snake]);
        let fp = fingerprint(&h, &jobs);
        assert_eq!(fp, fingerprint(&h, &jobs), "deterministic");
        let mut budgeted = h.clone();
        budgeted.cfg.cycle_budget = Some(snake_sim::Cycle(1000));
        assert_ne!(fp, fingerprint(&budgeted, &jobs), "config changes it");
        let more = campaign(&[Benchmark::Lps, Benchmark::Cp], &[PrefetcherKind::Snake]);
        assert_ne!(fp, fingerprint(&h, &more), "job list changes it");
    }
}

//! The worker pool: claims jobs, isolates panics, retries with
//! backoff, checkpoints records, and assembles the final result.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use snake_core::MechanismReport;
use snake_sim::StopReason;

use super::executor::{CrashKind, ExecError};
use super::manifest::{JobRecord, ManifestWriter};
use super::{JobSpec, SweepConfig, EXIT_INTERRUPTED, EXIT_QUARANTINE};
use crate::figures::panic_message;
use crate::report::{pct, ratio, Table};
use crate::runner::JobRun;

/// The final state of one job in a finished sweep.
//
// A sweep holds tens of these, so the report row's size (which
// dominates the enum) is irrelevant; boxing it would only add churn
// at every construction and match site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job produced a report (cleanly, or truncated by a cycle
    /// budget / cycle limit).
    Completed {
        /// The report row.
        report: MechanismReport,
        /// Stop-reason label (`"completed"`, `"budget_exceeded"`, …).
        stop: String,
        /// Attempts it took (1 = first try).
        attempts: u32,
    },
    /// Every attempt panicked, deadlocked, or errored; the job is
    /// quarantined and its siblings were unaffected.
    Crashed {
        /// The last failure, human-readable.
        message: String,
        /// Attempts made before quarantine.
        attempts: u32,
        /// Typed crash classification when the failure was a process
        /// death (sandbox executor) or a panic; `None` for typed
        /// simulator errors and deadlocks.
        crash: Option<CrashKind>,
        /// Last stderr excerpt from the crashed child, when captured.
        stderr: Option<String>,
    },
    /// The job was never started: the sweep hit its wall deadline or
    /// `stop_after` first. Resume from the manifest to run it.
    Skipped {
        /// Why it was not started.
        reason: String,
    },
    /// The job was preempted mid-simulation (deadline or
    /// `suspend_after`); its full state is checkpointed and resume
    /// restores it rather than re-running from cycle zero.
    Suspended {
        /// Simulation cycle the state was captured at.
        cycle: u64,
        /// Path of the checkpoint artifact.
        checkpoint: String,
        /// Attempts when it was suspended.
        attempts: u32,
    },
}

impl JobOutcome {
    /// The manifest record this outcome checkpoints as — `None` for
    /// skipped jobs, which are not durable state (they simply re-run).
    /// Shared by the sweep manifest writer and the daemon's state
    /// journal, so both planes record identical facts.
    pub fn to_record(&self, job: String) -> Option<JobRecord> {
        match self {
            JobOutcome::Completed {
                report,
                stop,
                attempts,
            } => Some(JobRecord::Completed {
                job,
                attempts: *attempts,
                stop: stop.clone(),
                report: report.clone(),
            }),
            JobOutcome::Crashed {
                message,
                attempts,
                crash,
                stderr,
            } => Some(JobRecord::Quarantined {
                job,
                attempts: *attempts,
                error: message.clone(),
                crash: crash.map(|k| k.label()),
                stderr: stderr.clone(),
            }),
            JobOutcome::Suspended {
                cycle,
                checkpoint,
                attempts,
            } => Some(JobRecord::Suspended {
                job,
                attempts: *attempts,
                cycle: *cycle,
                checkpoint: checkpoint.clone(),
            }),
            JobOutcome::Skipped { .. } => None,
        }
    }
}

/// Everything a finished (or interrupted) sweep produced.
#[derive(Debug)]
pub struct SweepResult {
    /// One outcome per job, in campaign order.
    pub outcomes: Vec<(JobSpec, JobOutcome)>,
    /// True when jobs were skipped (deadline / `stop_after`).
    pub interrupted: bool,
    /// Checkpointing failures (the sweep itself kept going; resume
    /// from this manifest may re-run the affected jobs).
    pub manifest_errors: Vec<String>,
}

impl SweepResult {
    /// Completed / quarantined / skipped / suspended counts.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for (_, o) in &self.outcomes {
            match o {
                JobOutcome::Completed { .. } => c.0 += 1,
                JobOutcome::Crashed { .. } => c.1 += 1,
                JobOutcome::Skipped { .. } => c.2 += 1,
                JobOutcome::Suspended { .. } => c.3 += 1,
            }
        }
        c
    }

    /// The process exit code this result calls for: interrupted sweeps
    /// (skipped or suspended jobs remain) exit [`EXIT_INTERRUPTED`] —
    /// resume to finish; quarantines exit [`EXIT_QUARANTINE`], clean
    /// sweeps exit 0.
    pub fn exit_code(&self) -> i32 {
        let (_, quarantined, skipped, suspended) = self.counts();
        if self.interrupted || skipped > 0 || suspended > 0 {
            EXIT_INTERRUPTED
        } else if quarantined > 0 {
            EXIT_QUARANTINE
        } else {
            0
        }
    }

    /// The healthy rows, in campaign order.
    pub fn results_table(&self) -> Table {
        let mut t = Table::new(
            "Sweep — per-job results",
            [
                "app",
                "mechanism",
                "ipc",
                "coverage",
                "accuracy",
                "cycles",
                "stop",
                "attempts",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        for (job, outcome) in &self.outcomes {
            if let JobOutcome::Completed {
                report,
                stop,
                attempts,
            } = outcome
            {
                t.push_row(vec![
                    job.bench.abbr().into(),
                    job.kind.name().into(),
                    ratio(report.ipc),
                    pct(report.coverage),
                    pct(report.accuracy),
                    report.cycles.to_string(),
                    stop.clone(),
                    attempts.to_string(),
                ]);
            }
        }
        let (completed, quarantined, skipped, suspended) = self.counts();
        let mut note = format!(
            "{completed} completed, {quarantined} quarantined, {skipped} skipped \
             of {} jobs",
            self.outcomes.len()
        );
        if suspended > 0 {
            note.push_str(&format!(
                " ({suspended} suspended mid-simulation; resume restores them)"
            ));
        }
        t.note(note);
        t
    }

    /// The quarantine section, if any job crashed out: the typed crash
    /// kind and last stderr excerpt ride along so a quarantine is
    /// diagnosable from the summary without grepping the manifest.
    pub fn quarantine_table(&self) -> Option<Table> {
        let crashed: Vec<_> = self
            .outcomes
            .iter()
            .filter_map(|(job, o)| match o {
                JobOutcome::Crashed {
                    message,
                    attempts,
                    crash,
                    stderr,
                } => Some((job, message, *attempts, crash, stderr)),
                _ => None,
            })
            .collect();
        if crashed.is_empty() {
            return None;
        }
        let mut t = Table::new(
            "Sweep — quarantined jobs",
            ["job", "attempts", "crash", "last failure"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for (job, message, attempts, crash, stderr) in crashed {
            // Keep the table single-line per job.
            let mut first_line = message.lines().next().unwrap_or("").to_string();
            if let Some(excerpt) = stderr.as_deref().map(str::trim).filter(|s| !s.is_empty()) {
                let line = excerpt.lines().next().unwrap_or("");
                first_line.push_str(&format!(" [stderr: {line}]"));
            }
            let kind = crash.map_or_else(|| "-".to_string(), |k| k.label());
            t.push_row(vec![job.id(), attempts.to_string(), kind, first_line]);
        }
        t.note("quarantined jobs exhausted their retry budget; healthy rows above are unaffected");
        Some(t)
    }

    /// Renders the result tables (results, then quarantine, then a
    /// resume hint when interrupted) as text or markdown.
    pub fn render(&self, markdown: bool) -> String {
        let mut tables = vec![self.results_table()];
        tables.extend(self.quarantine_table());
        let mut out = String::new();
        for t in &tables {
            if markdown {
                out.push_str(&t.to_markdown());
            } else {
                out.push_str(&t.to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// How far [`run_supervised`] backs off before retry `attempt + 1`:
/// `min(cap, base << (attempt - 1))` milliseconds.
pub(super) fn backoff_ms(cfg: &SweepConfig, attempt: u32) -> u64 {
    cfg.backoff_base_ms
        .checked_shl(attempt.saturating_sub(1))
        .unwrap_or(u64::MAX)
        .min(cfg.backoff_cap_ms)
}

struct Queue<'a> {
    /// `(index, job, checkpoint to resume from)` — the path is `Some`
    /// for jobs a previous run suspended mid-simulation.
    pending: VecDeque<(usize, &'a JobSpec, Option<String>)>,
    started: usize,
}

/// Runs `jobs` through `runner` under the supervision policy.
///
/// * Jobs present in `checkpointed` are replayed from their records —
///   their simulations never run again. A `Suspended` record instead
///   *requeues* the job with its mid-simulation checkpoint: the runner
///   restores the state and finishes the remaining cycles.
/// * Each remaining job runs on a worker behind `catch_unwind`; a
///   panic or deadlock triggers retries (with backoff and a fresh
///   `attempt` number for the runner's seed schedule) up to
///   `cfg.max_attempts`, then quarantine. A typed `SimError` is
///   deterministic, so it quarantines immediately without retries.
/// * Every finished job is appended to `writer` (when given) before
///   it counts as done.
pub fn run_supervised<F>(
    jobs: &[JobSpec],
    cfg: &SweepConfig,
    checkpointed: &HashMap<String, JobRecord>,
    writer: Option<ManifestWriter>,
    runner: F,
) -> SweepResult
where
    F: Fn(&JobSpec, u32, Option<&Path>) -> Result<JobRun, ExecError> + Sync,
{
    let started_at = Instant::now();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    let mut pending: VecDeque<(usize, &JobSpec, Option<String>)> = VecDeque::new();
    for (i, job) in jobs.iter().enumerate() {
        match checkpointed.get(&job.id()) {
            Some(JobRecord::Completed {
                attempts,
                stop,
                report,
                ..
            }) => {
                outcomes[i] = Some(JobOutcome::Completed {
                    report: report.clone(),
                    stop: stop.clone(),
                    attempts: *attempts,
                });
            }
            Some(JobRecord::Quarantined {
                attempts,
                error,
                crash,
                stderr,
                ..
            }) => {
                outcomes[i] = Some(JobOutcome::Crashed {
                    message: error.clone(),
                    attempts: *attempts,
                    crash: crash.as_deref().and_then(CrashKind::parse),
                    stderr: stderr.clone(),
                });
            }
            Some(JobRecord::Suspended { checkpoint, .. }) => {
                pending.push_back((i, job, Some(checkpoint.clone())));
            }
            None => pending.push_back((i, job, None)),
        }
    }
    if let Some(p) = &cfg.progress {
        p.begin(jobs.len() as u64);
        // Replayed jobs count toward their buckets up front, so a
        // resumed sweep's progress line starts where the last one
        // ended instead of at zero.
        for outcome in outcomes.iter().flatten() {
            p.observe(outcome);
        }
    }

    let queue = Mutex::new(Queue {
        pending,
        started: 0,
    });
    let done = Mutex::new(&mut outcomes);
    let writer = writer.map(Mutex::new);
    let manifest_errors = Mutex::new(Vec::new());
    let interrupted = Mutex::new(false);

    let claim = || -> Option<(usize, &JobSpec, Option<String>)> {
        let mut q = queue.lock().unwrap();
        if q.pending.is_empty() {
            return None;
        }
        let over_deadline = cfg.wall_deadline.is_some_and(|d| started_at.elapsed() >= d);
        let over_count = cfg.stop_after.is_some_and(|k| q.started >= k);
        if over_deadline || over_count {
            let reason = if over_deadline {
                "sweep wall-clock deadline exceeded before this job started"
            } else {
                "sweep stopped by --stop-after before this job started"
            };
            let mut d = done.lock().unwrap();
            while let Some((i, _, _)) = q.pending.pop_front() {
                let outcome = JobOutcome::Skipped {
                    reason: reason.into(),
                };
                if let Some(p) = &cfg.progress {
                    p.observe(&outcome);
                }
                d[i] = Some(outcome);
            }
            *interrupted.lock().unwrap() = true;
            return None;
        }
        q.started += 1;
        q.pending.pop_front()
    };

    let n_workers = cfg.workers.clamp(1, jobs.len().max(1));
    let running = AtomicU64::new(0);
    let active_workers = AtomicUsize::new(n_workers);
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                while let Some((i, job, resume)) = claim() {
                    running.fetch_add(1, Ordering::Relaxed);
                    let outcome = supervise_one(job, cfg, resume.as_deref(), &runner);
                    running.fetch_sub(1, Ordering::Relaxed);
                    if let Some(p) = &cfg.progress {
                        p.observe(&outcome);
                    }
                    if let JobOutcome::Suspended { .. } = &outcome {
                        // Work remains: the sweep must report
                        // interrupted so callers resume it.
                        *interrupted.lock().unwrap() = true;
                    }
                    if let Some(w) = &writer {
                        if let Some(record) = outcome.to_record(job.id()) {
                            if let Err(e) = w.lock().unwrap().append(&record) {
                                manifest_errors
                                    .lock()
                                    .unwrap()
                                    .push(format!("{}: {e}", job.id()));
                            }
                        }
                    }
                    done.lock().unwrap()[i] = Some(outcome);
                }
                active_workers.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // Hung-job reaper: the cooperative deadline check inside a
        // running simulation fires only every 1024 cycles, so a job
        // wedged *inside* one cycle can hold the sweep open silently.
        // The watchdog cannot kill an in-thread job, but it makes the
        // hang observable: jobs still running past the deadline plus
        // the grace period are counted as overdue in `Progress`, which
        // `repro --progress` repaints and daemon health surfaces.
        if let (Some(deadline), Some(progress)) = (cfg.wall_deadline, &cfg.progress) {
            let overdue_at = started_at + deadline + cfg.watchdog_grace;
            let progress = progress.clone();
            let running = &running;
            let active_workers = &active_workers;
            scope.spawn(move || loop {
                if active_workers.load(Ordering::Relaxed) == 0 {
                    progress.set_overdue(0);
                    return;
                }
                let overdue = if Instant::now() >= overdue_at {
                    running.load(Ordering::Relaxed)
                } else {
                    0
                };
                progress.set_overdue(overdue);
                std::thread::sleep(Duration::from_millis(25));
            });
        }
    });

    let interrupted = *interrupted.lock().unwrap();
    SweepResult {
        outcomes: jobs
            .iter()
            .zip(outcomes)
            .map(|(job, o)| (*job, o.expect("every job is checkpointed, run, or skipped")))
            .collect(),
        interrupted,
        manifest_errors: manifest_errors.into_inner().unwrap(),
    }
}

/// A retryable failure captured mid-attempt-loop, with whatever typed
/// classification it arrived with.
struct Failure {
    message: String,
    crash: Option<CrashKind>,
    stderr: Option<String>,
}

/// Runs one job's attempt loop: panic isolation, retry classification,
/// capped exponential backoff, quarantine.
///
/// A `resume_from` checkpoint only applies to attempt 1; if a resumed
/// run fails, later attempts fall back to a fresh run from cycle zero
/// under the retry seed schedule (a perturbed fault seed cannot take
/// effect inside restored RNG state anyway).
///
/// Retry classification: typed simulator errors (and their sandboxed
/// [`ExecError::Typed`] twin) are deterministic and quarantine
/// immediately; deadlocks and in-thread panics retry as before; child
/// deaths retry only when their [`CrashKind::retryable`] — a child
/// panic re-runs the same deterministic seed, and a lease timeout
/// would just burn the lease again, so neither spends retry budget.
fn supervise_one<F>(
    job: &JobSpec,
    cfg: &SweepConfig,
    resume_from: Option<&str>,
    runner: &F,
) -> JobOutcome
where
    F: Fn(&JobSpec, u32, Option<&Path>) -> Result<JobRun, ExecError> + Sync,
{
    let max_attempts = cfg.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        let resume = if attempt == 1 {
            resume_from.map(Path::new)
        } else {
            None
        };
        let failure = match catch_unwind(AssertUnwindSafe(|| runner(job, attempt, resume))) {
            Ok(Ok(JobRun::Finished(output))) => match output.stop {
                StopReason::Deadlock(report) => Failure {
                    message: format!("deadlock: {report}"),
                    crash: None,
                    stderr: None,
                },
                _ => {
                    return JobOutcome::Completed {
                        stop: output.stop.label().to_string(),
                        report: output.report,
                        attempts: attempt,
                    };
                }
            },
            Ok(Ok(JobRun::Suspended { cycle, checkpoint })) => {
                return JobOutcome::Suspended {
                    cycle,
                    checkpoint,
                    attempts: attempt,
                };
            }
            // Cancellation is a caller decision, not a failure:
            // recorded as skipped, never retried.
            Ok(Ok(JobRun::Cancelled)) => {
                return JobOutcome::Skipped {
                    reason: "cancelled by the caller before completion".into(),
                };
            }
            // A typed simulator error is deterministic (bad
            // configuration); retrying cannot change it.
            Ok(Err(ExecError::Sim(err))) => {
                return JobOutcome::Crashed {
                    message: err.to_string(),
                    attempts: attempt,
                    crash: None,
                    stderr: None,
                };
            }
            Ok(Err(ExecError::Typed(message))) => {
                return JobOutcome::Crashed {
                    message,
                    attempts: attempt,
                    crash: None,
                    stderr: None,
                };
            }
            Ok(Err(ExecError::Failure(message))) => Failure {
                message,
                crash: None,
                stderr: None,
            },
            Ok(Err(ExecError::Crash(c))) => {
                let stderr = (!c.stderr.is_empty()).then(|| c.stderr.clone());
                if !c.kind.retryable() {
                    return JobOutcome::Crashed {
                        message: c.message,
                        attempts: attempt,
                        crash: Some(c.kind),
                        stderr,
                    };
                }
                Failure {
                    message: c.message,
                    crash: Some(c.kind),
                    stderr,
                }
            }
            Err(payload) => Failure {
                message: format!("panic: {}", panic_message(payload.as_ref())),
                crash: Some(CrashKind::Panic),
                stderr: None,
            },
        };
        if attempt >= max_attempts {
            return JobOutcome::Crashed {
                message: failure.message,
                attempts: attempt,
                crash: failure.crash,
                stderr: failure.stderr,
            };
        }
        if let Some(p) = &cfg.progress {
            p.note_retry();
        }
        std::thread::sleep(std::time::Duration::from_millis(backoff_ms(cfg, attempt)));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = SweepConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            ..SweepConfig::default()
        };
        assert_eq!(backoff_ms(&cfg, 1), 10);
        assert_eq!(backoff_ms(&cfg, 2), 20);
        assert_eq!(backoff_ms(&cfg, 3), 40);
        assert_eq!(backoff_ms(&cfg, 4), 50, "capped");
        assert_eq!(backoff_ms(&cfg, 200), 50, "shift overflow saturates");
    }
}

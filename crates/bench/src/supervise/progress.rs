//! Live sweep progress: a lock-free counter block the supervisor
//! updates as jobs finish, shared by `repro --progress` (stderr render
//! loop) and the `snaked` daemon (streamed to `snakectl tail`
//! subscribers). One source, two consumers — the numbers can never
//! disagree.

use std::sync::atomic::{AtomicU64, Ordering};

use snake_core::json::Value;

use super::supervisor::JobOutcome;

/// Monotone sweep counters, updated by the supervisor's worker threads
/// with relaxed atomics (exact totals matter, cross-counter ordering
/// does not — a reader may transiently see `done` bumped before
/// `retries`, never a wrong final count).
#[derive(Debug, Default)]
pub struct Progress {
    total: AtomicU64,
    done: AtomicU64,
    quarantined: AtomicU64,
    skipped: AtomicU64,
    suspended: AtomicU64,
    retries: AtomicU64,
    /// A gauge, not a monotone counter: jobs currently running past
    /// the sweep deadline plus the watchdog grace (set by the reaper
    /// thread, re-zeroed when the hang clears).
    overdue: AtomicU64,
}

impl Progress {
    /// Declares the sweep size and zeroes every bucket. Called once by
    /// the supervisor before any job runs; replayed (checkpointed)
    /// jobs are counted toward their buckets immediately after. The
    /// reset matters when one `Progress` instance spans several
    /// supervised slices of the same sweep (the daemon's
    /// deadline-requeue path): replayed jobs are re-observed each
    /// slice, so without it `done` would run past `total`.
    pub fn begin(&self, total: u64) {
        self.total.store(total, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
        self.skipped.store(0, Ordering::Relaxed);
        self.suspended.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.overdue.store(0, Ordering::Relaxed);
    }

    /// Records a finished job's outcome in its bucket.
    pub fn observe(&self, outcome: &JobOutcome) {
        let bucket = match outcome {
            JobOutcome::Completed { .. } => &self.done,
            JobOutcome::Crashed { .. } => &self.quarantined,
            JobOutcome::Skipped { .. } => &self.skipped,
            JobOutcome::Suspended { .. } => &self.suspended,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry (a failed attempt about to be re-run).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the overdue gauge: how many jobs are still running past
    /// the sweep deadline plus the watchdog grace. Called only by the
    /// supervisor's watchdog thread.
    pub fn set_overdue(&self, n: u64) {
        self.overdue.store(n, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters for rendering.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            total: self.total.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            suspended: self.suspended.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            overdue: self.overdue.load(Ordering::Relaxed),
        }
    }
}

/// One observation of a [`Progress`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Jobs in the sweep.
    pub total: u64,
    /// Jobs that produced a report.
    pub done: u64,
    /// Jobs quarantined after exhausting their attempt budget.
    pub quarantined: u64,
    /// Jobs never started (deadline / stop-after / cancellation).
    pub skipped: u64,
    /// Jobs checkpointed mid-simulation.
    pub suspended: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Jobs currently running past the deadline + watchdog grace
    /// (a gauge: non-zero only while the hang persists).
    pub overdue: u64,
}

impl ProgressSnapshot {
    /// Jobs not yet accounted for in any terminal bucket.
    pub fn remaining(&self) -> u64 {
        self.total
            .saturating_sub(self.done + self.quarantined + self.skipped + self.suspended)
    }

    /// The human-readable one-liner `repro --progress` repaints:
    /// `sweep 3/8 done, 1 quarantined, 4 remaining, 2 retries, 12.3s`.
    /// Buckets that are zero (quarantined, suspended, skipped, retries)
    /// are omitted to keep the line short.
    pub fn render(&self, elapsed: std::time::Duration) -> String {
        let mut line = format!("sweep {}/{} done", self.done, self.total);
        if self.quarantined > 0 {
            line.push_str(&format!(", {} quarantined", self.quarantined));
        }
        if self.suspended > 0 {
            line.push_str(&format!(", {} suspended", self.suspended));
        }
        if self.skipped > 0 {
            line.push_str(&format!(", {} skipped", self.skipped));
        }
        line.push_str(&format!(", {} remaining", self.remaining()));
        if self.retries > 0 {
            line.push_str(&format!(", {} retries", self.retries));
        }
        if self.overdue > 0 {
            line.push_str(&format!(", {} OVERDUE", self.overdue));
        }
        line.push_str(&format!(", {:.1}s", elapsed.as_secs_f64()));
        line
    }

    /// The counters as a json object (the daemon's `progress` stream
    /// line payload).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("total".into(), Value::u64(self.total)),
            ("done".into(), Value::u64(self.done)),
            ("quarantined".into(), Value::u64(self.quarantined)),
            ("skipped".into(), Value::u64(self.skipped)),
            ("suspended".into(), Value::u64(self.suspended)),
            ("retries".into(), Value::u64(self.retries)),
            ("overdue".into(), Value::u64(self.overdue)),
            ("remaining".into(), Value::u64(self.remaining())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_core::MechanismReport;

    #[test]
    fn buckets_and_remaining() {
        let p = Progress::default();
        p.begin(5);
        p.observe(&JobOutcome::Completed {
            report: MechanismReport::default(),
            stop: "completed".into(),
            attempts: 1,
        });
        p.observe(&JobOutcome::Crashed {
            message: "panic".into(),
            attempts: 3,
            crash: None,
            stderr: None,
        });
        p.note_retry();
        p.note_retry();
        let s = p.snapshot();
        assert_eq!((s.total, s.done, s.quarantined), (5, 1, 1));
        assert_eq!(s.retries, 2);
        assert_eq!(s.remaining(), 3);
    }

    #[test]
    fn render_elides_zero_buckets() {
        let p = Progress::default();
        p.begin(4);
        p.observe(&JobOutcome::Completed {
            report: MechanismReport::default(),
            stop: "completed".into(),
            attempts: 1,
        });
        let line = p.snapshot().render(std::time::Duration::from_millis(1500));
        assert_eq!(line, "sweep 1/4 done, 3 remaining, 1.5s");
        p.observe(&JobOutcome::Skipped {
            reason: "cancelled".into(),
        });
        p.note_retry();
        let line = p.snapshot().render(std::time::Duration::ZERO);
        assert_eq!(
            line,
            "sweep 1/4 done, 1 skipped, 2 remaining, 1 retries, 0.0s"
        );
        p.set_overdue(2);
        let line = p.snapshot().render(std::time::Duration::ZERO);
        assert_eq!(
            line,
            "sweep 1/4 done, 1 skipped, 2 remaining, 1 retries, 2 OVERDUE, 0.0s"
        );
        p.set_overdue(0);
        let line = p.snapshot().render(std::time::Duration::ZERO);
        assert_eq!(
            line, "sweep 1/4 done, 1 skipped, 2 remaining, 1 retries, 0.0s",
            "the gauge clears when the hang does"
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let p = Progress::default();
        p.begin(2);
        assert_eq!(
            p.snapshot().to_json().to_string(),
            "{\"total\":2,\"done\":0,\"quarantined\":0,\"skipped\":0,\
             \"suspended\":0,\"retries\":0,\"overdue\":0,\"remaining\":2}"
        );
    }
}

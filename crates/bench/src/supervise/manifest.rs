//! The crash-consistent sweep checkpoint file.
//!
//! Layout: one JSON object per line (JSONL). The first line is a
//! versioned header binding the file to a (harness, campaign)
//! fingerprint; each following line records one finished job:
//!
//! ```text
//! {"manifest":"snake-sweep-manifest","version":1,"fingerprint":"ab12…","jobs":22}
//! {"job":"LPS/snake","state":"completed","attempts":1,"stop":"completed","report":{…}}
//! {"job":"MUM/mta","state":"quarantined","attempts":3,"error":"panic: …"}
//! {"job":"CP/snake","state":"suspended","attempts":1,"cycle":48213,"checkpoint":"sweep.CP-snake.ckpt"}
//! ```
//!
//! Crash consistency:
//!
//! * the header is written to a temp file, fsynced, and atomically
//!   renamed into place — a manifest either exists with a valid header
//!   or not at all;
//! * records are appended with flush + `sync_data` per line, so a
//!   record is durable before its job counts as checkpointed;
//! * a torn final line (the process died mid-append) is tolerated on
//!   load: that job simply re-runs on resume. A malformed line
//!   *before* the tail is corruption and fails the load.
//!
//! Reports round-trip bit-exactly (see [`snake_core::json`]), which is
//! what makes a resumed sweep's rendered output byte-identical to an
//! uninterrupted run.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use snake_core::json::{self, Value};
use snake_core::MechanismReport;

/// The header's `manifest` field — identifies the file format.
pub const MANIFEST_MAGIC: &str = "snake-sweep-manifest";

/// Current manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// 64-bit FNV-1a — the fingerprint/seed hash used across the sweep
/// supervisor (stable, dependency-free, not cryptographic).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The manifest's first line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestHeader {
    /// Fingerprint of the (harness, campaign) pair the file belongs to.
    pub fingerprint: String,
    /// Number of jobs in the campaign.
    pub jobs: u64,
}

impl ManifestHeader {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("manifest".into(), Value::str(MANIFEST_MAGIC)),
            ("version".into(), Value::u64(MANIFEST_VERSION)),
            ("fingerprint".into(), Value::str(&self.fingerprint)),
            ("jobs".into(), Value::u64(self.jobs)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let magic = v
            .get("manifest")
            .and_then(Value::as_str)
            .ok_or("missing \"manifest\" field")?;
        if magic != MANIFEST_MAGIC {
            return Err(format!("not a sweep manifest (magic {magic:?})"));
        }
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing \"version\" field")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"
            ));
        }
        Ok(ManifestHeader {
            fingerprint: v
                .get("fingerprint")
                .and_then(Value::as_str)
                .ok_or("missing \"fingerprint\" field")?
                .to_string(),
            jobs: v
                .get("jobs")
                .and_then(Value::as_u64)
                .ok_or("missing \"jobs\" field")?,
        })
    }
}

/// One checkpointed job.
//
// The report row dominates the enum's size, but records are transient
// (parsed, matched, dropped one manifest line at a time), so the
// indirection a `Box` would buy is not worth the churn.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum JobRecord {
    /// The job produced a report (including budget-truncated runs).
    Completed {
        /// Job id, `"<abbr>/<mechanism>"`.
        job: String,
        /// Attempts it took.
        attempts: u32,
        /// Stop-reason label (`"completed"`, `"budget_exceeded"`, …).
        stop: String,
        /// The recorded report row.
        report: MechanismReport,
    },
    /// The job exhausted its attempts (or hit a deterministic error).
    Quarantined {
        /// Job id, `"<abbr>/<mechanism>"`.
        job: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure, human-readable.
        error: String,
        /// Typed crash classification label (`"panic"`, `"signal 11"`,
        /// `"oom"`, `"timeout"`, `"protocol"`); absent for typed
        /// simulator errors, deadlocks, and pre-isolation manifests.
        crash: Option<String>,
        /// Last stderr excerpt from a crashed sandboxed child.
        stderr: Option<String>,
    },
    /// The job was preempted mid-simulation (sweep deadline); its
    /// complete simulator state is durable in the checkpoint file, and
    /// resume restores it instead of re-running from cycle zero.
    Suspended {
        /// Job id, `"<abbr>/<mechanism>"`.
        job: String,
        /// Attempts when it was suspended.
        attempts: u32,
        /// Simulation cycle the state was captured at.
        cycle: u64,
        /// Path of the mid-simulation checkpoint artifact.
        checkpoint: String,
    },
}

impl JobRecord {
    /// The job id this record belongs to.
    pub fn job(&self) -> &str {
        match self {
            JobRecord::Completed { job, .. }
            | JobRecord::Quarantined { job, .. }
            | JobRecord::Suspended { job, .. } => job,
        }
    }

    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> Value {
        match self {
            JobRecord::Completed {
                job,
                attempts,
                stop,
                report,
            } => Value::Obj(vec![
                ("job".into(), Value::str(job)),
                ("state".into(), Value::str("completed")),
                ("attempts".into(), Value::u64(u64::from(*attempts))),
                ("stop".into(), Value::str(stop)),
                ("report".into(), report.to_json()),
            ]),
            JobRecord::Quarantined {
                job,
                attempts,
                error,
                crash,
                stderr,
            } => {
                let mut fields = vec![
                    ("job".into(), Value::str(job)),
                    ("state".into(), Value::str("quarantined")),
                    ("attempts".into(), Value::u64(u64::from(*attempts))),
                    ("error".into(), Value::str(error)),
                ];
                // Optional fields are omitted entirely when absent, so
                // pre-isolation manifests stay byte-identical.
                if let Some(kind) = crash {
                    fields.push(("crash".into(), Value::str(kind)));
                }
                if let Some(excerpt) = stderr {
                    fields.push(("stderr".into(), Value::str(excerpt)));
                }
                Value::Obj(fields)
            }
            JobRecord::Suspended {
                job,
                attempts,
                cycle,
                checkpoint,
            } => Value::Obj(vec![
                ("job".into(), Value::str(job)),
                ("state".into(), Value::str("suspended")),
                ("attempts".into(), Value::u64(u64::from(*attempts))),
                ("cycle".into(), Value::u64(*cycle)),
                ("checkpoint".into(), Value::str(checkpoint)),
            ]),
        }
    }

    /// Parses one record line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let job = v
            .get("job")
            .and_then(Value::as_str)
            .ok_or("missing \"job\" field")?
            .to_string();
        let attempts = v
            .get("attempts")
            .and_then(Value::as_u32)
            .ok_or("missing \"attempts\" field")?;
        match v.get("state").and_then(Value::as_str) {
            Some("completed") => Ok(JobRecord::Completed {
                job,
                attempts,
                stop: v
                    .get("stop")
                    .and_then(Value::as_str)
                    .ok_or("missing \"stop\" field")?
                    .to_string(),
                report: MechanismReport::from_json(
                    v.get("report").ok_or("missing \"report\" field")?,
                )?,
            }),
            Some("quarantined") => Ok(JobRecord::Quarantined {
                job,
                attempts,
                error: v
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or("missing \"error\" field")?
                    .to_string(),
                crash: v.get("crash").and_then(Value::as_str).map(str::to_string),
                stderr: v.get("stderr").and_then(Value::as_str).map(str::to_string),
            }),
            Some("suspended") => Ok(JobRecord::Suspended {
                job,
                attempts,
                cycle: v
                    .get("cycle")
                    .and_then(Value::as_u64)
                    .ok_or("missing \"cycle\" field")?,
                checkpoint: v
                    .get("checkpoint")
                    .and_then(Value::as_str)
                    .ok_or("missing \"checkpoint\" field")?
                    .to_string(),
            }),
            Some(other) => Err(format!("unknown record state {other:?}")),
            None => Err("missing \"state\" field".into()),
        }
    }
}

/// A failure reading or writing a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// File-system failure.
    Io {
        /// The manifest path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The header or a non-tail record is malformed.
    Malformed {
        /// The manifest path involved.
        path: String,
        /// 1-based line number of the bad line.
        line: usize,
        /// What was wrong with it.
        why: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io { path, source } => write!(f, "{path}: {source}"),
            ManifestError::Malformed { path, line, why } => {
                write!(f, "{path}:{line}: malformed manifest: {why}")
            }
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io { source, .. } => Some(source),
            ManifestError::Malformed { .. } => None,
        }
    }
}

/// Heals a torn final line in an append-mode JSONL file: if the file
/// does not end in a newline (the writer died mid-append), everything
/// after the last complete line is truncated away and the truncation
/// is made durable. Shared by the sweep manifest and the daemon state
/// journal, whose crash-consistency rules are identical.
///
/// # Errors
///
/// Returns the underlying [`std::io::Error`] when the file cannot be
/// read or truncated.
pub fn truncate_torn_tail(path: &Path) -> Result<(), std::io::Error> {
    let bytes = std::fs::read(path)?;
    if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1) as u64;
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(keep)?;
        f.sync_all()?;
    }
    Ok(())
}

/// Append handle on a manifest whose header is already durable.
#[derive(Debug)]
pub struct ManifestWriter {
    path: PathBuf,
    file: File,
}

impl ManifestWriter {
    /// Creates a fresh manifest: header written to `<path>.tmp`,
    /// fsynced, then renamed into place — so a crash during creation
    /// never leaves a half-written header at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Io`] on any file-system failure.
    pub fn create(path: &Path, header: &ManifestHeader) -> Result<Self, ManifestError> {
        let io_err = |source| ManifestError::Io {
            path: path.display().to_string(),
            source,
        };
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "manifest".into())
        ));
        let mut f = File::create(&tmp).map_err(io_err)?;
        writeln!(f, "{}", header.to_json()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)?;
        Self::append_to(path)
    }

    /// Opens an existing manifest for appending (resume).
    ///
    /// A torn final line (crash mid-append) is truncated away first —
    /// [`load`] already ignores it, and truncating keeps a new record
    /// from being glued onto the partial bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Io`] when the file cannot be opened or
    /// the torn tail cannot be truncated.
    pub fn append_to(path: &Path) -> Result<Self, ManifestError> {
        let io_err = |source| ManifestError::Io {
            path: path.display().to_string(),
            source,
        };
        truncate_torn_tail(path).map_err(io_err)?;
        let file = OpenOptions::new().append(true).open(path).map_err(io_err)?;
        Ok(ManifestWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one record and makes it durable (flush + `sync_data`)
    /// before returning — after this, the job is checkpointed.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::Io`] on any write or sync failure.
    pub fn append(&mut self, record: &JobRecord) -> Result<(), ManifestError> {
        let io_err = |source| ManifestError::Io {
            path: self.path.display().to_string(),
            source,
        };
        writeln!(self.file, "{}", record.to_json()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.file.sync_data().map_err(io_err)
    }

    /// The manifest's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A successfully loaded manifest.
#[derive(Debug)]
pub struct LoadedManifest {
    /// The validated header.
    pub header: ManifestHeader,
    /// Every intact record, in file order. A torn final line (crash
    /// mid-append) is silently dropped — that job just re-runs.
    pub records: Vec<JobRecord>,
}

/// Loads and validates a manifest.
///
/// # Errors
///
/// Returns [`ManifestError`] when the file is unreadable, the header
/// is invalid, or a record *before the final line* is malformed.
pub fn load(path: &Path) -> Result<LoadedManifest, ManifestError> {
    let text = std::fs::read_to_string(path).map_err(|source| ManifestError::Io {
        path: path.display().to_string(),
        source,
    })?;
    let malformed = |line, why: String| ManifestError::Malformed {
        path: path.display().to_string(),
        line,
        why,
    };
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| malformed(1, "empty manifest".into()))?;
    let header = json::parse(header_line)
        .map_err(|e| e.to_string())
        .and_then(|v| ManifestHeader::from_json(&v))
        .map_err(|why| malformed(1, why))?;
    let mut records = Vec::new();
    let rest: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let last_idx = rest.len();
    for (n, (line_no, line)) in rest.into_iter().enumerate() {
        let parsed = json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| JobRecord::from_json(&v));
        match parsed {
            Ok(rec) => records.push(rec),
            // A bad final line is a torn append from a crash: drop it.
            Err(_) if n + 1 == last_idx => break,
            Err(why) => return Err(malformed(line_no + 1, why)),
        }
    }
    Ok(LoadedManifest { header, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snake-manifest-{}-{name}", std::process::id()))
    }

    fn sample_report() -> MechanismReport {
        MechanismReport {
            mechanism: "snake".into(),
            app: "lps".into(),
            ipc: 1.0 / 3.0,
            coverage: 0.8,
            accuracy: 0.75,
            precision: 0.9,
            l1_hit_rate: 0.7,
            reservation_fail_rate: 0.1,
            noc_utilization: 0.3,
            memory_stall_fraction: 0.5,
            energy_j: 1e-3,
            cycles: 123_456_789_012_345,
            timeliness_p50: 40,
            timeliness_p90: 90,
            evicted_unused: 3,
            stall_issued: 1.0 / 7.0,
            stall_no_warp: 0.05,
            stall_barrier: 0.1,
            stall_scoreboard: 0.05,
            stall_mem_data: 0.4,
            stall_mem_mshr: 0.15,
            stall_mem_missq: 0.08,
            stall_mem_noc: 0.02,
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let path = tmp_path("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let header = ManifestHeader {
            fingerprint: "deadbeefdeadbeef".into(),
            jobs: 2,
        };
        let completed = JobRecord::Completed {
            job: "LPS/snake".into(),
            attempts: 2,
            stop: "completed".into(),
            report: sample_report(),
        };
        let quarantined = JobRecord::Quarantined {
            job: "MUM/mta".into(),
            attempts: 3,
            error: "panic: boom".into(),
            crash: Some("signal 11".into()),
            stderr: Some("Segmentation fault".into()),
        };
        let suspended = JobRecord::Suspended {
            job: "CP/snake".into(),
            attempts: 1,
            cycle: 48_213,
            checkpoint: "sweep.CP-snake.ckpt".into(),
        };
        {
            let mut w = ManifestWriter::create(&path, &header).unwrap();
            w.append(&completed).unwrap();
            w.append(&quarantined).unwrap();
            w.append(&suspended).unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.records, vec![completed, quarantined, suspended]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_but_midfile_corruption_is_fatal() {
        let path = tmp_path("torn.jsonl");
        let header = ManifestHeader {
            fingerprint: "f".into(),
            jobs: 3,
        };
        let rec = JobRecord::Quarantined {
            job: "CP/mta".into(),
            attempts: 1,
            error: "e".into(),
            crash: None,
            stderr: None,
        };
        {
            let mut w = ManifestWriter::create(&path, &header).unwrap();
            w.append(&rec).unwrap();
        }
        // Simulate a crash mid-append: a truncated record on the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"job\":\"LPS/sn").unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records, vec![rec.clone()]);

        // The same garbage in the middle of the file is corruption.
        std::fs::write(
            &path,
            format!(
                "{}\n{{\"job\":\"LPS/sn\n{}\n",
                ManifestHeader {
                    fingerprint: "f".into(),
                    jobs: 3
                }
                .to_json(),
                rec.to_json()
            ),
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        assert!(
            matches!(err, ManifestError::Malformed { line: 2, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_heals_a_torn_tail() {
        let path = tmp_path("heal.jsonl");
        let _ = std::fs::remove_file(&path);
        let header = ManifestHeader {
            fingerprint: "f".into(),
            jobs: 2,
        };
        let first = JobRecord::Quarantined {
            job: "CP/mta".into(),
            attempts: 1,
            error: "e".into(),
            crash: None,
            stderr: None,
        };
        {
            let mut w = ManifestWriter::create(&path, &header).unwrap();
            w.append(&first).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"job\":\"LPS/sn").unwrap();
        }
        // Resuming must not glue the next record onto the torn bytes.
        let second = JobRecord::Quarantined {
            job: "LPS/snake".into(),
            attempts: 2,
            error: "panic: boom".into(),
            crash: Some("panic".into()),
            stderr: None,
        };
        {
            let mut w = ManifestWriter::append_to(&path).unwrap();
            w.append(&second).unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records, vec![first, second]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let path = tmp_path("magic.jsonl");
        std::fs::write(&path, "{\"manifest\":\"other\",\"version\":1}\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(
            &path,
            format!("{{\"manifest\":{MANIFEST_MAGIC:?},\"version\":99,\"fingerprint\":\"f\",\"jobs\":1}}\n"),
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_refuses_nothing_but_load_reports_missing_file() {
        let path = tmp_path("missing.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(load(&path).unwrap_err(), ManifestError::Io { .. }));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value for "abc" from the FNV-1a specification.
        assert_eq!(fnv1a64(b"abc"), 0xe71fa2190541574b);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }
}

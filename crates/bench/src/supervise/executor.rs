//! Process-isolated job execution: the [`JobExecutor`] abstraction
//! behind the sweep supervisor and the `snaked` scheduler.
//!
//! Two execution modes share one contract:
//!
//! - **In-thread** — the historical path: the job runs on the calling
//!   worker thread behind `catch_unwind`. Cheap, but a job that
//!   aborts, overflows its stack, segfaults, or gets OOM-killed takes
//!   the whole supervisor (and every co-tenant's jobs) down with it.
//! - **Sandbox** — the job runs in a *subprocess*: the `repro` binary
//!   re-executed in its hidden `--exec-job` worker mode. The job spec
//!   travels down a pipe as one NDJSON line (the complete harness is
//!   serialized field-by-field through `snake_core::json`, so the
//!   child reconstructs it bit-exactly), and the child streams
//!   telemetry window rows, checkpoint notices, and one terminal line
//!   back up. Per-job rlimits (address space, CPU time) are applied
//!   via a `/bin/sh` `ulimit` wrapper — the workspace is
//!   dependency-free, so no `libc` — and a supervisor-side wall-clock
//!   lease ends in `SIGKILL`.
//!
//! Child death is decoded into a typed [`CrashKind`] that flows into
//! quarantine records, the daemon journal, `snakectl status`, and the
//! retry policy. Reports are **byte-identical** across executors: the
//! harness, the report, and the stop reason all round-trip through
//! lexeme-preserving JSON. A killed child resumes from its newest
//! durable checkpoint exactly as a deadline-suspended job does, and a
//! failed `spawn` degrades gracefully to in-thread execution with a
//! sticky health flag (see [`JobExecutor::degraded`]).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use snake_core::json::{self, Value};
use snake_core::MechanismReport;
use snake_sim::snapshot::Checkpoint;
use snake_sim::{
    Brownout, CacheGeometry, EnergyModel, FaultPlan, GpuConfig, MetricsSample, Recovery,
    SchedulerPolicy, SimError, StopReason, TelemetryRecord, TelemetryRing,
};
use snake_workloads::WorkloadSize;

use super::JobSpec;
use crate::runner::{Harness, JobRun, RunOutput};

/// Environment variable overriding the worker binary the sandbox
/// re-executes (normally the `repro` binary is located automatically).
/// Pointing it at something that is not a worker is a supported chaos
/// hook: a missing path exercises the degrade-to-in-thread fallback,
/// a misbehaving one exercises [`CrashKind::ProtocolError`].
pub const WORKER_ENV: &str = "SNAKE_EXEC_WORKER";

/// Environment variable injecting crashes into sandboxed children for
/// tests and CI smokes: a comma-separated list of `<job-id>=<mode>`
/// pairs, where mode is `abort`, `oom` (address-space blowout),
/// `segv`, `kill9`, or `hang`. Read only inside the `--exec-job`
/// worker, after the job spec is parsed — the supervisor process is
/// never affected.
pub const CRASH_ENV: &str = "SNAKE_EXEC_CRASH";

/// How a sandboxed child died, decoded from its wait status and
/// captured stderr. The kind is preserved through retries into the
/// quarantine record, the manifest, the daemon journal, and
/// `snakectl status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The child panicked (Rust panic exit code 101). Panics are
    /// deterministic under the fixed seeds, so the sandbox does not
    /// retry them.
    Panic,
    /// The child was killed by the given signal (SIGABRT 6,
    /// SIGSEGV 11, SIGKILL 9, ...).
    Signal(i32),
    /// The child died failing to allocate memory: SIGABRT with the
    /// Rust allocation-failure signature on stderr — the shape an
    /// address-space rlimit produces.
    OomKilled,
    /// The child exceeded its CPU rlimit (SIGXCPU) or its
    /// supervisor-side wall-clock lease (SIGKILL from the lease
    /// monitor).
    TimedOut,
    /// The child exited without a valid terminal protocol line — a
    /// torn pipe, truncated NDJSON, or an unexpected exit code. Never
    /// mis-parsed into a report: anything short of a byte-exact
    /// terminal line lands here.
    ProtocolError,
}

/// SIGXCPU — delivered when the `ulimit -t` CPU rlimit expires.
const SIGXCPU: i32 = 24;
/// SIGABRT — `std::process::abort()` and the Rust alloc-error handler.
const SIGABRT: i32 = 6;

impl CrashKind {
    /// Stable lower-case label used in manifests, the journal, and
    /// status output (`"panic"`, `"signal 11"`, `"oom"`, `"timeout"`,
    /// `"protocol"`).
    pub fn label(&self) -> String {
        match self {
            CrashKind::Panic => "panic".into(),
            CrashKind::Signal(n) => format!("signal {n}"),
            CrashKind::OomKilled => "oom".into(),
            CrashKind::TimedOut => "timeout".into(),
            CrashKind::ProtocolError => "protocol".into(),
        }
    }

    /// Parses a [`CrashKind::label`] back; `None` for foreign strings
    /// (old manifests carry no kind at all, never a bad one).
    pub fn parse(label: &str) -> Option<CrashKind> {
        match label {
            "panic" => Some(CrashKind::Panic),
            "oom" => Some(CrashKind::OomKilled),
            "timeout" => Some(CrashKind::TimedOut),
            "protocol" => Some(CrashKind::ProtocolError),
            other => {
                let n = other.strip_prefix("signal ")?;
                n.parse().ok().map(CrashKind::Signal)
            }
        }
    }

    /// Whether the supervisor should spend retry budget on this kind.
    /// Panics are deterministic (fixed seeds) and a timeout would just
    /// burn the lease again from the same state, so neither retries;
    /// signals, OOM kills, and protocol tears may be environmental and
    /// retry into quarantine with the kind preserved.
    pub fn retryable(&self) -> bool {
        !matches!(self, CrashKind::Panic | CrashKind::TimedOut)
    }
}

impl std::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A decoded child death: the kind, a one-line description, and the
/// tail of the child's captured stderr (bounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// What killed the child.
    pub kind: CrashKind,
    /// Human-readable one-liner for the quarantine table.
    pub message: String,
    /// Last stderr excerpt (panic message, abort notice, ...), empty
    /// when the child wrote nothing.
    pub stderr: String,
}

/// Why an executor run failed — richer than [`SimError`] because a
/// sandboxed child can die in ways an in-thread run cannot.
#[derive(Debug)]
pub enum ExecError {
    /// A typed simulator error from the in-thread path (invalid
    /// configuration, unusable checkpoint). Deterministic: quarantined
    /// without retry.
    Sim(SimError),
    /// A typed error reported *by the child* over the protocol — the
    /// sandboxed twin of [`ExecError::Sim`]. Quarantined without
    /// retry.
    Typed(String),
    /// A retryable in-band failure (a deadlocked run reported by the
    /// child); handled exactly like an in-thread deadlock.
    Failure(String),
    /// The child process died; see [`CrashReport`].
    Crash(CrashReport),
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Typed(m) | ExecError::Failure(m) => f.write_str(m),
            ExecError::Crash(c) => write!(f, "{}: {}", c.kind, c.message),
        }
    }
}

/// Decodes a child wait status (plus its captured stderr and whether
/// the supervisor's lease monitor fired) into a [`CrashKind`].
///
/// Only called when the child did *not* deliver a valid terminal
/// protocol line — a clean exit without one is a protocol error by
/// definition.
pub fn decode_exit(status: &ExitStatus, stderr: &str, lease_killed: bool) -> CrashKind {
    use std::os::unix::process::ExitStatusExt;
    if lease_killed {
        return CrashKind::TimedOut;
    }
    match status.signal() {
        Some(SIGXCPU) => CrashKind::TimedOut,
        Some(SIGABRT) if is_alloc_failure(stderr) => CrashKind::OomKilled,
        Some(n) => CrashKind::Signal(n),
        None => match status.code() {
            Some(101) => CrashKind::Panic,
            _ => CrashKind::ProtocolError,
        },
    }
}

/// The Rust alloc-error handler prints
/// `memory allocation of N bytes failed` before aborting — the
/// signature that distinguishes an OOM abort from a plain abort.
fn is_alloc_failure(stderr: &str) -> bool {
    stderr.contains("memory allocation of") && stderr.contains("failed")
}

/// Resource limits for sandboxed children. `None` fields are
/// unlimited; the wall-clock lease is enforced supervisor-side with
/// `SIGKILL`, the rest via `ulimit` in the spawn wrapper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SandboxLimits {
    /// Address-space cap in MiB (`ulimit -v`).
    pub mem_mb: Option<u64>,
    /// CPU-time cap in seconds (`ulimit -t`, delivers SIGXCPU).
    pub cpu_secs: Option<u64>,
    /// Wall-clock lease per job; on expiry the child is SIGKILLed and
    /// the job either resumes from its newest checkpoint or is
    /// quarantined as [`CrashKind::TimedOut`].
    pub lease: Option<Duration>,
}

/// How a [`JobExecutor`] runs jobs.
#[derive(Debug, Clone)]
enum ExecMode {
    /// On the calling thread, behind `catch_unwind` (historical path).
    InThread,
    /// In a sandboxed subprocess with the given limits.
    Sandbox {
        limits: SandboxLimits,
        /// Worker binary override (tests); `None` resolves `repro`
        /// automatically.
        worker: Option<PathBuf>,
    },
}

/// Everything a single job run needs besides the harness: resume /
/// checkpoint paths, suspension policy, cancellation, and the live
/// telemetry ring. All optional — a plain batch run passes
/// [`ExecContext::default`].
#[derive(Default)]
pub struct ExecContext<'a> {
    /// Restore the simulator from this checkpoint before running.
    pub resume_from: Option<&'a Path>,
    /// Where checkpoints (periodic and suspension) are written.
    pub checkpoint_to: Option<&'a Path>,
    /// Suspend once the simulation reaches this cycle (test knob,
    /// `repro --suspend-after`).
    pub suspend_after: Option<u64>,
    /// Wall-clock deadline: the in-thread path suspends cooperatively,
    /// the sandbox kills the child and resumes from its newest
    /// checkpoint.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag (daemon `cancel`); the sandbox
    /// polls it and kills the child.
    pub cancel: Option<&'a AtomicBool>,
    /// Live telemetry ring for window rows (daemon `tail`/`top`).
    pub ring: Option<&'a TelemetryRing>,
    /// Also publish the full trace-event stream (in-thread only;
    /// sandboxed children stream window rows).
    pub include_events: bool,
}

/// A job execution strategy shared by a whole campaign (or daemon):
/// either the historical in-thread path or the subprocess sandbox,
/// with one sticky degradation flag across all jobs.
#[derive(Debug)]
pub struct JobExecutor {
    mode: ExecMode,
    /// Set (and never cleared) when a sandbox spawn failed and the job
    /// fell back to in-thread execution; surfaced in `repro` warnings
    /// and daemon `health`.
    degraded: AtomicBool,
}

impl JobExecutor {
    /// The historical in-thread executor.
    pub fn in_thread() -> Self {
        JobExecutor {
            mode: ExecMode::InThread,
            degraded: AtomicBool::new(false),
        }
    }

    /// A subprocess sandbox executor. The worker binary is the
    /// [`WORKER_ENV`] override if set, otherwise the `repro` binary
    /// located relative to the current executable.
    pub fn sandbox(limits: SandboxLimits) -> Self {
        let worker = std::env::var_os(WORKER_ENV).map(PathBuf::from);
        JobExecutor {
            mode: ExecMode::Sandbox { limits, worker },
            degraded: AtomicBool::new(false),
        }
    }

    /// A sandbox executor with an explicit worker binary (tests).
    pub fn sandbox_with_worker(limits: SandboxLimits, worker: PathBuf) -> Self {
        JobExecutor {
            mode: ExecMode::Sandbox {
                limits,
                worker: Some(worker),
            },
            degraded: AtomicBool::new(false),
        }
    }

    /// Whether this executor sandboxes jobs in subprocesses.
    pub fn is_sandbox(&self) -> bool {
        matches!(self.mode, ExecMode::Sandbox { .. })
    }

    /// Sticky health flag: a sandbox spawn failed at least once and
    /// execution degraded to in-thread. Never set by the in-thread
    /// executor.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Runs one job to a [`JobRun`], dispatching on the executor mode.
    /// `on_checkpoint(cycle, bytes)` fires after every durable
    /// checkpoint write (the child's writes included — the supervisor
    /// can journal them before anything else crashes).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for simulator errors (both executors) and
    /// decoded child deaths (sandbox only).
    pub fn run(
        &self,
        h: &Harness,
        job: &JobSpec,
        ctx: &ExecContext<'_>,
        on_checkpoint: &mut dyn FnMut(u64, u64),
    ) -> Result<JobRun, ExecError> {
        match &self.mode {
            ExecMode::InThread => run_in_thread(h, job, ctx, on_checkpoint),
            ExecMode::Sandbox { limits, worker } => {
                if self.degraded() {
                    return run_in_thread(h, job, ctx, on_checkpoint);
                }
                match run_sandbox(h, job, ctx, limits, worker.as_deref(), on_checkpoint) {
                    Ok(result) => result,
                    Err(spawn_err) => {
                        self.degraded.store(true, Ordering::Relaxed);
                        eprintln!(
                            "supervise: sandbox spawn failed ({spawn_err}); \
                             degrading to in-thread execution"
                        );
                        run_in_thread(h, job, ctx, on_checkpoint)
                    }
                }
            }
        }
    }
}

/// The in-thread implementation: the serviced path when live services
/// (ring/cancellation) are attached, the managed path otherwise —
/// byte-for-byte the behavior the supervisor and daemon had before
/// executors existed.
fn run_in_thread(
    h: &Harness,
    job: &JobSpec,
    ctx: &ExecContext<'_>,
    on_checkpoint: &mut dyn FnMut(u64, u64),
) -> Result<JobRun, ExecError> {
    if ctx.ring.is_some() || ctx.cancel.is_some() {
        let local_ring;
        let ring = match ctx.ring {
            Some(r) => r,
            None => {
                local_ring = TelemetryRing::new(1);
                &local_ring
            }
        };
        let local_cancel;
        let cancel = match ctx.cancel {
            Some(c) => c,
            None => {
                local_cancel = AtomicBool::new(false);
                &local_cancel
            }
        };
        h.run_job_serviced(
            job.bench,
            job.kind,
            ring,
            ctx.include_events,
            cancel,
            ctx.resume_from,
            ctx.checkpoint_to,
            ctx.deadline,
            on_checkpoint,
        )
        .map_err(ExecError::from)
    } else {
        let suspend_cycle = ctx.suspend_after;
        let deadline = ctx.deadline;
        // Poll the wall clock every 1024 cycles only; the cycle-count
        // trigger stays exact for determinism.
        h.run_job_managed(
            job.bench,
            job.kind,
            ctx.resume_from,
            ctx.checkpoint_to,
            |c| {
                suspend_cycle.is_some_and(|n| c.0 >= n)
                    || (c.0.is_multiple_of(1024) && deadline.is_some_and(|d| Instant::now() >= d))
            },
        )
        .map_err(ExecError::from)
    }
}

// ---------------------------------------------------------------------------
// Sandbox parent side
// ---------------------------------------------------------------------------

/// Locates the worker binary when no override is given: `repro` is
/// either the current executable itself, a sibling of it, or (for
/// test binaries under `target/*/deps/`) a sibling of its directory.
fn locate_worker() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    if exe.file_name().is_some_and(|n| n == "repro") {
        return Some(exe);
    }
    let dir = exe.parent()?;
    [dir.join("repro"), dir.parent()?.join("repro")]
        .into_iter()
        .find(|cand| cand.is_file())
}

/// Builds the child command: a direct `repro --exec-job` when no
/// rlimits apply, or the same behind a `/bin/sh` `ulimit` wrapper (the
/// workspace has no `libc`, so rlimits are set by the shell between
/// `fork` and `exec`). `0` means "leave unlimited" inside the script.
fn worker_command(worker: &Path, limits: &SandboxLimits) -> Command {
    if limits.mem_mb.is_none() && limits.cpu_secs.is_none() {
        let mut cmd = Command::new(worker);
        cmd.arg("--exec-job");
        return cmd;
    }
    let mut cmd = Command::new("/bin/sh");
    cmd.arg("-c")
        .arg(r#"[ "$1" -gt 0 ] && ulimit -v "$1"; [ "$2" -gt 0 ] && ulimit -t "$2"; shift 2; exec "$@""#)
        .arg("sh")
        .arg(limits.mem_mb.map_or(0, |mb| mb * 1024).to_string())
        .arg(limits.cpu_secs.unwrap_or(0).to_string())
        .arg(worker)
        .arg("--exec-job");
    cmd
}

/// Kills the child, tolerating an already-dead one and a poisoned
/// lock (a panicking sibling must not leak the process).
fn kill_child(child: &Mutex<Child>) {
    let mut guard = child.lock().unwrap_or_else(|e| e.into_inner());
    let _ = guard.kill();
}

/// Runs one job in a sandboxed subprocess. The outer `Err` is a spawn
/// failure (worker missing / fork failed) that the caller degrades on;
/// the inner result is the job's fate.
fn run_sandbox(
    h: &Harness,
    job: &JobSpec,
    ctx: &ExecContext<'_>,
    limits: &SandboxLimits,
    worker: Option<&Path>,
    on_checkpoint: &mut dyn FnMut(u64, u64),
) -> Result<Result<JobRun, ExecError>, std::io::Error> {
    let resolved;
    let worker = match worker {
        Some(w) => w,
        None => {
            resolved = locate_worker().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "no repro worker binary found")
            })?;
            &resolved
        }
    };
    // A sandboxed child writes *periodic* checkpoints so a kill loses
    // bounded work; default the cadence when the caller enabled
    // checkpointing but set none (the in-thread path only checkpoints
    // on suspension, where no cadence is needed).
    let mut spec_h = h.clone();
    if ctx.checkpoint_to.is_some() && spec_h.cfg.checkpoint_every.is_none() {
        spec_h.cfg.checkpoint_every = Some(2000);
    }
    let spec_line = worker_spec_json(
        &spec_h,
        job,
        ctx.resume_from,
        ctx.checkpoint_to,
        ctx.suspend_after,
        ctx.ring.is_some(),
    )
    .to_string();

    let mut cmd = worker_command(worker, limits);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn()?;
    // Pipe handles are taken before the child goes behind the mutex.
    let mut stdin = child.stdin.take().expect("child stdin piped");
    let stdout = child.stdout.take().expect("child stdout piped");
    let stderr = child.stderr.take().expect("child stderr piped");
    // A child that dies before reading its spec is handled by the
    // decode path below, so a broken pipe here is not fatal.
    let _ = writeln!(stdin, "{spec_line}");
    drop(stdin);

    let child = Mutex::new(child);
    let done = AtomicBool::new(false);
    let lease_killed = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let started = Instant::now();
    let lease_at = match (ctx.deadline, limits.lease.map(|d| started + d)) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };

    let mut terminal: Option<ChildLine> = None;
    let mut garbage: Option<String> = None;
    let (status, child_stderr) = std::thread::scope(|s| {
        let stderr_tail = s.spawn(move || read_bounded_tail(stderr, 8192));
        s.spawn(|| {
            // Lease / cancellation monitor: the only thing that can
            // stop a wedged child is SIGKILL from out here.
            loop {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                if ctx.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                    cancelled.store(true, Ordering::Relaxed);
                    kill_child(&child);
                    return;
                }
                if lease_at.is_some_and(|t| Instant::now() >= t) {
                    lease_killed.store(true, Ordering::Relaxed);
                    kill_child(&child);
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.is_empty() {
                continue;
            }
            match parse_child_line(&line) {
                Ok(ChildLine::Window(sample)) => {
                    if let Some(ring) = ctx.ring {
                        ring.push(|| TelemetryRecord::Window(sample));
                    }
                }
                Ok(ChildLine::Checkpoint { cycle, bytes }) => on_checkpoint(cycle, bytes),
                Ok(other) => {
                    terminal = Some(other);
                    break;
                }
                Err(why) => {
                    garbage = Some(why);
                    kill_child(&child);
                    break;
                }
            }
        }
        done.store(true, Ordering::Relaxed);
        let status = child
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wait()
            .expect("child was spawned, wait cannot fail");
        let tail = stderr_tail.join().unwrap_or_default();
        (status, tail)
    });

    Ok(resolve_child(
        job,
        ctx,
        terminal,
        garbage,
        &status,
        &child_stderr,
        lease_killed.load(Ordering::Relaxed),
        cancelled.load(Ordering::Relaxed),
    ))
}

/// Turns what the child left behind — terminal line, wait status,
/// stderr, kill flags — into the job's fate. Pure decision logic, kept
/// apart from the plumbing above.
#[allow(clippy::too_many_arguments)]
fn resolve_child(
    job: &JobSpec,
    ctx: &ExecContext<'_>,
    terminal: Option<ChildLine>,
    garbage: Option<String>,
    status: &ExitStatus,
    stderr: &str,
    lease_killed: bool,
    cancelled: bool,
) -> Result<JobRun, ExecError> {
    if cancelled {
        return Ok(JobRun::Cancelled);
    }
    if garbage.is_none() && status.success() {
        match terminal {
            Some(ChildLine::Finished { output }) => return Ok(JobRun::Finished(output)),
            Some(ChildLine::Suspended { cycle, checkpoint }) => {
                return Ok(JobRun::Suspended { cycle, checkpoint })
            }
            Some(ChildLine::Cancelled) => return Ok(JobRun::Cancelled),
            Some(ChildLine::Failed { message }) => return Err(ExecError::Failure(message)),
            Some(ChildLine::Error { message }) => return Err(ExecError::Typed(message)),
            Some(ChildLine::Window(_) | ChildLine::Checkpoint { .. }) => unreachable!(),
            None => {} // clean exit, no terminal line: protocol error
        }
    }
    let kind = match &garbage {
        Some(_) => CrashKind::ProtocolError,
        None => decode_exit(status, stderr, lease_killed),
    };
    // A lease or CPU-limit kill with a durable checkpoint is not a
    // failure: the job suspends exactly like a deadline-suspended one
    // and `--resume` finishes it bit-identically.
    if kind == CrashKind::TimedOut {
        if let Some(path) = ctx.checkpoint_to {
            if let Ok(ckpt) = Checkpoint::load(path) {
                return Ok(JobRun::Suspended {
                    cycle: ckpt.cycle().unwrap_or(0),
                    checkpoint: path.display().to_string(),
                });
            }
        }
    }
    let message = match (&kind, &garbage) {
        (CrashKind::ProtocolError, Some(why)) => format!("sandbox protocol error: {why}"),
        (CrashKind::ProtocolError, None) => {
            format!("sandbox protocol error: child exited ({status}) without a terminal line")
        }
        (CrashKind::TimedOut, _) => format!(
            "sandboxed job {} exceeded its lease with no durable checkpoint",
            job.id()
        ),
        (CrashKind::OomKilled, _) => format!("sandboxed job {} was killed by OOM", job.id()),
        (kind, _) => format!("sandboxed job {} died: {kind}", job.id()),
    };
    Err(ExecError::Crash(CrashReport {
        kind,
        message,
        stderr: stderr_excerpt(stderr),
    }))
}

/// Reads a stream to EOF keeping only the last `cap` bytes.
fn read_bounded_tail(mut from: impl Read, cap: usize) -> String {
    let mut tail: Vec<u8> = Vec::new();
    let mut buf = [0u8; 1024];
    while let Ok(n) = from.read(&mut buf) {
        if n == 0 {
            break;
        }
        tail.extend_from_slice(&buf[..n]);
        if tail.len() > cap {
            let cut = tail.len() - cap;
            tail.drain(..cut);
        }
    }
    String::from_utf8_lossy(&tail).into_owned()
}

/// Distills captured stderr into a short quarantine-table excerpt:
/// the most diagnostic line (a panic or alloc-failure message beats
/// backtrace chatter), else the last non-empty line, bounded.
fn stderr_excerpt(stderr: &str) -> String {
    let line = stderr
        .lines()
        .rev()
        .find(|l| {
            let l = l.trim();
            l.contains("panicked at") || l.contains("memory allocation of")
        })
        .or_else(|| stderr.lines().rev().find(|l| !l.trim().is_empty()))
        .unwrap_or("")
        .trim();
    let mut excerpt: String = line.chars().take(200).collect();
    if excerpt.len() < line.len() {
        excerpt.push('…');
    }
    excerpt
}

// ---------------------------------------------------------------------------
// Wire format: the job spec (parent → child)
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn opt_u64(fields: &mut Vec<(&str, Value)>, key: &'static str, v: Option<u64>) {
    if let Some(n) = v {
        fields.push((key, Value::u64(n)));
    }
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a u64"))
}

fn req_u32(v: &Value, key: &str) -> Result<u32, String> {
    req(v, key)?
        .as_u32()
        .ok_or_else(|| format!("field {key:?} is not a u32"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn req_bool(v: &Value, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    Ok(req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_string())
}

fn get_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a u64")),
    }
}

fn cache_to_json(c: &CacheGeometry) -> Value {
    obj(vec![
        ("capacity_bytes", Value::u64(c.capacity_bytes.into())),
        ("line_bytes", Value::u64(c.line_bytes.into())),
        ("ways", Value::u64(c.ways.into())),
    ])
}

fn cache_from_json(v: &Value) -> Result<CacheGeometry, String> {
    Ok(CacheGeometry {
        capacity_bytes: req_u32(v, "capacity_bytes")?,
        line_bytes: req_u32(v, "line_bytes")?,
        ways: req_u32(v, "ways")?,
    })
}

fn fault_to_json(f: &FaultPlan) -> Value {
    let mut fields = vec![
        ("seed", Value::u64(f.seed)),
        ("drop_response", Value::f64(f.drop_response)),
        ("duplicate_response", Value::f64(f.duplicate_response)),
        ("delay_response", Value::f64(f.delay_response)),
        ("delay_cycles", Value::u64(f.delay_cycles)),
    ];
    if let Some(b) = &f.brownout {
        fields.push((
            "brownout",
            obj(vec![
                ("period", Value::u64(b.period)),
                ("active", Value::u64(b.active)),
                ("scale", Value::f64(b.scale)),
            ]),
        ));
    }
    if let Some(r) = &f.recovery {
        fields.push((
            "recovery",
            obj(vec![
                ("timeout", Value::u64(r.timeout)),
                ("max_retries", Value::u64(r.max_retries.into())),
            ]),
        ));
    }
    obj(fields)
}

fn fault_from_json(v: &Value) -> Result<FaultPlan, String> {
    Ok(FaultPlan {
        seed: req_u64(v, "seed")?,
        drop_response: req_f64(v, "drop_response")?,
        duplicate_response: req_f64(v, "duplicate_response")?,
        delay_response: req_f64(v, "delay_response")?,
        delay_cycles: req_u64(v, "delay_cycles")?,
        brownout: match v.get("brownout") {
            None => None,
            Some(b) => Some(Brownout {
                period: req_u64(b, "period")?,
                active: req_u64(b, "active")?,
                scale: req_f64(b, "scale")?,
            }),
        },
        recovery: match v.get("recovery") {
            None => None,
            Some(r) => Some(Recovery {
                timeout: req_u64(r, "timeout")?,
                max_retries: req_u32(r, "max_retries")?,
            }),
        },
    })
}

/// Serializes a complete [`Harness`] — every [`GpuConfig`] field, the
/// workload size, and the energy model — with lexeme-preserving
/// numbers, so the child reconstructs it bit-exactly and its report is
/// byte-identical to an in-thread run's.
pub fn harness_to_json(h: &Harness) -> Value {
    let c = &h.cfg;
    let mut cfg = vec![
        ("num_sms", Value::u64(c.num_sms.into())),
        ("core_clock_mhz", Value::u64(c.core_clock_mhz.into())),
        ("schedulers_per_sm", Value::u64(c.schedulers_per_sm.into())),
        (
            "scheduler",
            Value::str(match c.scheduler {
                SchedulerPolicy::GreedyThenOldest => "greedy_then_oldest",
                SchedulerPolicy::LooseRoundRobin => "loose_round_robin",
            }),
        ),
        ("max_warps_per_sm", Value::u64(c.max_warps_per_sm.into())),
        ("warp_width", Value::u64(c.warp_width.into())),
        (
            "max_outstanding_loads",
            Value::u64(c.max_outstanding_loads.into()),
        ),
        ("l1", cache_to_json(&c.l1)),
        (
            "shared_mem_carveout_bytes",
            Value::u64(c.shared_mem_carveout_bytes.into()),
        ),
        ("l1_hit_latency", Value::u64(c.l1_hit_latency.into())),
        ("mshr_entries", Value::u64(c.mshr_entries.into())),
        ("mshr_merge", Value::u64(c.mshr_merge.into())),
        ("miss_queue_depth", Value::u64(c.miss_queue_depth.into())),
        ("l2", cache_to_json(&c.l2)),
        ("l2_banks", Value::u64(c.l2_banks.into())),
        ("l2_hit_latency", Value::u64(c.l2_hit_latency.into())),
        ("dram_latency", Value::u64(c.dram_latency.into())),
        (
            "dram_bytes_per_cycle",
            Value::u64(c.dram_bytes_per_cycle.into()),
        ),
        (
            "noc_bytes_per_cycle",
            Value::u64(c.noc_bytes_per_cycle.into()),
        ),
        ("noc_latency", Value::u64(c.noc_latency.into())),
        ("bw_window", Value::u64(c.bw_window.into())),
        ("fault", fault_to_json(&c.fault)),
        ("host_profile", Value::Bool(c.host_profile)),
        ("perf_inject_stall_ns", Value::u64(c.perf_inject_stall_ns)),
    ];
    opt_u64(&mut cfg, "max_cycles", c.max_cycles.map(|n| n.0));
    opt_u64(&mut cfg, "cycle_budget", c.cycle_budget.map(|n| n.0));
    opt_u64(&mut cfg, "watchdog_cycles", c.watchdog_cycles);
    opt_u64(&mut cfg, "audit_window", c.audit_window);
    opt_u64(&mut cfg, "metrics_window", c.metrics_window);
    opt_u64(&mut cfg, "checkpoint_every", c.checkpoint_every);
    let size = obj(vec![
        ("warps_per_cta", Value::u64(h.size.warps_per_cta.into())),
        ("ctas", Value::u64(h.size.ctas.into())),
        ("iters", Value::u64(h.size.iters.into())),
        ("seed", Value::u64(h.size.seed)),
    ]);
    let e = &h.energy;
    let energy = obj(vec![
        ("instr_pj", Value::f64(e.instr_pj)),
        ("l1_access_pj", Value::f64(e.l1_access_pj)),
        ("l2_access_pj", Value::f64(e.l2_access_pj)),
        ("dram_access_pj", Value::f64(e.dram_access_pj)),
        ("noc_byte_pj", Value::f64(e.noc_byte_pj)),
        ("prefetcher_access_pj", Value::f64(e.prefetcher_access_pj)),
        ("static_w_per_sm", Value::f64(e.static_w_per_sm)),
        ("prefetcher_static_w", Value::f64(e.prefetcher_static_w)),
    ]);
    obj(vec![
        (
            "cfg",
            Value::Obj(match obj(cfg) {
                Value::Obj(o) => o,
                _ => unreachable!(),
            }),
        ),
        ("size", size),
        ("energy", energy),
    ])
}

/// Reconstructs a [`Harness`] from [`harness_to_json`] output.
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn harness_from_json(v: &Value) -> Result<Harness, String> {
    let c = req(v, "cfg")?;
    let cfg = GpuConfig {
        num_sms: req_u32(c, "num_sms")?,
        core_clock_mhz: req_u32(c, "core_clock_mhz")?,
        schedulers_per_sm: req_u32(c, "schedulers_per_sm")?,
        scheduler: match req_str(c, "scheduler")?.as_str() {
            "greedy_then_oldest" => SchedulerPolicy::GreedyThenOldest,
            "loose_round_robin" => SchedulerPolicy::LooseRoundRobin,
            other => return Err(format!("unknown scheduler policy {other:?}")),
        },
        max_warps_per_sm: req_u32(c, "max_warps_per_sm")?,
        warp_width: req_u32(c, "warp_width")?,
        max_outstanding_loads: req_u32(c, "max_outstanding_loads")?,
        l1: cache_from_json(req(c, "l1")?)?,
        shared_mem_carveout_bytes: req_u32(c, "shared_mem_carveout_bytes")?,
        l1_hit_latency: req_u32(c, "l1_hit_latency")?,
        mshr_entries: req_u32(c, "mshr_entries")?,
        mshr_merge: req_u32(c, "mshr_merge")?,
        miss_queue_depth: req_u32(c, "miss_queue_depth")?,
        l2: cache_from_json(req(c, "l2")?)?,
        l2_banks: req_u32(c, "l2_banks")?,
        l2_hit_latency: req_u32(c, "l2_hit_latency")?,
        dram_latency: req_u32(c, "dram_latency")?,
        dram_bytes_per_cycle: req_u32(c, "dram_bytes_per_cycle")?,
        noc_bytes_per_cycle: req_u32(c, "noc_bytes_per_cycle")?,
        noc_latency: req_u32(c, "noc_latency")?,
        bw_window: req_u32(c, "bw_window")?,
        max_cycles: get_u64(c, "max_cycles")?.map(snake_sim::Cycle),
        cycle_budget: get_u64(c, "cycle_budget")?.map(snake_sim::Cycle),
        watchdog_cycles: get_u64(c, "watchdog_cycles")?,
        fault: fault_from_json(req(c, "fault")?)?,
        audit_window: get_u64(c, "audit_window")?,
        metrics_window: get_u64(c, "metrics_window")?,
        checkpoint_every: get_u64(c, "checkpoint_every")?,
        host_profile: req_bool(c, "host_profile")?,
        perf_inject_stall_ns: req_u64(c, "perf_inject_stall_ns")?,
    };
    let s = req(v, "size")?;
    let size = WorkloadSize {
        warps_per_cta: req_u32(s, "warps_per_cta")?,
        ctas: req_u32(s, "ctas")?,
        iters: req_u32(s, "iters")?,
        seed: req_u64(s, "seed")?,
    };
    let e = req(v, "energy")?;
    let energy = EnergyModel {
        instr_pj: req_f64(e, "instr_pj")?,
        l1_access_pj: req_f64(e, "l1_access_pj")?,
        l2_access_pj: req_f64(e, "l2_access_pj")?,
        dram_access_pj: req_f64(e, "dram_access_pj")?,
        noc_byte_pj: req_f64(e, "noc_byte_pj")?,
        prefetcher_access_pj: req_f64(e, "prefetcher_access_pj")?,
        static_w_per_sm: req_f64(e, "static_w_per_sm")?,
        prefetcher_static_w: req_f64(e, "prefetcher_static_w")?,
    };
    Ok(Harness { cfg, size, energy })
}

/// The single NDJSON spec line shipped to a worker.
fn worker_spec_json(
    h: &Harness,
    job: &JobSpec,
    resume_from: Option<&Path>,
    checkpoint_to: Option<&Path>,
    suspend_after: Option<u64>,
    stream: bool,
) -> Value {
    let mut fields = vec![
        ("v", Value::u64(1)),
        ("job", Value::str(job.id())),
        ("harness", harness_to_json(h)),
        ("stream", Value::Bool(stream)),
    ];
    if let Some(p) = resume_from {
        fields.push(("resume", Value::str(p.display().to_string())));
    }
    if let Some(p) = checkpoint_to {
        fields.push(("checkpoint", Value::str(p.display().to_string())));
    }
    opt_u64(&mut fields, "suspend_after", suspend_after);
    obj(fields)
}

/// A parsed worker spec line (child side).
struct WorkerSpec {
    h: Harness,
    job: JobSpec,
    resume_from: Option<PathBuf>,
    checkpoint_to: Option<PathBuf>,
    suspend_after: Option<u64>,
    stream: bool,
}

fn parse_job_id(id: &str) -> Result<JobSpec, String> {
    let (bench, kind) = id
        .split_once('/')
        .ok_or_else(|| format!("malformed job id {id:?}"))?;
    Ok(JobSpec {
        bench: bench.parse().map_err(|e| format!("{e:?}"))?,
        kind: kind.parse().map_err(|e| format!("{e:?}"))?,
    })
}

fn parse_worker_spec(line: &str) -> Result<WorkerSpec, String> {
    let v = json::parse(line).map_err(|e| format!("malformed spec line: {e}"))?;
    if req_u64(&v, "v")? != 1 {
        return Err("unsupported spec version".into());
    }
    let opt_path = |key: &str| -> Result<Option<PathBuf>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(p) => {
                Ok(Some(PathBuf::from(p.as_str().ok_or_else(|| {
                    format!("field {key:?} is not a string")
                })?)))
            }
        }
    };
    Ok(WorkerSpec {
        h: harness_from_json(req(&v, "harness")?)?,
        job: parse_job_id(&req_str(&v, "job")?)?,
        resume_from: opt_path("resume")?,
        checkpoint_to: opt_path("checkpoint")?,
        suspend_after: get_u64(&v, "suspend_after")?,
        stream: req_bool(&v, "stream")?,
    })
}

// ---------------------------------------------------------------------------
// Wire format: the child's NDJSON stream (child → parent)
// ---------------------------------------------------------------------------

/// One line of the child's NDJSON stream. Telemetry (`Window`,
/// `Checkpoint`) may repeat; everything else is terminal.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildLine {
    /// A closed metrics window, republished into the parent's ring.
    Window(MetricsSample),
    /// A durable periodic checkpoint was written.
    Checkpoint {
        /// Cycle the state was captured at.
        cycle: u64,
        /// Size of the artifact in bytes.
        bytes: u64,
    },
    /// The run finished; carries the bit-exact report, stop reason,
    /// and optional host profile.
    Finished {
        /// The reconstructed run output.
        output: Box<RunOutput>,
    },
    /// The run suspended to a checkpoint (cooperative `suspend_after`).
    Suspended {
        /// Cycle the simulation was suspended at.
        cycle: u64,
        /// Path of the checkpoint artifact.
        checkpoint: String,
    },
    /// The run was cancelled before completion.
    Cancelled,
    /// A retryable in-band failure (deadlock).
    Failed {
        /// The failure description, quarantine-table ready.
        message: String,
    },
    /// A typed simulator error (invalid config, bad checkpoint);
    /// quarantined without retry, like an in-thread [`SimError`].
    Error {
        /// The error description.
        message: String,
    },
}

fn sample_to_json(s: &MetricsSample) -> Value {
    obj(vec![
        ("t", Value::str("window")),
        ("cycle", Value::u64(s.cycle)),
        ("ipc", Value::f64(s.ipc)),
        ("l1_hit_rate", Value::f64(s.l1_hit_rate)),
        ("mshr_occupancy", Value::f64(s.mshr_occupancy)),
        ("miss_queue_occupancy", Value::f64(s.miss_queue_occupancy)),
        ("noc_utilization", Value::f64(s.noc_utilization)),
        ("active_warps", Value::u64(s.active_warps as u64)),
        ("throttled_sms", Value::u64(s.throttled_sms as u64)),
        ("chain_depth", Value::u64(s.chain_depth.into())),
        ("stall_issued", Value::f64(s.stall_issued)),
        ("stall_no_warp", Value::f64(s.stall_no_warp)),
        ("stall_barrier", Value::f64(s.stall_barrier)),
        ("stall_scoreboard", Value::f64(s.stall_scoreboard)),
        ("stall_mem_data", Value::f64(s.stall_mem_data)),
        ("stall_mem_mshr", Value::f64(s.stall_mem_mshr)),
        ("stall_mem_missq", Value::f64(s.stall_mem_missq)),
        ("stall_mem_noc", Value::f64(s.stall_mem_noc)),
    ])
}

fn sample_from_json(v: &Value) -> Result<MetricsSample, String> {
    Ok(MetricsSample {
        cycle: req_u64(v, "cycle")?,
        ipc: req_f64(v, "ipc")?,
        l1_hit_rate: req_f64(v, "l1_hit_rate")?,
        mshr_occupancy: req_f64(v, "mshr_occupancy")?,
        miss_queue_occupancy: req_f64(v, "miss_queue_occupancy")?,
        noc_utilization: req_f64(v, "noc_utilization")?,
        active_warps: req_u64(v, "active_warps")? as usize,
        throttled_sms: req_u64(v, "throttled_sms")? as usize,
        chain_depth: req_u32(v, "chain_depth")?,
        stall_issued: req_f64(v, "stall_issued")?,
        stall_no_warp: req_f64(v, "stall_no_warp")?,
        stall_barrier: req_f64(v, "stall_barrier")?,
        stall_scoreboard: req_f64(v, "stall_scoreboard")?,
        stall_mem_data: req_f64(v, "stall_mem_data")?,
        stall_mem_mshr: req_f64(v, "stall_mem_mshr")?,
        stall_mem_missq: req_f64(v, "stall_mem_missq")?,
        stall_mem_noc: req_f64(v, "stall_mem_noc")?,
    })
}

fn finished_to_json(out: &RunOutput) -> Value {
    let mut fields = vec![
        ("t", Value::str("finished")),
        ("stop", Value::str(out.stop.label())),
    ];
    if let StopReason::BudgetExceeded { budget } = out.stop {
        fields.push(("budget", Value::u64(budget)));
    }
    fields.push(("report", out.report.to_json()));
    if let Some(host) = &out.host {
        fields.push(("host", crate::perfstat::profile_to_json(host)));
    }
    obj(fields)
}

fn stop_from_json(v: &Value) -> Result<StopReason, String> {
    match req_str(v, "stop")?.as_str() {
        "completed" => Ok(StopReason::Completed),
        "cycle_limit" => Ok(StopReason::CycleLimit),
        "budget_exceeded" => Ok(StopReason::BudgetExceeded {
            budget: req_u64(v, "budget")?,
        }),
        other => Err(format!("unexpected stop reason {other:?} on the wire")),
    }
}

/// Parses one line of a child's NDJSON stream. Strict by design: any
/// torn, truncated, or foreign line is an error (never a mis-parsed
/// report) — the property the `exec` proptests pin down.
///
/// # Errors
///
/// Returns a description of what made the line unusable.
pub fn parse_child_line(line: &str) -> Result<ChildLine, String> {
    let v = json::parse(line).map_err(|e| format!("unparseable child line: {e}"))?;
    match req_str(&v, "t")?.as_str() {
        "window" => Ok(ChildLine::Window(sample_from_json(&v)?)),
        "checkpoint" => Ok(ChildLine::Checkpoint {
            cycle: req_u64(&v, "cycle")?,
            bytes: req_u64(&v, "bytes")?,
        }),
        "finished" => {
            let report = MechanismReport::from_json(req(&v, "report")?)?;
            let host = match v.get("host") {
                None => None,
                Some(h) => Some(
                    crate::perfstat::profile_from_json(h)
                        .map_err(|e| format!("bad host profile: {e}"))?,
                ),
            };
            Ok(ChildLine::Finished {
                output: Box::new(RunOutput {
                    report,
                    stop: stop_from_json(&v)?,
                    host,
                }),
            })
        }
        "suspended" => Ok(ChildLine::Suspended {
            cycle: req_u64(&v, "cycle")?,
            checkpoint: req_str(&v, "checkpoint")?,
        }),
        "cancelled" => Ok(ChildLine::Cancelled),
        "failed" => Ok(ChildLine::Failed {
            message: req_str(&v, "message")?,
        }),
        "error" => Ok(ChildLine::Error {
            message: req_str(&v, "message")?,
        }),
        other => Err(format!("unknown child line type {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Worker (child) side
// ---------------------------------------------------------------------------

fn emit(v: &Value) {
    let line = v.to_string();
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Fires an injected crash when [`CRASH_ENV`] names this job — the
/// test hook behind the CI isolation smoke and the chaos trials.
fn maybe_injected_crash(job_id: &str) {
    let Ok(plan) = std::env::var(CRASH_ENV) else {
        return;
    };
    for pair in plan.split(',') {
        let Some((id, mode)) = pair.split_once('=') else {
            continue;
        };
        if id != job_id {
            continue;
        }
        match mode {
            "abort" => std::process::abort(),
            "oom" => {
                // Address-space blowout: with an rlimit this fails the
                // allocation (Rust aborts with the alloc-failure
                // signature); without one the size is absurd enough to
                // fail anyway.
                let blowout = vec![0xABu8; 1usize << 40];
                std::hint::black_box(&blowout);
            }
            "segv" => unsafe {
                std::ptr::null_mut::<u8>().write_volatile(1);
            },
            "kill9" => {
                let _ = Command::new("kill")
                    .args(["-9", &std::process::id().to_string()])
                    .status();
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            "hang" => loop {
                std::thread::sleep(Duration::from_millis(50));
            },
            other => eprintln!("exec-job: unknown injected crash mode {other:?}"),
        }
    }
}

/// The `--exec-job` worker: reads one spec line from stdin, runs the
/// job, streams telemetry/checkpoint lines, and ends with one terminal
/// line. Returns the process exit code (0 even for in-band failures —
/// those travel as protocol lines; 2 only for an unusable spec).
pub fn run_worker() -> i32 {
    let mut line = String::new();
    if std::io::stdin().lock().read_line(&mut line).is_err() {
        eprintln!("exec-job: failed to read the spec line");
        return 2;
    }
    let spec = match parse_worker_spec(line.trim()) {
        Ok(spec) => spec,
        Err(why) => {
            eprintln!("exec-job: {why}");
            return 2;
        }
    };
    maybe_injected_crash(&spec.job.id());

    let ring = TelemetryRing::new(4096);
    let drain = spec.stream.then(|| {
        let mut sub = ring.subscribe();
        std::thread::spawn(move || loop {
            let d = sub.drain();
            for rec in d.records {
                if let TelemetryRecord::Window(sample) = rec {
                    emit(&sample_to_json(&sample));
                }
            }
            if d.done {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        })
    });

    let cancel = AtomicBool::new(false);
    let result = if let Some(n) = spec.suspend_after {
        spec.h.run_job_managed(
            spec.job.bench,
            spec.job.kind,
            spec.resume_from.as_deref(),
            spec.checkpoint_to.as_deref(),
            |c| c.0 >= n,
        )
    } else {
        spec.h.run_job_serviced(
            spec.job.bench,
            spec.job.kind,
            &ring,
            false,
            &cancel,
            spec.resume_from.as_deref(),
            spec.checkpoint_to.as_deref(),
            None,
            |cycle, bytes| {
                emit(&obj(vec![
                    ("t", Value::str("checkpoint")),
                    ("cycle", Value::u64(cycle)),
                    ("bytes", Value::u64(bytes)),
                ]));
            },
        )
    };
    ring.close();
    if let Some(handle) = drain {
        let _ = handle.join();
    }
    match result {
        Ok(JobRun::Finished(out)) => match &out.stop {
            StopReason::Deadlock(report) => emit(&obj(vec![
                ("t", Value::str("failed")),
                ("message", Value::str(format!("deadlock: {report}"))),
            ])),
            _ => emit(&finished_to_json(&out)),
        },
        Ok(JobRun::Suspended { cycle, checkpoint }) => emit(&obj(vec![
            ("t", Value::str("suspended")),
            ("cycle", Value::u64(cycle)),
            ("checkpoint", Value::str(checkpoint)),
        ])),
        Ok(JobRun::Cancelled) => emit(&obj(vec![("t", Value::str("cancelled"))])),
        Err(err) => emit(&obj(vec![
            ("t", Value::str("error")),
            ("message", Value::str(err.to_string())),
        ])),
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::process::ExitStatusExt;

    fn sig(n: i32) -> ExitStatus {
        ExitStatus::from_raw(n)
    }

    fn code(c: i32) -> ExitStatus {
        ExitStatus::from_raw(c << 8)
    }

    #[test]
    fn exit_statuses_decode_to_typed_crash_kinds() {
        assert_eq!(decode_exit(&code(101), "", false), CrashKind::Panic);
        assert_eq!(decode_exit(&sig(11), "", false), CrashKind::Signal(11));
        assert_eq!(decode_exit(&sig(9), "", false), CrashKind::Signal(9));
        assert_eq!(decode_exit(&sig(6), "", false), CrashKind::Signal(6));
        assert_eq!(
            decode_exit(
                &sig(6),
                "memory allocation of 1099511627776 bytes failed",
                false
            ),
            CrashKind::OomKilled
        );
        assert_eq!(
            decode_exit(&sig(24), "", false),
            CrashKind::TimedOut,
            "SIGXCPU"
        );
        assert_eq!(
            decode_exit(&sig(9), "", true),
            CrashKind::TimedOut,
            "lease kill"
        );
        assert_eq!(decode_exit(&code(0), "", false), CrashKind::ProtocolError);
        assert_eq!(decode_exit(&code(2), "", false), CrashKind::ProtocolError);
    }

    #[test]
    fn crash_kind_labels_round_trip() {
        for kind in [
            CrashKind::Panic,
            CrashKind::Signal(11),
            CrashKind::Signal(6),
            CrashKind::OomKilled,
            CrashKind::TimedOut,
            CrashKind::ProtocolError,
        ] {
            assert_eq!(CrashKind::parse(&kind.label()), Some(kind));
        }
        assert_eq!(CrashKind::parse("weird"), None);
        assert_eq!(CrashKind::parse("signal x"), None);
    }

    #[test]
    fn retry_policy_by_kind() {
        assert!(!CrashKind::Panic.retryable());
        assert!(!CrashKind::TimedOut.retryable());
        assert!(CrashKind::Signal(11).retryable());
        assert!(CrashKind::OomKilled.retryable());
        assert!(CrashKind::ProtocolError.retryable());
    }

    #[test]
    fn harness_round_trips_bit_exactly() {
        let mut h = Harness::quick();
        h.cfg.cycle_budget = Some(snake_sim::Cycle(123_456));
        h.cfg.metrics_window = Some(500);
        h.cfg.checkpoint_every = Some(2000);
        h.cfg.fault = FaultPlan {
            seed: 0xC4A05,
            drop_response: 0.002,
            duplicate_response: 0.005,
            delay_response: 0.05,
            delay_cycles: 200,
            brownout: Some(Brownout {
                period: 2000,
                active: 250,
                scale: 0.5,
            }),
            recovery: Some(Recovery {
                timeout: 500,
                max_retries: 4,
            }),
        };
        h.cfg.host_profile = true;
        let doc = harness_to_json(&h).to_string();
        let back = harness_from_json(&json::parse(&doc).expect("parses")).expect("round-trips");
        assert_eq!(back.cfg, h.cfg);
        assert_eq!(back.size, h.size);
        assert_eq!(doc, harness_to_json(&back).to_string(), "bytes are stable");
    }

    #[test]
    fn spec_round_trips_including_paths() {
        let h = Harness::quick();
        let job = JobSpec {
            bench: snake_workloads::Benchmark::Lps,
            kind: snake_core::PrefetcherKind::Snake,
        };
        let doc = worker_spec_json(
            &h,
            &job,
            Some(Path::new("/tmp/a.ckpt")),
            Some(Path::new("/tmp/b.ckpt")),
            Some(300),
            true,
        )
        .to_string();
        let spec = parse_worker_spec(&doc).expect("parses");
        assert_eq!(spec.job, job);
        assert_eq!(spec.resume_from.as_deref(), Some(Path::new("/tmp/a.ckpt")));
        assert_eq!(
            spec.checkpoint_to.as_deref(),
            Some(Path::new("/tmp/b.ckpt"))
        );
        assert_eq!(spec.suspend_after, Some(300));
        assert!(spec.stream);
    }

    #[test]
    fn child_lines_round_trip_and_tears_are_rejected() {
        let sample = MetricsSample {
            cycle: 500,
            ipc: 1.25,
            l1_hit_rate: 0.5,
            mshr_occupancy: 0.25,
            miss_queue_occupancy: 0.0,
            noc_utilization: 0.75,
            active_warps: 8,
            throttled_sms: 1,
            chain_depth: 3,
            stall_issued: 0.5,
            stall_no_warp: 0.0,
            stall_barrier: 0.125,
            stall_scoreboard: 0.125,
            stall_mem_data: 0.25,
            stall_mem_mshr: 0.0,
            stall_mem_missq: 0.0,
            stall_mem_noc: 0.0,
        };
        let line = sample_to_json(&sample).to_string();
        assert_eq!(parse_child_line(&line), Ok(ChildLine::Window(sample)));
        // Every strict prefix of a valid line is rejected, never
        // mis-parsed.
        for cut in 0..line.len() {
            assert!(
                parse_child_line(&line[..cut]).is_err(),
                "prefix of length {cut} must not parse"
            );
        }
        assert!(parse_child_line(r#"{"t":"mystery"}"#).is_err());
        assert!(parse_child_line("").is_err());
    }

    #[test]
    fn lease_kill_message_and_stderr_excerpt() {
        assert_eq!(stderr_excerpt(""), "");
        assert_eq!(
            stderr_excerpt("first\npanicked at 'boom'\n\n"),
            "panicked at 'boom'"
        );
        let long = "x".repeat(400);
        assert!(stderr_excerpt(&long).len() < 220);
    }
}

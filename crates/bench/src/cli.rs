//! Shared command-line error handling for the bench binaries.
//!
//! Every binary funnels fatal conditions through [`CliError`] so a bad
//! argument, a rejected configuration, or an unwritable output file
//! produces a one-line diagnostic plus the usage string and a nonzero
//! exit code — never a panic backtrace.

/// Exit code for a checkpoint that cannot be restored: wrong schema
/// version, wrong config fingerprint, or a torn/corrupt file. Distinct
/// from the usage code (2) so scripts can tell "bad invocation" from
/// "this checkpoint does not belong to this run".
pub const EXIT_CHECKPOINT_MISMATCH: i32 = 6;

/// A fatal error in a bench binary.
#[derive(Debug)]
pub enum CliError {
    /// A positional argument or flag operand failed to parse.
    BadArg {
        /// What the argument selects ("benchmark", "mechanism", ...).
        what: &'static str,
        /// The parse failure, including the offending value.
        why: String,
    },
    /// The simulator rejected the configuration.
    Config(snake_sim::ConfigError),
    /// A checkpoint could not be loaded or restored (schema version,
    /// config fingerprint, torn file). Exits
    /// [`EXIT_CHECKPOINT_MISMATCH`].
    Checkpoint(snake_sim::snapshot::SnapshotError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The command line itself is malformed (missing operand, unknown
    /// flag, no experiments selected...).
    Usage(String),
    /// An internal precondition failed; indicates a bug in the binary,
    /// not in the invocation.
    Internal(String),
}

impl CliError {
    /// Convenience constructor for file I/O failures.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this error calls for: checkpoint
    /// mismatches get their own code so `--restore` failures are
    /// distinguishable from usage errors.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Checkpoint(_) => EXIT_CHECKPOINT_MISMATCH,
            _ => 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::BadArg { what, why } => write!(f, "bad {what}: {why}"),
            CliError::Config(e) => write!(f, "invalid configuration: {e}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Config(e) => Some(e),
            CliError::Checkpoint(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<snake_sim::ConfigError> for CliError {
    fn from(e: snake_sim::ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<snake_sim::snapshot::SnapshotError> for CliError {
    fn from(e: snake_sim::snapshot::SnapshotError) -> Self {
        CliError::Checkpoint(e)
    }
}

impl From<snake_sim::SimError> for CliError {
    fn from(e: snake_sim::SimError) -> Self {
        match e {
            snake_sim::SimError::Config(c) => CliError::Config(c),
            snake_sim::SimError::Snapshot(s) => CliError::Checkpoint(s),
            // `SimError` is non_exhaustive; future variants still
            // deserve a diagnostic rather than a panic.
            other => CliError::Internal(other.to_string()),
        }
    }
}

/// Prints `err` to stderr and exits with the error's code: usage-style
/// errors (status 2) also get the binary's usage string; checkpoint
/// mismatches exit [`EXIT_CHECKPOINT_MISMATCH`] without the usage
/// noise — the invocation was fine, the artifact was not.
pub fn fail(program: &str, err: &CliError, usage: &str) -> ! {
    eprintln!("{program}: {err}");
    let code = err.exit_code();
    if code == 2 {
        eprintln!("{usage}");
    }
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_argument_and_value() {
        let e = CliError::BadArg {
            what: "benchmark",
            why: "unknown benchmark: \"nope\"".into(),
        };
        assert_eq!(e.to_string(), "bad benchmark: unknown benchmark: \"nope\"");
    }

    #[test]
    fn checkpoint_errors_get_the_distinct_exit_code() {
        let e = CliError::from(snake_sim::snapshot::SnapshotError::SchemaMismatch { found: 2 });
        assert_eq!(e.exit_code(), EXIT_CHECKPOINT_MISMATCH);
        assert!(e.to_string().starts_with("checkpoint: "), "{e}");
        assert!(std::error::Error::source(&e).is_some());
        let usage = CliError::Usage("missing operand".into());
        assert_eq!(usage.exit_code(), 2);
    }

    #[test]
    fn sim_snapshot_errors_map_to_checkpoint_not_internal() {
        let sim = snake_sim::SimError::from(snake_sim::snapshot::SnapshotError::malformed(
            "truncated checkpoint",
        ));
        assert!(matches!(CliError::from(sim), CliError::Checkpoint(_)));
    }

    #[test]
    fn io_errors_carry_the_path_and_source() {
        let e = CliError::io(
            "/no/such/dir/out.md",
            std::io::Error::new(std::io::ErrorKind::NotFound, "not found"),
        );
        let text = e.to_string();
        assert!(text.contains("/no/such/dir/out.md"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

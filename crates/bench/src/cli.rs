//! Shared command-line error handling for the bench binaries.
//!
//! Every binary funnels fatal conditions through [`CliError`] so a bad
//! argument, a rejected configuration, or an unwritable output file
//! produces a one-line diagnostic plus the usage string and a nonzero
//! exit code — never a panic backtrace.

/// A fatal error in a bench binary.
#[derive(Debug)]
pub enum CliError {
    /// A positional argument or flag operand failed to parse.
    BadArg {
        /// What the argument selects ("benchmark", "mechanism", ...).
        what: &'static str,
        /// The parse failure, including the offending value.
        why: String,
    },
    /// The simulator rejected the configuration.
    Config(snake_sim::ConfigError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The command line itself is malformed (missing operand, unknown
    /// flag, no experiments selected...).
    Usage(String),
    /// An internal precondition failed; indicates a bug in the binary,
    /// not in the invocation.
    Internal(String),
}

impl CliError {
    /// Convenience constructor for file I/O failures.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            source,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::BadArg { what, why } => write!(f, "bad {what}: {why}"),
            CliError::Config(e) => write!(f, "invalid configuration: {e}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Config(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<snake_sim::ConfigError> for CliError {
    fn from(e: snake_sim::ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<snake_sim::SimError> for CliError {
    fn from(e: snake_sim::SimError) -> Self {
        match e {
            snake_sim::SimError::Config(c) => CliError::Config(c),
            // `SimError` is non_exhaustive; future variants still
            // deserve a diagnostic rather than a panic.
            other => CliError::Internal(other.to_string()),
        }
    }
}

/// Prints `err` and the binary's usage string to stderr, then exits
/// with status 2 (the conventional usage-error code).
pub fn fail(program: &str, err: &CliError, usage: &str) -> ! {
    eprintln!("{program}: {err}");
    eprintln!("{usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_argument_and_value() {
        let e = CliError::BadArg {
            what: "benchmark",
            why: "unknown benchmark: \"nope\"".into(),
        };
        assert_eq!(e.to_string(), "bad benchmark: unknown benchmark: \"nope\"");
    }

    #[test]
    fn io_errors_carry_the_path_and_source() {
        let e = CliError::io(
            "/no/such/dir/out.md",
            std::io::Error::new(std::io::ErrorKind::NotFound, "not found"),
        );
        let text = e.to_string();
        assert!(text.contains("/no/such/dir/out.md"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

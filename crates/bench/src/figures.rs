//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns a [`Table`] whose notes carry the
//! paper-reported numbers, so `repro <figure>` prints paper-vs-measured
//! side by side. `repro --all` writes the full set into
//! `EXPERIMENTS.md` format.

use std::collections::HashMap;

use snake_core::analysis::{analyze_chains, ideal_bound, mechanism_bound, ChainAnalysisConfig};
use snake_core::cost::{head_table_cost, snake_storage_bytes, tail_table_cost, FieldWidths};
use snake_core::metrics::{geometric_mean, mean, MechanismReport};
use snake_core::snake::tail_table::{EvictionPolicy, TailTableConfig};
use snake_core::snake::{Snake, SnakeConfig};
use snake_core::PrefetcherKind;
use snake_sim::SimError;
use snake_workloads::{tiled, Benchmark};

use crate::report::{pct, ratio, Table};
use crate::runner::Harness;

/// All timing-simulated mechanism/application results, computed once
/// and shared by Figs 16–19 and 25.
#[derive(Debug)]
pub struct EvalMatrix {
    reports: HashMap<(Benchmark, PrefetcherKind), MechanismReport>,
}

impl EvalMatrix {
    /// Runs every `(application, mechanism)` pair, in parallel across
    /// OS threads.
    ///
    /// The harness configuration is validated once up front, so the
    /// per-pair workers cannot hit a configuration error mid-flight.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics after *all* workers have drained if any pair's
    /// evaluation panicked, naming every failed `benchmark/mechanism`
    /// pair — one bad benchmark no longer aborts the whole matrix with
    /// an anonymous `Any` payload.
    pub fn collect(h: &Harness, kinds: &[PrefetcherKind]) -> Result<Self, SimError> {
        h.validate()?;
        Ok(Self::collect_with(kinds, |b, k| {
            // Unreachable after validate(); a failure here panics and
            // is caught + named by the worker drain below.
            h.run(b, k).expect("configuration validated above")
        }))
    }

    fn collect_with(
        kinds: &[PrefetcherKind],
        runner: impl Fn(Benchmark, PrefetcherKind) -> MechanismReport + Sync,
    ) -> Self {
        let pairs: Vec<(Benchmark, PrefetcherKind)> = Benchmark::all()
            .iter()
            .flat_map(|&b| kinds.iter().map(move |&k| (b, k)))
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(pairs.len().max(1));
        let chunk = pairs.len().div_ceil(threads);
        let mut reports = HashMap::with_capacity(pairs.len());
        let mut failures: Vec<String> = Vec::new();
        let runner = &runner;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in pairs.chunks(chunk) {
                handles.push((
                    part,
                    scope.spawn(move || {
                        part.iter()
                            .map(|&(b, k)| {
                                let r =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        runner(b, k)
                                    }));
                                ((b, k), r)
                            })
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            for (part, handle) in handles {
                match handle.join() {
                    Ok(results) => {
                        for ((b, k), r) in results {
                            match r {
                                Ok(report) => {
                                    reports.insert((b, k), report);
                                }
                                Err(payload) => failures
                                    .push(format!("{b}/{k}: {}", panic_message(payload.as_ref()))),
                            }
                        }
                    }
                    // catch_unwind above makes this unreachable in
                    // practice; cover it so a worker dying some other
                    // way still names its pairs.
                    Err(payload) => {
                        let names: Vec<String> =
                            part.iter().map(|(b, k)| format!("{b}/{k}")).collect();
                        failures.push(format!(
                            "worker for [{}] died: {}",
                            names.join(", "),
                            panic_message(payload.as_ref())
                        ));
                    }
                }
            }
        });
        assert!(
            failures.is_empty(),
            "eval worker(s) panicked:\n  {}",
            failures.join("\n  ")
        );
        EvalMatrix { reports }
    }

    /// The report for one pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the collected set.
    pub fn get(&self, b: Benchmark, k: PrefetcherKind) -> &MechanismReport {
        self.reports
            .get(&(b, k))
            .unwrap_or_else(|| panic!("missing report for {b}/{k}"))
    }

    fn has(&self, b: Benchmark, k: PrefetcherKind) -> bool {
        self.reports.contains_key(&(b, k))
    }
}

/// Best-effort text of a worker's panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The mechanisms shown in Figs 16–18 (baseline excluded from the
/// coverage/accuracy plots but needed as the speedup denominator).
pub fn figure_mechanisms() -> Vec<PrefetcherKind> {
    PrefetcherKind::all().to_vec()
}

// ───────────────────────────── tables ─────────────────────────────

/// Table 1 — baseline GPU configuration (paper values + the scaled
/// substitute actually simulated).
pub fn table1_config(h: &Harness) -> Table {
    let paper = snake_sim::GpuConfig::volta_v100();
    let ours = &h.cfg;
    let mut t = Table::new(
        "Table 1 — Baseline GPU configuration (paper V100 vs scaled substrate)",
        vec![
            "parameter".into(),
            "paper (V100)".into(),
            "simulated".into(),
        ],
    );
    let rows: Vec<(&str, String, String)> = vec![
        ("SMs", paper.num_sms.to_string(), ours.num_sms.to_string()),
        (
            "schedulers/SM (GTO)",
            paper.schedulers_per_sm.to_string(),
            ours.schedulers_per_sm.to_string(),
        ),
        (
            "warps/SM",
            paper.max_warps_per_sm.to_string(),
            ours.max_warps_per_sm.to_string(),
        ),
        (
            "unified L1",
            format!(
                "{} KiB, {}-way, {} B lines",
                paper.l1.capacity_bytes / 1024,
                paper.l1.ways,
                paper.l1.line_bytes
            ),
            format!(
                "{} KiB, {}-way, {} B lines",
                ours.l1.capacity_bytes / 1024,
                ours.l1.ways,
                ours.l1.line_bytes
            ),
        ),
        (
            "MSHR",
            format!(
                "{} entries, {} merges",
                paper.mshr_entries, paper.mshr_merge
            ),
            format!("{} entries, {} merges", ours.mshr_entries, ours.mshr_merge),
        ),
        (
            "L2",
            format!(
                "{} KiB agg., {} banks",
                paper.l2.capacity_bytes / 1024,
                paper.l2_banks
            ),
            format!(
                "{} KiB agg., {} banks",
                ours.l2.capacity_bytes / 1024,
                ours.l2_banks
            ),
        ),
        (
            "L1 hit / L2 / +DRAM latency",
            format!(
                "{} / {} / {} cy",
                paper.l1_hit_latency, paper.l2_hit_latency, paper.dram_latency
            ),
            format!(
                "{} / {} / {} cy",
                ours.l1_hit_latency, ours.l2_hit_latency, ours.dram_latency
            ),
        ),
        (
            "NoC bytes/cycle/direction",
            paper.noc_bytes_per_cycle.to_string(),
            ours.noc_bytes_per_cycle.to_string(),
        ),
        (
            "DRAM bytes/cycle",
            paper.dram_bytes_per_cycle.to_string(),
            ours.dram_bytes_per_cycle.to_string(),
        ),
    ];
    for (p, a, b) in rows {
        t.push_row(vec![p.into(), a, b]);
    }
    t.note("The scaled substrate keeps the V100's per-warp L1 capacity (2 KiB/warp) and latency profile; see DESIGN.md.");
    t
}

/// Table 2 — benchmark suites.
pub fn table2_benchmarks() -> Table {
    let mut t = Table::new(
        "Table 2 — Benchmark suites",
        vec!["abbr".into(), "application".into(), "suite".into()],
    );
    for &b in Benchmark::all() {
        t.push_row(vec![
            b.abbr().into(),
            b.full_name().into(),
            b.suite().into(),
        ]);
    }
    t.note("All eleven applications from the paper's Table 2, rebuilt as synthetic trace generators (see snake-workloads).");
    t
}

/// Table 3 — Snake's table parameters and storage.
pub fn table3_cost() -> Table {
    let w = FieldWidths::default();
    let head = head_table_cost(&w, 32);
    let tail = tail_table_cost(&w, 10);
    let mut t = Table::new(
        "Table 3 — Snake's tables parameters",
        vec![
            "table".into(),
            "bytes/entry".into(),
            "entries".into(),
            "total".into(),
            "paper".into(),
        ],
    );
    t.push_row(vec![
        "Head".into(),
        head.bytes_per_entry().to_string(),
        head.entries.to_string(),
        format!("{} B", head.total_bytes),
        "14 B x 32 = 448 B".into(),
    ]);
    t.push_row(vec![
        "Tail".into(),
        tail.bytes_per_entry().to_string(),
        tail.entries.to_string(),
        format!("{} B", tail.total_bytes),
        "32 B x 10 = 320 B".into(),
    ]);
    t.note("Field widths in snake_core::cost reproduce the paper's byte counts exactly.");
    t
}

// ─────────────────────── motivation figures ───────────────────────

/// Fig 3 — reservation fails as a share of all L1 accesses (baseline).
pub fn fig03_reservation_fails(m: &EvalMatrix) -> Table {
    baseline_metric_table(
        m,
        "Fig 3 — Reservation-fail share of L1 accesses (baseline)",
        "reservation fails",
        |r| r.reservation_fail_rate,
        "paper: ~30% on average, dominated by miss-queue congestion",
    )
}

/// Fig 4 — interconnect bandwidth utilization (baseline).
pub fn fig04_noc_utilization(m: &EvalMatrix) -> Table {
    baseline_metric_table(
        m,
        "Fig 4 — Interconnect bandwidth utilization (baseline)",
        "NoC utilization",
        |r| r.noc_utilization,
        "paper: ~33% of theoretical L1<->L2 bandwidth",
    )
}

/// Fig 5 — memory-stall share of all-stall cycles (baseline).
pub fn fig05_memory_stalls(m: &EvalMatrix) -> Table {
    baseline_metric_table(
        m,
        "Fig 5 — Memory-stall share of stall cycles (baseline)",
        "memory stalls",
        |r| r.memory_stall_fraction,
        "paper: ~55% of run-time stalls are memory stalls",
    )
}

/// Fig 5 companion — the exact issue-slot breakdown behind the
/// two-bucket stall share: where every scheduler cycle went, per app
/// (baseline). Columns sum to 100% by construction (audit-enforced in
/// the simulator).
pub fn fig05_stall_breakdown(m: &EvalMatrix) -> Table {
    let mut t = Table::new(
        "Fig 5 (breakdown) — Issue-slot taxonomy, baseline (% of scheduler cycles)",
        [
            "app", "issued", "no-warp", "barrier", "scoreb", "mem-data", "mshr", "missq", "noc",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut sums = [0.0f64; 8];
    for &b in Benchmark::all() {
        let r = m.get(b, PrefetcherKind::Baseline);
        let cols = [
            r.stall_issued,
            r.stall_no_warp,
            r.stall_barrier,
            r.stall_scoreboard,
            r.stall_mem_data,
            r.stall_mem_mshr,
            r.stall_mem_missq,
            r.stall_mem_noc,
        ];
        for (i, v) in cols.iter().enumerate() {
            sums[i] += v;
        }
        t.push_row(
            std::iter::once(b.abbr().to_string())
                .chain(cols.iter().map(|&v| pct(v)))
                .collect(),
        );
    }
    let n = Benchmark::all().len() as f64;
    t.push_row(
        std::iter::once("MEAN".to_string())
            .chain(sums.iter().map(|s| pct(s / n)))
            .collect(),
    );
    t.note("MECE per-cycle accounting: the eight columns partition scheduler cycles exactly");
    t
}

fn baseline_metric_table(
    m: &EvalMatrix,
    title: &str,
    col: &str,
    f: impl Fn(&MechanismReport) -> f64,
    note: &str,
) -> Table {
    let mut t = Table::new(title, vec!["app".into(), col.into()]);
    let mut vals = Vec::new();
    for &b in Benchmark::all() {
        let v = f(m.get(b, PrefetcherKind::Baseline));
        vals.push(v);
        t.push_row(vec![b.abbr().into(), pct(v)]);
    }
    t.push_row(vec!["MEAN".into(), pct(mean(&vals))]);
    t.note(note);
    t
}

/// Fig 6 — coverage upper bounds of prior mechanisms vs the Ideal
/// prefetcher (trace analysis under infinite storage / zero latency).
pub fn fig06_coverage_vs_ideal(h: &Harness) -> Table {
    let mut t = Table::new(
        "Fig 6 — Coverage of Intra/Inter/MTA/CTA vs Ideal (trace bounds)",
        ["app", "intra", "inter", "mta", "cta", "ideal"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut sums = [0.0f64; 5];
    for &b in Benchmark::all() {
        let k = b.build(&h.size);
        let r = snake_core::analysis::predictability(&k);
        for (i, v) in [r.intra, r.inter, r.mta, r.cta, r.ideal].iter().enumerate() {
            sums[i] += v;
        }
        t.push_row(vec![
            b.abbr().into(),
            pct(r.intra),
            pct(r.inter),
            pct(r.mta),
            pct(r.cta),
            pct(r.ideal),
        ]);
    }
    let n = Benchmark::all().len() as f64;
    t.push_row(
        std::iter::once("MEAN".to_string())
            .chain(sums.iter().map(|s| pct(s / n)))
            .collect(),
    );
    t.note("paper: Ideal is ~25% above MTA and ~70% above CTA-aware");
    t
}

/// Fig 9 — load PCs participating in chains, per representative warp.
pub fn fig09_chain_pcs(h: &Harness) -> Table {
    let mut t = Table::new(
        "Fig 9 — Load PCs in chains / all load PCs (representative warp)",
        vec!["app".into(), "PCs in chains".into()],
    );
    let cfg = ChainAnalysisConfig::default();
    let mut vals = Vec::new();
    for &b in Benchmark::all() {
        let r = analyze_chains(&b.build(&h.size), &cfg);
        vals.push(r.pc_fraction_in_chains);
        t.push_row(vec![b.abbr().into(), pct(r.pc_fraction_in_chains)]);
    }
    t.push_row(vec!["MEAN".into(), pct(mean(&vals))]);
    t.note("paper: chains cover ~65% of the PCs on average");
    t
}

/// Fig 10 — maximum chain repetition within the representative warp.
pub fn fig10_chain_repetition(h: &Harness) -> Table {
    let mut t = Table::new(
        "Fig 10 — Maximum chain repetitions per representative warp",
        vec!["app".into(), "max repetitions".into()],
    );
    let cfg = ChainAnalysisConfig::default();
    let mut vals = Vec::new();
    for &b in Benchmark::all() {
        let r = analyze_chains(&b.build(&h.size), &cfg);
        vals.push(f64::from(r.max_repetition));
        t.push_row(vec![b.abbr().into(), r.max_repetition.to_string()]);
    }
    t.push_row(vec!["MEAN".into(), format!("{:.1}", mean(&vals))]);
    t.note("paper: chains repeat ~35x per warp on average (scales with workload size)");
    t
}

/// Fig 11 — chain-prefetchable accesses vs MTA (trace bounds).
pub fn fig11_chain_vs_mta(h: &Harness) -> Table {
    let mut t = Table::new(
        "Fig 11 — Accesses prefetchable via chains vs MTA (trace bounds)",
        vec!["app".into(), "chains".into(), "mta".into()],
    );
    let (mut sc, mut sm) = (Vec::new(), Vec::new());
    for &b in Benchmark::all() {
        let k = b.build(&h.size);
        let chains = mechanism_bound(&k, PrefetcherKind::SSnake).fraction();
        let mta = mechanism_bound(&k, PrefetcherKind::Mta).fraction();
        let _ = ideal_bound(&k);
        sc.push(chains);
        sm.push(mta);
        t.push_row(vec![b.abbr().into(), pct(chains), pct(mta)]);
    }
    t.push_row(vec!["MEAN".into(), pct(mean(&sc)), pct(mean(&sm))]);
    t.note("paper: chains reach ~70% on memory-bound apps; chains add opportunities MTA misses");
    t
}

// ─────────────────────── evaluation figures ───────────────────────

fn mechanism_rows(
    m: &EvalMatrix,
    title: &str,
    f: impl Fn(&MechanismReport, &MechanismReport) -> f64,
    fmt: impl Fn(f64) -> String,
    summary_geo: bool,
    note: &str,
) -> Table {
    let kinds: Vec<PrefetcherKind> = figure_mechanisms()
        .into_iter()
        .filter(|k| *k != PrefetcherKind::Baseline)
        .collect();
    let mut headers = vec!["app".to_string()];
    headers.extend(kinds.iter().map(|k| k.name().to_string()));
    let mut t = Table::new(title, headers);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for &b in Benchmark::all() {
        let base = m.get(b, PrefetcherKind::Baseline);
        let mut row = vec![b.abbr().to_string()];
        for (i, &k) in kinds.iter().enumerate() {
            let v = f(m.get(b, k), base);
            cols[i].push(v);
            row.push(fmt(v));
        }
        t.push_row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for col in &cols {
        let v = if summary_geo {
            geometric_mean(col)
        } else {
            mean(col)
        };
        mean_row.push(fmt(v));
    }
    t.push_row(mean_row);
    t.note(note);
    t
}

/// Fig 16 — prefetch coverage of all mechanisms.
pub fn fig16_coverage(m: &EvalMatrix) -> Table {
    mechanism_rows(
        m,
        "Fig 16 — Prefetch coverage (correctly predicted / all demand)",
        |r, _| r.coverage,
        pct,
        false,
        "paper: Snake ~80%, ~15% above MTA; nw low due to low repetition",
    )
}

/// Fig 17 — prefetch accuracy (timely coverage).
pub fn fig17_accuracy(m: &EvalMatrix) -> Table {
    mechanism_rows(
        m,
        "Fig 17 — Prefetch accuracy (timely correctly predicted / all demand)",
        |r, _| r.accuracy,
        pct,
        false,
        "paper: Snake ~75% timely; throttling trades ~2% coverage for ~20% accuracy",
    )
}

/// Fig 18 — IPC improvement over the baseline.
pub fn fig18_performance(m: &EvalMatrix) -> Table {
    mechanism_rows(
        m,
        "Fig 18 — Speedup over baseline (IPC ratio)",
        |r, base| r.speedup_over(base),
        ratio,
        true,
        "paper: Snake +17% avg (up to +60%); Snake beats Snake-DT by ~13% and Snake-T by ~7%",
    )
}

/// Fig 19 — energy consumption normalized to baseline.
pub fn fig19_energy(m: &EvalMatrix) -> Table {
    mechanism_rows(
        m,
        "Fig 19 — Energy vs baseline (lower is better)",
        |r, base| r.energy_vs(base),
        ratio,
        true,
        "paper: Snake uses ~17% less energy on average",
    )
}

/// Fig 25 — L1 hit rate for baseline / Snake / Isolated-Snake.
pub fn fig25_hit_rate(m: &EvalMatrix) -> Table {
    let mut t = Table::new(
        "Fig 25 — L1 data cache hit rate",
        vec![
            "app".into(),
            "baseline".into(),
            "snake".into(),
            "isolated-snake".into(),
        ],
    );
    let (mut b0, mut b1, mut b2) = (Vec::new(), Vec::new(), Vec::new());
    for &b in Benchmark::all() {
        let base = m.get(b, PrefetcherKind::Baseline).l1_hit_rate;
        let snake = m.get(b, PrefetcherKind::Snake).l1_hit_rate;
        let iso = if m.has(b, PrefetcherKind::IsolatedSnake) {
            m.get(b, PrefetcherKind::IsolatedSnake).l1_hit_rate
        } else {
            snake
        };
        b0.push(base);
        b1.push(snake);
        b2.push(iso);
        t.push_row(vec![b.abbr().into(), pct(base), pct(snake), pct(iso)]);
    }
    t.push_row(vec![
        "MEAN".into(),
        pct(mean(&b0)),
        pct(mean(&b1)),
        pct(mean(&b2)),
    ]);
    t.note("paper: 45% baseline / 79% Snake / 84% Isolated-Snake — Snake within 5% of a dedicated buffer");
    t
}

// ─────────────────────── sensitivity figures ───────────────────────

/// The Tail-table entry counts swept in Figs 20–22.
pub const ENTRY_SWEEP: [usize; 5] = [2, 5, 10, 20, 1024];

fn snake_with_tail(h: &Harness, entries: usize, eviction: EvictionPolicy) -> SnakeConfig {
    SnakeConfig {
        tail: TailTableConfig {
            entries,
            eviction,
            ..Default::default()
        },
        head_warps: h.cfg.max_warps_per_sm,
        ..SnakeConfig::snake()
    }
}

fn entry_sweep_table(
    h: &Harness,
    title: &str,
    eviction: EvictionPolicy,
    note: &str,
) -> Result<Table, SimError> {
    let mut headers = vec!["app".to_string()];
    headers.extend(ENTRY_SWEEP.iter().map(|e| {
        if *e >= 1024 {
            "unbounded".to_string()
        } else {
            format!("{e} entries")
        }
    }));
    let mut t = Table::new(title, headers);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ENTRY_SWEEP.len()];
    for &b in Benchmark::all() {
        let kernel = b.build(&h.size);
        let mut row = vec![b.abbr().to_string()];
        for (i, &entries) in ENTRY_SWEEP.iter().enumerate() {
            let cfg = snake_with_tail(h, entries, eviction);
            let r = h.run_custom(&kernel, "snake-sweep", |_| Box::new(Snake::new(cfg)))?;
            cols[i].push(r.coverage);
            row.push(pct(r.coverage));
        }
        t.push_row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for col in &cols {
        mean_row.push(pct(mean(col)));
    }
    t.push_row(mean_row);
    t.note(note);
    Ok(t)
}

/// Fig 20 — Tail-table entry-count sweep (main eviction policy).
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn fig20_tail_entries(h: &Harness) -> Result<Table, SimError> {
    entry_sweep_table(
        h,
        "Fig 20 — Coverage vs Tail-table entries (LRU+popcount eviction)",
        EvictionPolicy::LruThenPopcount,
        "paper: only ~8% coverage loss at 10 entries vs unbounded",
    )
}

/// Fig 21 — hardware cost vs Tail-table entries.
pub fn fig21_hw_cost() -> Table {
    let w = FieldWidths::default();
    let mut t = Table::new(
        "Fig 21 — Snake storage per SM vs Tail-table entries",
        vec!["tail entries".into(), "total bytes".into()],
    );
    for &e in &ENTRY_SWEEP {
        if e >= 1024 {
            continue;
        }
        t.push_row(vec![
            e.to_string(),
            snake_storage_bytes(&w, 32, e as u32).to_string(),
        ]);
    }
    t.note("Head table fixed at 448 B; Tail table 32 B/entry (Table 3 widths)");
    t
}

/// Fig 22 — eviction-policy ablation (popcount-only).
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn fig22_eviction_policy(h: &Harness) -> Result<Table, SimError> {
    entry_sweep_table(
        h,
        "Fig 22 — Coverage vs Tail-table entries (popcount-only eviction)",
        EvictionPolicy::PopcountOnly,
        "paper: LRU+popcount (Fig 20) achieves higher coverage than popcount-only at equal capacity",
    )
}

/// The throttle pause intervals swept in Fig 23.
pub const THROTTLE_SWEEP: [u64; 6] = [0, 10, 25, 50, 100, 200];

/// Fig 23 — accuracy/coverage trade-off across throttle intervals.
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn fig23_throttling(h: &Harness) -> Result<Table, SimError> {
    let mut t = Table::new(
        "Fig 23 — Throttle-interval sweep (mean over all apps)",
        vec![
            "pause (cycles)".into(),
            "coverage".into(),
            "accuracy".into(),
            "precision".into(),
        ],
    );
    for &pause in &THROTTLE_SWEEP {
        let (mut cov, mut acc, mut prec) = (Vec::new(), Vec::new(), Vec::new());
        for &b in Benchmark::all() {
            let kernel = b.build(&h.size);
            let mut cfg = SnakeConfig {
                head_warps: h.cfg.max_warps_per_sm,
                ..SnakeConfig::snake()
            };
            cfg.throttle.pause_cycles = pause;
            cfg.throttle.enabled = pause > 0;
            let r = h.run_custom(&kernel, "snake-throttle", |_| Box::new(Snake::new(cfg)))?;
            cov.push(r.coverage);
            acc.push(r.accuracy);
            prec.push(r.precision);
        }
        t.push_row(vec![
            pause.to_string(),
            pct(mean(&cov)),
            pct(mean(&acc)),
            pct(mean(&prec)),
        ]);
    }
    t.note("paper: 50 cycles gives ~75% accuracy at only ~2% coverage loss; longer pauses trade coverage for accuracy");
    Ok(t)
}

/// The tile sizes swept in Fig 24, as a percent of the unified cache.
pub const TILE_SWEEP: [u32; 4] = [25, 50, 75, 100];

/// Fig 24 — tiling with and without Snake (IPC and energy vs the
/// untiled, unprefetched baseline).
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn fig24_tiling(h: &Harness) -> Result<Table, SimError> {
    let mut t = Table::new(
        "Fig 24 — Tiled convolution: IPC and energy vs untiled baseline",
        vec![
            "tile size".into(),
            "tiled IPC".into(),
            "snake+tiled IPC".into(),
            "tiled energy".into(),
            "snake+tiled energy".into(),
        ],
    );
    let untiled = tiled::trace(&h.size, 0);
    let base = h.run_kernel(&untiled, PrefetcherKind::Baseline)?;
    for &frac in &TILE_SWEEP {
        let tile_bytes = u64::from(h.cfg.l1_usable_bytes()) * u64::from(frac) / 100;
        let tile_bytes = (tile_bytes / 128).max(1) * 128;
        let kernel = tiled::trace(&h.size, tile_bytes);
        let tiled_r = h.run_kernel(&kernel, PrefetcherKind::Baseline)?;
        let snake_r = h.run_kernel(&kernel, PrefetcherKind::Snake)?;
        t.push_row(vec![
            format!("{frac}%"),
            ratio(tiled_r.speedup_over(&base)),
            ratio(snake_r.speedup_over(&base)),
            ratio(tiled_r.energy_vs(&base)),
            ratio(snake_r.energy_vs(&base)),
        ]);
    }
    t.note("paper: best at 75% tile size; Snake+Tiled beats Tiled except at 100% where Snake stays throttled");
    Ok(t)
}

// ─────────────────── extension experiments ───────────────────
//
// Not figures from the paper's evaluation, but direct tests of two of
// its design claims (§5.5 Head-table doubling, GTO sensitivity) and of
// the §1 multi-application extension.

/// Extra A — Head-table layout sensitivity (§5.5's "doubling the warp
/// ID and base address columns" under a greedy scheduler).
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn extra_head_layout(h: &Harness) -> Result<Table, SimError> {
    use snake_core::snake::head_table::HeadLayout;
    let mut t = Table::new(
        "Extra A — Snake coverage vs Head-table layout (GTO scheduler)",
        vec![
            "app".into(),
            "per-warp (ideal)".into(),
            "paired doubled (paper)".into(),
            "paired single".into(),
        ],
    );
    let layouts = [
        HeadLayout::PerWarp,
        HeadLayout::PairedDoubled,
        HeadLayout::PairedSingle,
    ];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); layouts.len()];
    for &b in Benchmark::all() {
        let kernel = b.build(&h.size);
        let mut row = vec![b.abbr().to_string()];
        for (i, &layout) in layouts.iter().enumerate() {
            let cfg = SnakeConfig {
                head_warps: h.cfg.max_warps_per_sm,
                head_layout: layout,
                ..SnakeConfig::snake()
            };
            let r = h.run_custom(&kernel, "snake-layout", |_| Box::new(Snake::new(cfg)))?;
            cols[i].push(r.coverage);
            row.push(pct(r.coverage));
        }
        t.push_row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for col in &cols {
        mean_row.push(pct(mean(col)));
    }
    t.push_row(mean_row);
    t.note("paper claim (§5.5): doubled columns keep the paired layout near the ideal; a single column loses history under GTO");
    Ok(t)
}

/// Extra B — scheduler sensitivity: Snake under GTO vs loose
/// round-robin.
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn extra_scheduler(h: &Harness) -> Result<Table, SimError> {
    use snake_sim::SchedulerPolicy;
    let mut t = Table::new(
        "Extra B — Snake speedup under GTO vs loose round-robin",
        vec!["app".into(), "GTO speedup".into(), "LRR speedup".into()],
    );
    for &b in Benchmark::all() {
        let mut row = vec![b.abbr().to_string()];
        for policy in [
            SchedulerPolicy::GreedyThenOldest,
            SchedulerPolicy::LooseRoundRobin,
        ] {
            let mut harness = h.clone();
            harness.cfg.scheduler = policy;
            let base = harness.run(b, PrefetcherKind::Baseline)?;
            let snake = harness.run(b, PrefetcherKind::Snake)?;
            row.push(ratio(snake.speedup_over(&base)));
        }
        t.push_row(row);
    }
    t.note(
        "the paper's baseline is GTO (Table 1); Snake's tables are scheduler-agnostic by design",
    );
    Ok(t)
}

/// Extra C — the §1 multi-application extension: co-located kernels
/// with per-application chain detection vs an untagged shared table.
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn extra_multi_app(h: &Harness) -> Result<Table, SimError> {
    use snake_workloads::multi::{colocate, PcSpace};
    let mut t = Table::new(
        "Extra C — Multi-application co-location (Snake coverage)",
        vec![
            "pair".into(),
            "per-app chains (extension)".into(),
            "shared PCs (untagged)".into(),
        ],
    );
    let pairs = [
        (Benchmark::Lps, Benchmark::Mrq),
        (Benchmark::Hotspot, Benchmark::Lib),
        (Benchmark::Cp, Benchmark::Srad),
    ];
    for (a, b) in pairs {
        let ka = a.build(&h.size);
        let kb = b.build(&h.size);
        let tagged = h.run_kernel(&colocate(&ka, &kb, PcSpace::PerApp), PrefetcherKind::Snake)?;
        let shared = h.run_kernel(&colocate(&ka, &kb, PcSpace::Shared), PrefetcherKind::Snake)?;
        t.push_row(vec![
            format!("{}+{}", a.abbr(), b.abbr()),
            pct(tagged.coverage),
            pct(shared.coverage),
        ]);
    }
    t.note("paper §1: chains must be \"detected within each application\"; aliasing two apps' load PCs onto one table degrades the chains");
    Ok(t)
}

/// Runs every table and figure, in paper order.
///
/// # Errors
///
/// Returns [`SimError`] when the harness configuration is invalid.
pub fn all(h: &Harness) -> Result<Vec<Table>, SimError> {
    let mut kinds = figure_mechanisms();
    kinds.push(PrefetcherKind::IsolatedSnake);
    let m = EvalMatrix::collect(h, &kinds)?;
    Ok(vec![
        table1_config(h),
        table2_benchmarks(),
        table3_cost(),
        fig03_reservation_fails(&m),
        fig04_noc_utilization(&m),
        fig05_memory_stalls(&m),
        fig05_stall_breakdown(&m),
        fig06_coverage_vs_ideal(h),
        fig09_chain_pcs(h),
        fig10_chain_repetition(h),
        fig11_chain_vs_mta(h),
        fig16_coverage(&m),
        fig17_accuracy(&m),
        fig18_performance(&m),
        fig19_energy(&m),
        fig20_tail_entries(h)?,
        fig21_hw_cost(),
        fig22_eviction_policy(h)?,
        fig23_throttling(h)?,
        fig24_tiling(h)?,
        fig25_hit_rate(&m),
        extra_head_layout(h)?,
        extra_scheduler(h)?,
        extra_multi_app(h)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Harness {
        Harness::quick()
    }

    #[test]
    fn matrix_collects_all_pairs() {
        let h = quick();
        let kinds = [PrefetcherKind::Baseline, PrefetcherKind::Snake];
        let m = EvalMatrix::collect(&h, &kinds).unwrap();
        for &b in Benchmark::all() {
            assert!(m.get(b, PrefetcherKind::Baseline).ipc > 0.0);
            assert!(m.get(b, PrefetcherKind::Snake).ipc > 0.0);
        }
    }

    #[test]
    fn analysis_figures_have_a_row_per_app_plus_mean() {
        let h = quick();
        let expected = Benchmark::all().len() + 1;
        assert_eq!(fig09_chain_pcs(&h).rows.len(), expected);
        assert_eq!(fig10_chain_repetition(&h).rows.len(), expected);
        assert_eq!(fig06_coverage_vs_ideal(&h).rows.len(), expected);
        assert_eq!(fig11_chain_vs_mta(&h).rows.len(), expected);
    }

    #[test]
    fn cost_figure_is_static_and_exact() {
        let t = fig21_hw_cost();
        assert_eq!(t.rows.len(), 4);
        // 10 entries: 448 + 320 bytes.
        assert!(t.rows.iter().any(|r| r[0] == "10" && r[1] == "768"));
    }

    #[test]
    fn table3_matches_paper() {
        let t = table3_cost();
        assert!(t.rows[0].contains(&"448 B".to_string()));
        assert!(t.rows[1].contains(&"320 B".to_string()));
    }

    #[test]
    fn panicking_worker_is_named_and_the_rest_drain() {
        let h = quick();
        let kinds = [PrefetcherKind::Baseline];
        let ran = std::sync::Mutex::new(Vec::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            EvalMatrix::collect_with(&kinds, |b, k| {
                if b == Benchmark::Mum {
                    panic!("synthetic failure");
                }
                let r = h.run(b, k).unwrap();
                ran.lock().unwrap().push(b);
                r
            })
        }));
        let payload = outcome.expect_err("the failed pair must surface");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains(&format!("{}/{}", Benchmark::Mum, PrefetcherKind::Baseline)),
            "failure must name the pair: {msg}"
        );
        assert!(msg.contains("synthetic failure"), "{msg}");
        // Every other pair still produced a report before the abort.
        assert_eq!(ran.lock().unwrap().len(), Benchmark::all().len() - 1);
    }

    #[test]
    fn invalid_harness_is_rejected_before_dispatch() {
        let mut h = quick();
        h.cfg.mshr_entries = 0;
        assert!(EvalMatrix::collect(&h, &[PrefetcherKind::Baseline]).is_err());
    }

    #[test]
    fn baseline_figures_render() {
        let h = quick();
        let kinds = [PrefetcherKind::Baseline];
        let m = EvalMatrix::collect(&h, &kinds).unwrap();
        let t = fig03_reservation_fails(&m);
        assert_eq!(t.rows.len(), Benchmark::all().len() + 1);
        assert!(t.to_string().contains("MEAN"));
        let _ = fig04_noc_utilization(&m);
        let _ = fig05_memory_stalls(&m);
        // The breakdown's eight columns partition scheduler cycles, so
        // every row of the stacked figure sums to ~100%.
        let t = fig05_stall_breakdown(&m);
        assert_eq!(t.rows.len(), Benchmark::all().len() + 1);
        for row in &t.rows {
            let total: f64 = row[1..]
                .iter()
                .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!(
                (total - 100.0).abs() < 0.5,
                "row {:?} sums to {total}",
                row[0]
            );
        }
    }
}

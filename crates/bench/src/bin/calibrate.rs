//! Calibration dump: baseline memory-wall symptoms and Snake's
//! headline metrics for every application, side by side with the
//! paper's targets. Used while tuning workload generators and
//! simulator parameters; kept as a diagnostic.

use snake_bench::report::{pct, ratio, Table};
use snake_bench::Harness;
use snake_core::metrics::{geometric_mean, mean};
use snake_core::PrefetcherKind;
use snake_workloads::Benchmark;

fn main() {
    let h = if std::env::args().any(|a| a == "--quick") {
        Harness::quick()
    } else {
        Harness::standard()
    };
    let mut t = Table::new(
        "Calibration — baseline symptoms & Snake headline",
        [
            "app", "rfail", "noc", "memstall", "hit", "ipc", "s.cov", "s.acc", "s.prec", "s.hit",
            "speedup", "energy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    let (mut rf, mut noc, mut ms, mut cov, mut acc) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    if let Err(e) = h.validate() {
        eprintln!("calibrate: {e}");
        std::process::exit(2);
    }
    for &b in Benchmark::all() {
        let (base, snake) = match (
            h.run(b, PrefetcherKind::Baseline),
            h.run(b, PrefetcherKind::Snake),
        ) {
            (Ok(base), Ok(snake)) => (base, snake),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("calibrate: {b}: {e}");
                std::process::exit(2);
            }
        };
        speedups.push(snake.speedup_over(&base));
        energies.push(snake.energy_vs(&base));
        rf.push(base.reservation_fail_rate);
        noc.push(base.noc_utilization);
        ms.push(base.memory_stall_fraction);
        cov.push(snake.coverage);
        acc.push(snake.accuracy);
        t.push_row(vec![
            b.abbr().into(),
            pct(base.reservation_fail_rate),
            pct(base.noc_utilization),
            pct(base.memory_stall_fraction),
            pct(base.l1_hit_rate),
            ratio(base.ipc),
            pct(snake.coverage),
            pct(snake.accuracy),
            pct(snake.precision),
            pct(snake.l1_hit_rate),
            ratio(snake.speedup_over(&base)),
            ratio(snake.energy_vs(&base)),
        ]);
    }
    t.push_row(vec![
        "MEAN".into(),
        pct(mean(&rf)),
        pct(mean(&noc)),
        pct(mean(&ms)),
        String::new(),
        String::new(),
        pct(mean(&cov)),
        pct(mean(&acc)),
        String::new(),
        String::new(),
        ratio(geometric_mean(&speedups)),
        ratio(geometric_mean(&energies)),
    ]);
    t.note("paper targets: rfail ~30%, noc ~33%, memstall ~55%, snake cov ~80%, acc ~75%, speedup ~1.17, energy ~0.83");
    println!("{t}");
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list              list experiment ids
//! repro fig16 fig18         run specific experiments
//! repro --all               run everything (paper order)
//! repro --all --markdown    emit EXPERIMENTS.md-ready markdown
//! repro --quick ...         use the fast test harness
//! ```

use std::io::Write;

use snake_bench::figures::{self, EvalMatrix};
use snake_bench::report::Table;
use snake_bench::Harness;
use snake_core::PrefetcherKind;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "fig03", "fig04", "fig05", "fig06", "fig09", "fig10", "fig11",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
    "xhead", "xsched", "xmulti",
];

fn usage() -> ! {
    eprintln!("usage: repro [--quick] [--markdown] [--out FILE] (--list | --all | <experiment>...)");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut markdown = false;
    let mut all = false;
    let mut list = false;
    let mut out_file: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--all" => all = true,
            "--list" => list = true,
            "--out" => out_file = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if list {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return;
    }
    if !all && wanted.is_empty() {
        usage();
    }
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            eprintln!("unknown experiment: {w}");
            usage();
        }
    }

    let h = if quick { Harness::quick() } else { Harness::standard() };
    let tables = if all {
        figures::all(&h)
    } else {
        run_selected(&h, &wanted)
    };

    let mut rendered = String::new();
    for t in &tables {
        if markdown {
            rendered.push_str(&t.to_markdown());
            rendered.push('\n');
        } else {
            rendered.push_str(&t.to_string());
            rendered.push('\n');
        }
    }
    match out_file {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(rendered.as_bytes()).expect("write output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}

fn run_selected(h: &Harness, wanted: &[String]) -> Vec<Table> {
    // The timing matrix is only collected if a figure needs it.
    let needs_matrix = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "fig03" | "fig04" | "fig05" | "fig16" | "fig17" | "fig18" | "fig19" | "fig25"
        )
    });
    let matrix = needs_matrix.then(|| {
        let mut kinds = figures::figure_mechanisms();
        kinds.push(PrefetcherKind::IsolatedSnake);
        EvalMatrix::collect(h, &kinds)
    });
    let m = matrix.as_ref();
    wanted
        .iter()
        .map(|w| match w.as_str() {
            "table1" => figures::table1_config(h),
            "table2" => figures::table2_benchmarks(),
            "table3" => figures::table3_cost(),
            "fig03" => figures::fig03_reservation_fails(m.expect("matrix")),
            "fig04" => figures::fig04_noc_utilization(m.expect("matrix")),
            "fig05" => figures::fig05_memory_stalls(m.expect("matrix")),
            "fig06" => figures::fig06_coverage_vs_ideal(h),
            "fig09" => figures::fig09_chain_pcs(h),
            "fig10" => figures::fig10_chain_repetition(h),
            "fig11" => figures::fig11_chain_vs_mta(h),
            "fig16" => figures::fig16_coverage(m.expect("matrix")),
            "fig17" => figures::fig17_accuracy(m.expect("matrix")),
            "fig18" => figures::fig18_performance(m.expect("matrix")),
            "fig19" => figures::fig19_energy(m.expect("matrix")),
            "fig20" => figures::fig20_tail_entries(h),
            "fig21" => figures::fig21_hw_cost(),
            "fig22" => figures::fig22_eviction_policy(h),
            "fig23" => figures::fig23_throttling(h),
            "fig24" => figures::fig24_tiling(h),
            "fig25" => figures::fig25_hit_rate(m.expect("matrix")),
            "xhead" => figures::extra_head_layout(h),
            "xsched" => figures::extra_scheduler(h),
            "xmulti" => figures::extra_multi_app(h),
            _ => unreachable!("validated above"),
        })
        .collect()
}

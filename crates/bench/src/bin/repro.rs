//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list              list experiment ids
//! repro fig16 fig18         run specific experiments
//! repro --all               run everything (paper order)
//! repro --all --markdown    emit EXPERIMENTS.md-ready markdown
//! repro --quick ...         use the fast test harness
//! repro --sweep --manifest sweep.jsonl     supervised, checkpointed sweep
//! repro --resume sweep.jsonl               finish an interrupted sweep
//! ```
//!
//! Sweep exit codes: 0 all jobs completed, 3 at least one job
//! quarantined (healthy rows still rendered), 4 interrupted with jobs
//! pending (resume from the manifest).

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use snake_bench::cli::{self, CliError};
use snake_bench::figures::{self, EvalMatrix};
use snake_bench::perfstat::{self, CompareConfig, PerfReport};
use snake_bench::report::Table;
use snake_bench::supervise::{self, SweepConfig, SweepError};
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::{Brownout, Cycle, FaultPlan, Gpu, Recovery};
use snake_workloads::Benchmark;

/// Window width (cycles) for the `--metrics-csv` time series.
const METRICS_WINDOW: u64 = 500;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "fig03", "fig04", "fig05", "fig06", "fig09", "fig10", "fig11",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
    "xhead", "xsched", "xmulti",
];

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--markdown] [--out FILE] [--metrics-csv FILE] (--list | --all | <experiment>...)\n       repro --sweep [SWEEP FLAGS]   supervised sweep over (benchmark, mechanism) jobs\n       repro --resume FILE           finish an interrupted sweep from its manifest\n       repro --perf [PERF FLAGS]     host-side perf measurement (BENCH_<label>.json)\n       repro --profile [PERF FLAGS]  one profiled pass, per-phase wall-time tables\n  --metrics-csv FILE  run lps under snake with windowed metrics and write the time series\nsweep flags:\n  --manifest FILE     checkpoint each finished job into FILE (must not pre-exist)\n  --benchmarks A,B    job benchmarks (abbr; default: all)\n  --mechanisms X,Y    job mechanisms (default: all)\n  --budget N          per-job cycle budget (jobs stop with budget_exceeded)\n  --retries N         attempts per job before quarantine (default 3)\n  --deadline-ms N     wall-clock budget for the whole sweep\n  --stop-after N      stop claiming jobs after N started (deterministic interrupt; exit 4)\n  --suspend-after N   checkpoint and requeue any job reaching cycle N (exit 4; resume restores)\n  --chaos             inject the canned fault plan (drops/delays/brownouts + recovery)\n  --progress          repaint a live progress line on stderr (done/total, retries, quarantines, elapsed)\nisolation flags (sweep and perf):\n  --isolate           run each job in a sandboxed worker subprocess; crashes\n                      (abort/signal/OOM/timeout) quarantine with a typed kind\n                      instead of killing the sweep\n  --isolate-mem MB    child address-space rlimit in MiB (requires --isolate)\n  --isolate-cpu SECS  child CPU-time rlimit in seconds (requires --isolate)\nperf flags (--benchmarks/--mechanisms/--budget also apply):\n  --label NAME        report label; output defaults to BENCH_<label>.json (default: local)\n  --runs N            repetitions per job (default 5; median +/- IQR)\n  --perf-out FILE     write the report here instead of BENCH_<label>.json\n  --compare FILE      gate against a baseline BENCH_*.json; exit {} on regression\n  --rel-threshold X   relative slowdown bar for the gate (default 0.10)\n  --perf-inject-ns N  burn N host ns per mem-partition tick (gate self-test hook)\nexperiments: {}",
        perfstat::EXIT_PERF_REGRESSION,
        EXPERIMENTS.join(" ")
    )
}

fn main() {
    // Hidden worker mode: `repro --exec-job` is how the sandbox
    // executor re-executes this binary as an isolated child. It must
    // be dispatched before any other argument handling so the worker
    // protocol never collides with user-facing flags.
    if std::env::args().nth(1).as_deref() == Some("--exec-job") {
        std::process::exit(supervise::executor::run_worker());
    }
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => cli::fail("repro", &e, &usage()),
    }
}

fn run() -> Result<i32, CliError> {
    let mut quick = false;
    let mut markdown = false;
    let mut all = false;
    let mut list = false;
    let mut out_file: Option<String> = None;
    let mut metrics_csv: Option<String> = None;
    let mut sweep = false;
    let mut manifest: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut budget: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut stop_after: Option<usize> = None;
    let mut suspend_after: Option<u64> = None;
    let mut chaos = false;
    let mut progress = false;
    let mut isolate = false;
    let mut isolate_mem: Option<u64> = None;
    let mut isolate_cpu: Option<u64> = None;
    let mut benches: Option<Vec<Benchmark>> = None;
    let mut kinds: Option<Vec<PrefetcherKind>> = None;
    let mut perf = false;
    let mut profile = false;
    let mut label: Option<String> = None;
    let mut runs: Option<u32> = None;
    let mut perf_out: Option<String> = None;
    let mut compare_file: Option<String> = None;
    let mut rel_threshold: Option<f64> = None;
    let mut inject_ns: Option<u64> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--all" => all = true,
            "--list" => list = true,
            "--sweep" => sweep = true,
            "--chaos" => chaos = true,
            "--progress" => progress = true,
            "--isolate" => isolate = true,
            "--isolate-mem" => {
                isolate_mem = Some(parse_num(&mut args, "isolate-mem", "a MiB count")?);
            }
            "--isolate-cpu" => {
                isolate_cpu = Some(parse_num(&mut args, "isolate-cpu", "a second count")?);
            }
            "--perf" => perf = true,
            "--profile" => profile = true,
            "--label" => {
                label = Some(
                    args.next()
                        .ok_or_else(|| CliError::Usage("--label needs a name operand".into()))?,
                );
            }
            "--runs" => runs = Some(parse_num(&mut args, "runs", "a repetition count")?),
            "--perf-out" => {
                perf_out =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--perf-out needs a file operand".into())
                    })?);
            }
            "--compare" => {
                compare_file = Some(args.next().ok_or_else(|| {
                    CliError::Usage("--compare needs a baseline file operand".into())
                })?);
            }
            "--rel-threshold" => {
                rel_threshold = Some(parse_num(&mut args, "rel-threshold", "a fraction")?);
            }
            "--perf-inject-ns" => {
                inject_ns = Some(parse_num(
                    &mut args,
                    "perf-inject-ns",
                    "a nanosecond count",
                )?);
            }
            "--out" => {
                out_file = Some(
                    args.next()
                        .ok_or_else(|| CliError::Usage("--out needs a file operand".into()))?,
                );
            }
            "--metrics-csv" => {
                metrics_csv =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--metrics-csv needs a file operand".into())
                    })?);
            }
            "--manifest" => {
                manifest =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--manifest needs a file operand".into())
                    })?);
            }
            "--resume" => {
                resume = Some(
                    args.next()
                        .ok_or_else(|| CliError::Usage("--resume needs a file operand".into()))?,
                );
            }
            "--budget" => budget = Some(parse_num(&mut args, "budget", "a cycle count")?),
            "--retries" => retries = Some(parse_num(&mut args, "retries", "an attempt count")?),
            "--deadline-ms" => {
                deadline_ms = Some(parse_num(&mut args, "deadline-ms", "a millisecond count")?);
            }
            "--stop-after" => {
                stop_after = Some(parse_num(&mut args, "stop-after", "a job count")?);
            }
            "--suspend-after" => {
                suspend_after = Some(parse_num(&mut args, "suspend-after", "a cycle count")?);
            }
            "--benchmarks" => {
                let raw = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--benchmarks needs a comma list".into()))?;
                benches = Some(parse_list(&raw, "benchmark")?);
            }
            "--mechanisms" => {
                let raw = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--mechanisms needs a comma list".into()))?;
                kinds = Some(parse_list(&raw, "mechanism")?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(0);
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag: {other}")));
            }
            other => wanted.push(other.to_string()),
        }
    }
    if list {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return Ok(0);
    }
    if !isolate && (isolate_mem.is_some() || isolate_cpu.is_some()) {
        return Err(CliError::Usage(
            "--isolate-mem/--isolate-cpu configure the sandbox; pass them with --isolate".into(),
        ));
    }
    if isolate && !(sweep || resume.is_some() || perf || profile) {
        return Err(CliError::Usage(
            "--isolate is a sweep/perf flag; pass it with --sweep, --resume, or --perf".into(),
        ));
    }
    let executor = || {
        std::sync::Arc::new(if isolate {
            supervise::JobExecutor::sandbox(supervise::SandboxLimits {
                mem_mb: isolate_mem,
                cpu_secs: isolate_cpu,
                lease: None,
            })
        } else {
            supervise::JobExecutor::in_thread()
        })
    };
    if perf || profile {
        if sweep || resume.is_some() {
            return Err(CliError::Usage(
                "--perf/--profile and --sweep/--resume are separate modes; pass only one".into(),
            ));
        }
        if !wanted.is_empty() || all {
            return Err(CliError::Usage(
                "--perf/--profile runs jobs, not experiment ids; drop the extra operands".into(),
            ));
        }
        let opts = PerfOpts {
            quick,
            profile_only: profile && !perf,
            label: label.unwrap_or_else(|| "local".into()),
            runs: runs.unwrap_or(5).max(1),
            perf_out,
            compare_file,
            rel_threshold,
            inject_ns,
            budget,
            benches,
            kinds,
            executor: executor(),
        };
        return run_perf(opts);
    }
    if sweep || resume.is_some() {
        if manifest.is_some() && resume.is_some() {
            return Err(CliError::Usage(
                "--manifest starts a fresh sweep and --resume continues one; pass only one".into(),
            ));
        }
        if !wanted.is_empty() || all {
            return Err(CliError::Usage(
                "--sweep/--resume runs jobs, not experiment ids; drop the extra operands".into(),
            ));
        }
        let opts = SweepOpts {
            quick,
            markdown,
            out_file,
            manifest,
            resume,
            budget,
            retries,
            deadline_ms,
            stop_after,
            suspend_after,
            chaos,
            progress,
            benches,
            kinds,
            executor: executor(),
        };
        return run_sweep(opts);
    }
    if progress {
        return Err(CliError::Usage(
            "--progress is a sweep flag; pass it with --sweep or --resume".into(),
        ));
    }
    if !all && wanted.is_empty() && metrics_csv.is_none() {
        return Err(CliError::Usage(
            "nothing to do: pass --all, --list, --sweep, --metrics-csv, or experiment ids".into(),
        ));
    }
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            return Err(CliError::BadArg {
                what: "experiment",
                why: format!("unknown experiment: {w}"),
            });
        }
    }

    let h = if quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    if let Some(path) = &metrics_csv {
        write_metrics_csv(&h, path)?;
    }
    if !all && wanted.is_empty() {
        return Ok(0);
    }
    let tables = if all {
        figures::all(&h)?
    } else {
        run_selected(&h, &wanted)?
    };

    let mut rendered = String::new();
    for t in &tables {
        if markdown {
            rendered.push_str(&t.to_markdown());
            rendered.push('\n');
        } else {
            rendered.push_str(&t.to_string());
            rendered.push('\n');
        }
    }
    match out_file {
        Some(path) => {
            let mut f = std::fs::File::create(&path).map_err(|e| CliError::io(&path, e))?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| CliError::io(&path, e))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(0)
}

/// Options for the supervised sweep path.
struct SweepOpts {
    quick: bool,
    markdown: bool,
    out_file: Option<String>,
    manifest: Option<String>,
    resume: Option<String>,
    budget: Option<u64>,
    retries: Option<u32>,
    deadline_ms: Option<u64>,
    stop_after: Option<usize>,
    suspend_after: Option<u64>,
    chaos: bool,
    progress: bool,
    benches: Option<Vec<Benchmark>>,
    kinds: Option<Vec<PrefetcherKind>>,
    executor: std::sync::Arc<supervise::JobExecutor>,
}

/// The `--progress` stderr repainter: a thread that rerenders the
/// sweep counter line (`sweep 3/8 done, 1 quarantined, ...`) every
/// 200 ms over itself with a carriage return. Stdout — the rendered
/// tables — is untouched, so piped output stays byte-stable.
struct ProgressReporter {
    counters: std::sync::Arc<supervise::Progress>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    painter: std::thread::JoinHandle<()>,
}

impl ProgressReporter {
    fn start() -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let counters = Arc::new(supervise::Progress::default());
        let stop = Arc::new(AtomicBool::new(false));
        let painter = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let started = std::time::Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    eprint!("\r{}\x1b[K", counters.snapshot().render(started.elapsed()));
                    let _ = std::io::stderr().flush();
                    std::thread::sleep(Duration::from_millis(200));
                }
                // One final repaint so the finished counts are what
                // remains on screen, then move off the line.
                eprintln!("\r{}\x1b[K", counters.snapshot().render(started.elapsed()));
            })
        };
        ProgressReporter {
            counters,
            stop,
            painter,
        }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.painter.join();
    }
}

/// The canned `--chaos` fault plan: dropped/duplicated/delayed fill
/// responses, periodic interconnect brownouts, and timeout/reissue
/// recovery so most faults heal instead of deadlocking. Deterministic
/// (seeded), so chaos sweeps checkpoint and resume byte-identically.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        drop_response: 0.002,
        duplicate_response: 0.005,
        delay_response: 0.05,
        delay_cycles: 200,
        brownout: Some(Brownout {
            period: 2000,
            active: 250,
            scale: 0.5,
        }),
        recovery: Some(Recovery {
            timeout: 500,
            max_retries: 4,
        }),
    }
}

fn run_sweep(opts: SweepOpts) -> Result<i32, CliError> {
    let mut h = if opts.quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    h.cfg.cycle_budget = opts.budget.map(Cycle);
    if opts.chaos {
        h.cfg.fault = chaos_plan();
    }
    let benches = opts.benches.unwrap_or_else(|| Benchmark::all().to_vec());
    let kinds = opts.kinds.unwrap_or_else(|| PrefetcherKind::all().to_vec());
    let jobs = supervise::campaign(&benches, &kinds);
    let mut cfg = SweepConfig::default();
    if let Some(n) = opts.retries {
        cfg.max_attempts = n.max(1);
    }
    cfg.wall_deadline = opts.deadline_ms.map(Duration::from_millis);
    cfg.stop_after = opts.stop_after;
    cfg.suspend_after = opts.suspend_after;
    cfg.executor = opts.executor;
    // The live progress line is off by default so sweep output stays
    // byte-stable; with --progress the repaints go to stderr only and
    // the same counter block feeds the snaked daemon's tail stream.
    let reporter = opts.progress.then(ProgressReporter::start);
    if let Some(r) = &reporter {
        cfg.progress = Some(std::sync::Arc::clone(&r.counters));
    }
    let (manifest_path, resume) = match (&opts.manifest, &opts.resume) {
        (_, Some(path)) => (Some(Path::new(path)), true),
        (Some(path), None) => (Some(Path::new(path)), false),
        (None, None) => (None, false),
    };
    let result =
        supervise::run_campaign(&h, &jobs, &cfg, manifest_path, resume).map_err(sweep_error_to_cli);
    if let Some(r) = reporter {
        r.finish();
    }
    let result = result?;
    let rendered = result.render(opts.markdown);
    match &opts.out_file {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| CliError::io(path, e))?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| CliError::io(path, e))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    for e in &result.manifest_errors {
        eprintln!("repro: warning: checkpoint failed for {e}");
    }
    let (completed, quarantined, skipped, suspended) = result.counts();
    eprintln!(
        "repro: sweep {completed} completed, {quarantined} quarantined, \
         {skipped} skipped, {suspended} suspended"
    );
    if result.exit_code() == supervise::EXIT_INTERRUPTED {
        if let Some(path) = manifest_path {
            eprintln!(
                "repro: sweep interrupted; finish with: repro --resume {}",
                path.display()
            );
        }
    }
    Ok(result.exit_code())
}

/// Options for the perf-observatory path (`--perf` / `--profile`).
struct PerfOpts {
    quick: bool,
    /// `--profile` without `--perf`: one pass, tables only, no
    /// report file and no gate.
    profile_only: bool,
    label: String,
    runs: u32,
    perf_out: Option<String>,
    compare_file: Option<String>,
    rel_threshold: Option<f64>,
    inject_ns: Option<u64>,
    budget: Option<u64>,
    benches: Option<Vec<Benchmark>>,
    kinds: Option<Vec<PrefetcherKind>>,
    executor: std::sync::Arc<supervise::JobExecutor>,
}

fn run_perf(opts: PerfOpts) -> Result<i32, CliError> {
    let mut h = if opts.quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    h.cfg.cycle_budget = opts.budget.map(Cycle);
    if let Some(ns) = opts.inject_ns {
        h.cfg.perf_inject_stall_ns = ns;
    }
    let benches = opts.benches.unwrap_or_else(|| Benchmark::all().to_vec());
    // Default to the two mechanisms the paper's story pivots on; a
    // full-registry perf pass is `--mechanisms` away.
    let kinds = opts
        .kinds
        .unwrap_or_else(|| vec![PrefetcherKind::Baseline, PrefetcherKind::Snake]);
    let jobs = supervise::campaign(&benches, &kinds);
    let runs = if opts.profile_only { 1 } else { opts.runs };
    let report = perfstat::collect(&h, &jobs, runs, &opts.label, opts.executor).map_err(|e| {
        CliError::BadArg {
            what: "perf collection",
            why: e.to_string(),
        }
    })?;

    if opts.profile_only {
        for job in &report.jobs {
            print!("{}", perfstat::profile_table(&job.job, &job.samples));
        }
        return Ok(0);
    }

    let out_path = opts
        .perf_out
        .unwrap_or_else(|| format!("BENCH_{}.json", report.label));
    report
        .write_to(Path::new(&out_path))
        .map_err(|e| CliError::io(&out_path, e))?;
    eprintln!(
        "repro: wrote {out_path} ({} job(s) x {} run(s))",
        report.jobs.len(),
        report.runs
    );

    let Some(baseline_path) = opts.compare_file else {
        return Ok(0);
    };
    let baseline = PerfReport::load(Path::new(&baseline_path)).map_err(|why| CliError::BadArg {
        what: "baseline",
        why,
    })?;
    let cfg = CompareConfig {
        rel_threshold: opts.rel_threshold.unwrap_or(0.10),
        ..CompareConfig::default()
    };
    let result = perfstat::compare::compare(&baseline, &report, &cfg);
    print!("{}", result.table());
    if result.passed() {
        eprintln!("repro: perf gate passed against {baseline_path}");
        Ok(0)
    } else {
        eprintln!(
            "repro: perf gate FAILED against {baseline_path}: {} metric(s) regressed",
            result.regressions().count()
        );
        Ok(perfstat::EXIT_PERF_REGRESSION)
    }
}

fn sweep_error_to_cli(e: SweepError) -> CliError {
    match e {
        SweepError::Sim(e) => CliError::from(e),
        SweepError::Manifest(supervise::manifest::ManifestError::Io { path, source }) => {
            CliError::Io { path, source }
        }
        other => CliError::BadArg {
            what: "manifest",
            why: other.to_string(),
        },
    }
}

/// Parses the next operand of `flag` as an integer.
fn parse_num<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &'static str,
    what: &str,
) -> Result<T, CliError> {
    let raw = args
        .next()
        .ok_or_else(|| CliError::Usage(format!("--{flag} needs {what}")))?;
    raw.parse().map_err(|_| CliError::BadArg {
        what: flag,
        why: format!("not {what}: {raw:?}"),
    })
}

/// Parses a comma-separated operand list (benchmarks or mechanisms).
fn parse_list<T>(raw: &str, what: &'static str) -> Result<Vec<T>, CliError>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let items: Result<Vec<T>, CliError> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().map_err(|e: T::Err| CliError::BadArg {
                what,
                why: e.to_string(),
            })
        })
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(CliError::Usage(format!("--{what}s list is empty")));
    }
    Ok(items)
}

/// Runs LPS under Snake with windowed metrics enabled and writes the
/// resulting time series as CSV — the machine-readable companion to
/// `pfdebug --timeline`.
fn write_metrics_csv(h: &Harness, path: &str) -> Result<(), CliError> {
    let mut cfg = h.cfg.clone();
    cfg.metrics_window = Some(METRICS_WINDOW);
    let kernel = Benchmark::Lps.build(&h.size);
    let warps = cfg.max_warps_per_sm;
    let mut gpu = Gpu::new(cfg, kernel, |_| PrefetcherKind::Snake.build(warps))?;
    let out = gpu.run();
    let series = out
        .series
        .ok_or_else(|| CliError::Internal("metrics window set but no series returned".into()))?;
    let mut f = std::fs::File::create(path).map_err(|e| CliError::io(path, e))?;
    f.write_all(series.to_csv().as_bytes())
        .map_err(|e| CliError::io(path, e))?;
    eprintln!("wrote {} metric windows to {path}", series.samples.len());
    Ok(())
}

fn run_selected(h: &Harness, wanted: &[String]) -> Result<Vec<Table>, CliError> {
    // The timing matrix is only collected if a figure needs it.
    let needs_matrix = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "fig03" | "fig04" | "fig05" | "fig16" | "fig17" | "fig18" | "fig19" | "fig25"
        )
    });
    let matrix = if needs_matrix {
        let mut kinds = figures::figure_mechanisms();
        kinds.push(PrefetcherKind::IsolatedSnake);
        Some(EvalMatrix::collect(h, &kinds)?)
    } else {
        None
    };
    // `needs_matrix` lists exactly the figures that take the matrix, so
    // a miss here is a bug in this binary, not in the invocation.
    let need = |id: &str| -> Result<&EvalMatrix, CliError> {
        matrix.as_ref().ok_or_else(|| {
            CliError::Internal(format!(
                "{id} needs the timing matrix but it was not collected"
            ))
        })
    };
    wanted
        .iter()
        .map(|w| {
            Ok(match w.as_str() {
                "table1" => figures::table1_config(h),
                "table2" => figures::table2_benchmarks(),
                "table3" => figures::table3_cost(),
                "fig03" => figures::fig03_reservation_fails(need("fig03")?),
                "fig04" => figures::fig04_noc_utilization(need("fig04")?),
                "fig05" => figures::fig05_memory_stalls(need("fig05")?),
                "fig06" => figures::fig06_coverage_vs_ideal(h),
                "fig09" => figures::fig09_chain_pcs(h),
                "fig10" => figures::fig10_chain_repetition(h),
                "fig11" => figures::fig11_chain_vs_mta(h),
                "fig16" => figures::fig16_coverage(need("fig16")?),
                "fig17" => figures::fig17_accuracy(need("fig17")?),
                "fig18" => figures::fig18_performance(need("fig18")?),
                "fig19" => figures::fig19_energy(need("fig19")?),
                "fig20" => figures::fig20_tail_entries(h)?,
                "fig21" => figures::fig21_hw_cost(),
                "fig22" => figures::fig22_eviction_policy(h)?,
                "fig23" => figures::fig23_throttling(h)?,
                "fig24" => figures::fig24_tiling(h)?,
                "fig25" => figures::fig25_hit_rate(need("fig25")?),
                "xhead" => figures::extra_head_layout(h)?,
                "xsched" => figures::extra_scheduler(h)?,
                "xmulti" => figures::extra_multi_app(h)?,
                _ => unreachable!("validated above"),
            })
        })
        .collect()
}
